//! Durability: write-ahead journaling, crash recovery, and atomic
//! artifact writes.
//!
//! EGT re-execution makes every explored path a perfect checkpoint: the
//! decision sequence alone reproduces the path concretely, with no forks
//! and no fresh solver queries. The journal exploits that — each record
//! persists one path's canonical decision prefix, normalized output,
//! coverage delta, and the sibling prefixes it scheduled. Recovery
//! replays the journaled prefixes and explores only the remaining
//! frontier `({root} ∪ all pendings) − all origins`, so a resumed run
//! produces byte-identical artifacts to an uninterrupted one at any
//! worker count.
//!
//! On-disk format: a header record followed by data records, each framed
//! as `[u32 LE payload length][u32 LE CRC-32 of payload][JSON payload]`.
//! A torn or corrupted tail (the expected shape of a crash mid-append)
//! is detected by the checksum, reported, and truncated away; everything
//! before it is trusted. Artifacts themselves are published with
//! [`atomic_write`] (temp file in the same directory, fsync, rename), so
//! a reader never observes a half-written artifact.

use crate::input::TestCase;
use crate::json::{self, Json};
use crate::runner::{agent_program, degraded_run, summarize, TestRun};
use crate::wire::EventFile;
use soft_protocol::{normalize_trace, AgentRef};
use soft_smt::{Assignment, SatResult, SolverBudget};
use soft_sym::{
    explore_fn_seeded, ExplorerConfig, PathOutcome, PathResult, PathSink, ResumeSeed, SeedPending,
};
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Write};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Recover the guarded data even if a sibling worker panicked while
/// holding the lock (same policy as the runner: slot-wise writes keep a
/// poisoned lock's state usable).
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven, computed at compile time.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of a byte string.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors.

/// Everything that can go wrong while journaling or recovering.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The journal body is damaged beyond the recoverable torn tail.
    Corrupt(String),
    /// The journal belongs to a different run configuration; resuming
    /// would silently produce wrong artifacts, so we refuse.
    Mismatch(String),
    /// A replayed path diverged from its journaled record — the agent,
    /// test, or engine changed since the journal was written.
    Replay(String),
    /// The run configuration cannot be journaled (e.g. wall-clock
    /// truncation, which replays non-deterministically).
    Unsupported(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt(m) => write!(f, "journal corrupt: {m}"),
            JournalError::Mismatch(m) => write!(f, "journal mismatch: {m}"),
            JournalError::Replay(m) => write!(f, "journal replay divergence: {m}"),
            JournalError::Unsupported(m) => write!(f, "not journalable: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Atomic artifact writes.

/// Write `data` to `path` atomically: temp file in the same directory,
/// flush (+ fsync unless disabled), rename over the target, then fsync
/// the directory so the rename itself is durable. A crash at any point
/// leaves either the old content or the new content, never a torn file.
///
/// A directory fsync that fails with a real I/O error propagates — the
/// publish is not durable and callers (a serve daemon acking a job, say)
/// must not pretend it is. Filesystems that cannot fsync directories at
/// all (ENOTSUP / EINVAL) are excused.
pub fn atomic_write(path: &Path, data: &[u8], fsync: bool) -> io::Result<()> {
    atomic_write_with(path, data, fsync, &sync_dir)
}

/// Per-process counter distinguishing temp files of concurrent writers
/// targeting the same path. The pid alone is not enough once several
/// daemon workers publish into one store directory.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// [`atomic_write`] with the directory-sync step injectable, so tests
/// can exercise the failure classification without a faulty filesystem.
fn atomic_write_with(
    path: &Path,
    data: &[u8],
    fsync: bool,
    sync_dir: &dyn Fn(&Path) -> io::Result<()>,
) -> io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let publish = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(data)?;
        if fsync {
            f.sync_all()?;
        }
        drop(f);
        fs::rename(&tmp, path)
    })();
    if publish.is_err() {
        let _ = fs::remove_file(&tmp);
        return publish;
    }
    if fsync {
        // The rename is only durable once the directory entry is synced.
        if let Err(e) = sync_dir(&dir) {
            if !dir_sync_refused(&e) {
                return Err(e);
            }
        }
    }
    Ok(())
}

/// Fsync a directory so a rename inside it becomes durable. On
/// platforms without directory fsync the step is a no-op.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Is this a filesystem legitimately refusing directory fsync
/// (ENOTSUP / EINVAL), as opposed to a real I/O failure?
fn dir_sync_refused(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Unsupported | io::ErrorKind::InvalidInput
    ) || matches!(err.raw_os_error(), Some(22) | Some(95))
}

// ---------------------------------------------------------------------------
// Record framing.

/// Sanity bound on a single record; journals hold per-path metadata, so
/// anything larger than this is framing damage, not data.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Append-only journal file handle.
pub struct JournalWriter {
    file: fs::File,
    fsync: bool,
    /// Pending frames not yet handed to the OS. With fsync on, every
    /// append flushes (durability per record); without it, frames batch
    /// up to [`FLUSH_THRESHOLD`] — a crash then loses at most the buffer,
    /// which resume simply re-explores.
    buf: Vec<u8>,
    /// Reused serialization buffer (records are built back to back).
    scratch: String,
}

/// No-fsync write batching bound.
const FLUSH_THRESHOLD: usize = 64 * 1024;

impl JournalWriter {
    fn new(file: fs::File, fsync: bool) -> Self {
        JournalWriter {
            file,
            fsync,
            buf: Vec::new(),
            scratch: String::new(),
        }
    }

    /// Append one record (length + checksum + payload) and make it
    /// durable if fsync is enabled.
    pub fn append(&mut self, record: &Json) -> io::Result<()> {
        self.scratch.clear();
        record.write_into(&mut self.scratch);
        let payload = self.scratch.as_bytes();
        self.buf.reserve(payload.len() + 8);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        if self.fsync {
            self.flush()?;
            self.file.sync_all()?;
        } else if self.buf.len() >= FLUSH_THRESHOLD {
            self.flush()?;
        }
        Ok(())
    }

    /// Hand any buffered frames to the OS (no fsync).
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// What recovery found in a journal file.
struct RawRecovery {
    /// Parsed record payloads, in append order (header first).
    records: Vec<Json>,
    /// Byte length of the valid prefix.
    valid_len: u64,
    /// True if a torn or corrupted tail was dropped.
    dropped_tail: bool,
}

/// Scan the journal bytes, stopping at the first torn or corrupted
/// frame. Everything before the damage is returned; the damage itself
/// is reported, not fatal — a torn tail is the *expected* shape of a
/// crash mid-append.
fn scan_records(bytes: &[u8]) -> RawRecovery {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        if bytes.len() - off < 8 {
            return RawRecovery {
                records,
                valid_len: off as u64,
                dropped_tail: off < bytes.len(),
            };
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        if len as u32 > MAX_RECORD_LEN || bytes.len() - off - 8 < len {
            return RawRecovery {
                records,
                valid_len: off as u64,
                dropped_tail: true,
            };
        }
        let payload = &bytes[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            return RawRecovery {
                records,
                valid_len: off as u64,
                dropped_tail: true,
            };
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) => {
                return RawRecovery {
                    records,
                    valid_len: off as u64,
                    dropped_tail: true,
                }
            }
        };
        match json::parse(text) {
            Ok(v) => records.push(v),
            Err(_) => {
                return RawRecovery {
                    records,
                    valid_len: off as u64,
                    dropped_tail: true,
                }
            }
        }
        off += 8 + len;
    }
}

/// Create a fresh journal at `path` with the given header record.
fn fresh_journal(path: &Path, header: &Json, fsync: bool) -> Result<JournalWriter, JournalError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let file = fs::File::create(path)?;
    let mut w = JournalWriter::new(file, fsync);
    w.append(header)?;
    Ok(w)
}

/// Open an existing journal for resumption: scan it, verify the header
/// against `kind`/`fingerprint`, truncate any damaged tail, and return
/// the data records plus an append handle positioned after the valid
/// prefix. A missing or empty journal degrades to a fresh start.
fn open_resume(
    path: &Path,
    kind: &str,
    fingerprint: &str,
    header: &Json,
    fsync: bool,
) -> Result<(Vec<Json>, JournalWriter), JournalError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let raw = scan_records(&bytes);
    if raw.records.is_empty() {
        // Nothing recoverable (missing, empty, or fully torn) — start over.
        return Ok((Vec::new(), fresh_journal(path, header, fsync)?));
    }
    let head = &raw.records[0];
    let format = head.get("format").and_then(|v| v.as_u64().ok());
    if format != Some(1) {
        return Err(JournalError::Corrupt(format!(
            "{}: unsupported journal format {format:?}",
            path.display()
        )));
    }
    let head_kind = head.get("kind").and_then(|v| v.as_str().ok()).unwrap_or("");
    if head_kind != kind {
        return Err(JournalError::Mismatch(format!(
            "{}: journal kind is '{head_kind}', this run needs '{kind}'",
            path.display()
        )));
    }
    let head_fp = head
        .get("fingerprint")
        .and_then(|v| v.as_str().ok())
        .unwrap_or("");
    if head_fp != fingerprint {
        return Err(JournalError::Mismatch(format!(
            "{}: journal fingerprint {head_fp} does not match this run's {fingerprint} \
             (different agent, test, seed, strategy, budget, or inputs); \
             delete the journal or drop --resume to start over",
            path.display()
        )));
    }
    // Trust the valid prefix; drop the damaged tail before appending.
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(raw.valid_len)?;
    let file = fs::OpenOptions::new().append(true).open(path)?;
    if raw.dropped_tail {
        file.sync_all()?;
    }
    let records = raw.records.into_iter().skip(1).collect();
    Ok((records, JournalWriter::new(file, fsync)))
}

// ---------------------------------------------------------------------------
// Small codecs shared by both journal kinds.

/// Decision sequence as a compact bitstring ("01…").
fn bits_out(bits: &[bool]) -> Json {
    Json::Str(bits.iter().map(|&b| if b { '1' } else { '0' }).collect())
}

fn bits_in(v: &Json) -> Result<Vec<bool>, String> {
    v.as_str()?
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("bad decision bit '{other}'")),
        })
        .collect()
}

/// FNV-1a 64-bit over a sequence of parts (with separators), rendered as
/// fixed-width hex. Deliberately avoids hashing any interner-dependent
/// representation: only stable identifiers and raw artifact text go in.
/// FNV-1a 64-bit hash over `parts` (unit-separated), hex-encoded.
/// Process-stable; the fingerprint primitive shared by journals and the
/// serve result store.
pub fn fnv64_hex(parts: &[&str]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    for p in parts {
        eat(p.as_bytes());
        eat(&[0x1f]); // unit separator: "ab"+"c" must differ from "a"+"bc"
    }
    format!("{h:016x}")
}

/// Wire form of a solver budget (only finite dimensions appear).
pub(crate) fn budget_out(b: &SolverBudget) -> Json {
    let mut o = Vec::new();
    if let Some(n) = b.max_conflicts {
        o.push(("conflicts".to_string(), Json::UInt(n)));
    }
    if let Some(n) = b.max_propagations {
        o.push(("propagations".to_string(), Json::UInt(n)));
    }
    if let Some(t) = b.time_limit {
        o.push(("time_us".to_string(), Json::UInt(t.as_micros() as u64)));
    }
    Json::Object(o)
}

pub(crate) fn budget_in(v: &Json) -> Result<SolverBudget, String> {
    let dim = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            Some(j) => Ok(Some(j.as_u64()?)),
            None => Ok(None),
        }
    };
    Ok(SolverBudget {
        max_conflicts: dim("conflicts")?,
        max_propagations: dim("propagations")?,
        time_limit: dim("time_us")?.map(Duration::from_micros),
    })
}

// ---------------------------------------------------------------------------
// Phase-1 journals (one per agent/test exploration).

/// Options for a journaled (durable) exploration.
#[derive(Debug, Clone, Copy)]
pub struct DurableRun<'a> {
    /// Journal file path.
    pub journal: &'a Path,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// fsync each journal append and artifact publish (disable only for
    /// benchmarks; a crash may then lose the journal tail).
    pub fsync: bool,
}

/// Identity of one phase-1 exploration, for refusing to resume a journal
/// written under a different configuration. Hashes only process-stable
/// inputs (ids, config scalars) — never `Term` debug output, whose
/// interner indices differ across processes. `workers` is deliberately
/// excluded: resuming with a different `--jobs` is supported and produces
/// identical artifacts.
pub fn phase1_fingerprint(
    agent: impl Into<AgentRef>,
    test: &TestCase,
    cfg: &ExplorerConfig,
) -> String {
    let agent = agent.into();
    fnv64_hex(&[
        "phase1",
        agent.id(),
        test.id,
        &test.inputs.len().to_string(),
        &cfg.seed.to_string(),
        &format!("{:?}", cfg.strategy),
        &cfg.max_depth.to_string(),
        &budget_out(&cfg.solver_budget).to_string(),
    ])
}

fn phase1_header(agent: AgentRef, test: &TestCase, fingerprint: &str) -> Json {
    Json::Object(vec![
        ("format".to_string(), Json::UInt(1)),
        ("kind".to_string(), Json::Str("phase1".to_string())),
        ("agent".to_string(), Json::Str(agent.id().to_string())),
        ("test".to_string(), Json::Str(test.id.to_string())),
        (
            "fingerprint".to_string(),
            Json::Str(fingerprint.to_string()),
        ),
    ])
}

/// What one path record carries besides its decision sequence; used to
/// cross-check the replayed path against the journal on resume.
#[derive(Debug, Clone, PartialEq)]
struct RecordedPath {
    origin: Vec<bool>,
    outcome: &'static str,
    /// Normalized output, shared between all paths that referenced the
    /// same `output` record.
    events: Arc<Vec<EventFile>>,
    cov: String,
    pending: Vec<(Vec<bool>, String)>,
}

/// Order-independent digest of one path's coverage sets. The journal
/// stores this instead of the full block/branch lists: replay validation
/// only ever compares the sets whole, and serializing the lists would
/// dominate the journaling cost (they are the bulk of each record).
fn cov_digest(coverage: &soft_sym::Coverage) -> String {
    // XOR-folding per-element FNV hashes is order-independent, so the
    // sets need neither sorting nor copying (sets have no duplicates, so
    // XOR cancellation cannot occur).
    let elem = |bytes: &[u8], tag: u8| -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes.iter().chain(std::iter::once(&tag)) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    };
    let mut acc_blocks = 0u64;
    for b in coverage.blocks.iter() {
        acc_blocks ^= elem(b.as_bytes(), 0);
    }
    let mut acc_branches = 0u64;
    for (site, dir) in coverage.branches.iter() {
        acc_branches ^= elem(site.as_bytes(), *dir as u8 + 1);
    }
    format!("{acc_blocks:016x}{acc_branches:016x}")
}

fn outcome_tag(outcome: &PathOutcome) -> &'static str {
    match outcome {
        PathOutcome::Completed => "completed",
        PathOutcome::Crashed(_) => "crashed",
        PathOutcome::Aborted(_) => "aborted",
    }
}

/// One distinct normalized output, stored once and referenced by id from
/// every path record that produced it. Most paths share few distinct
/// outputs (the grouping premise), so this keeps the journal — and the
/// per-path serialization cost — small. Session journals tag each record
/// with the (agent, test) unit it belongs to; phase-1 journals hold one
/// unit and carry no tag.
fn output_record(unit: Option<u64>, oid: u64, events: &[soft_protocol::TraceEvent]) -> Json {
    let mut fields = vec![("rec".to_string(), Json::Str("output".to_string()))];
    if let Some(u) = unit {
        fields.push(("unit".to_string(), Json::UInt(u)));
    }
    fields.push(("oid".to_string(), Json::UInt(oid)));
    fields.push((
        "events".to_string(),
        Json::Array(
            events
                .iter()
                .map(|e| EventFile::from_event(e).to_json_value())
                .collect(),
        ),
    ));
    Json::Object(fields)
}

fn parse_output_record(v: &Json) -> Result<(u64, Vec<EventFile>), String> {
    let oid = v.field("oid")?.as_u64()?;
    let events = v
        .field("events")?
        .as_array()?
        .iter()
        .map(EventFile::from_json_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((oid, events))
}

/// Serialize one freshly explored path for the journal. `oid` points at
/// the path's `output` record; aborted paths carry no observable output
/// (summarize drops them) and journal no reference.
fn path_record(
    unit: Option<u64>,
    origin: &[bool],
    result: &PathResult<soft_protocol::TraceEvent>,
    pending: &[(Vec<bool>, &str)],
    oid: Option<u64>,
) -> Json {
    let mut fields = vec![("rec".to_string(), Json::Str("path".to_string()))];
    if let Some(u) = unit {
        fields.push(("unit".to_string(), Json::UInt(u)));
    }
    fields.extend([
        ("origin".to_string(), bits_out(origin)),
        ("decisions".to_string(), bits_out(&result.decisions)),
        (
            "outcome".to_string(),
            Json::Str(outcome_tag(&result.outcome).to_string()),
        ),
    ]);
    if let Some(oid) = oid {
        fields.push(("oid".to_string(), Json::UInt(oid)));
    }
    fields.push((
        "pending".to_string(),
        Json::Array(
            pending
                .iter()
                .map(|(p, s)| Json::Array(vec![bits_out(p), Json::Str(s.to_string())]))
                .collect(),
        ),
    ));
    fields.push(("cov".to_string(), Json::Str(cov_digest(&result.coverage))));
    Json::Object(fields)
}

fn parse_path_record(
    v: &Json,
    outputs: &BTreeMap<u64, Arc<Vec<EventFile>>>,
) -> Result<(Vec<bool>, RecordedPath), String> {
    let decisions = bits_in(v.field("decisions")?)?;
    let origin = bits_in(v.field("origin")?)?;
    let outcome = match v.field("outcome")?.as_str()? {
        "completed" => "completed",
        "crashed" => "crashed",
        "aborted" => "aborted",
        other => return Err(format!("unknown outcome '{other}'")),
    };
    // Output records are appended before any path record referencing
    // them, so a valid journal prefix always resolves.
    let events = match v.get("oid") {
        Some(oid) => {
            let oid = oid.as_u64()?;
            outputs
                .get(&oid)
                .cloned()
                .ok_or_else(|| format!("path references unknown output {oid}"))?
        }
        None => Arc::new(Vec::new()),
    };
    let pending = v
        .field("pending")?
        .as_array()?
        .iter()
        .map(|p| {
            let pair = p.as_array()?;
            if pair.len() != 2 {
                return Err("pending entry is not a [bits, site] pair".to_string());
            }
            Ok((bits_in(&pair[0])?, pair[1].as_str()?.to_string()))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let cov = v.field("cov")?.as_str()?.to_string();
    Ok((
        decisions,
        RecordedPath {
            origin,
            outcome,
            events,
            cov,
            pending,
        },
    ))
}

/// Rebuild the resume state from recovered path records: replay every
/// journaled decision sequence, and re-schedule the remaining frontier
/// `({root} ∪ all scheduled pendings) − all consumed origins`. Origins
/// (not decision prefixes) are subtracted because an aborted path's
/// decisions can differ from the frontier entry it consumed.
fn build_seed(recorded: &BTreeMap<Vec<bool>, RecordedPath>) -> ResumeSeed {
    let mut candidates: BTreeMap<Vec<bool>, String> = BTreeMap::new();
    candidates.insert(Vec::new(), "<root>".to_string());
    for r in recorded.values() {
        for (p, s) in &r.pending {
            candidates.insert(p.clone(), s.clone());
        }
    }
    for r in recorded.values() {
        candidates.remove(&r.origin);
    }
    ResumeSeed {
        replay: recorded.keys().cloned().collect(),
        frontier: candidates
            .into_iter()
            .map(|(prefix, site)| SeedPending { prefix, site })
            .collect(),
    }
}

/// Journal state shared by the workers: the writer plus the dedup table
/// mapping each distinct normalized output (keyed by interned-term
/// identity, so hashing is cheap and process-local) to its output id.
struct SinkState {
    writer: JournalWriter,
    outputs: HashMap<Vec<soft_protocol::TraceEvent>, u64>,
    next_oid: u64,
}

/// The write-ahead hook: journal each freshly explored path before its
/// siblings become claimable. A path's `output` record (if its output is
/// new) is appended immediately before the path record under one lock
/// hold, so any surviving journal prefix resolves every reference. I/O
/// failures are stashed (the sink trait is infallible) and surfaced
/// after exploration. One `SharedSink` backs either a single phase-1
/// journal or every unit of a session journal (the output dedup table
/// and oid counter are deliberately shared: units of one session often
/// produce identical normalized outputs).
struct SharedSink {
    state: Mutex<SinkState>,
    failed: Mutex<Option<io::Error>>,
}

impl SharedSink {
    fn new(writer: JournalWriter, next_oid: u64) -> SharedSink {
        SharedSink {
            state: Mutex::new(SinkState {
                writer,
                outputs: HashMap::new(),
                next_oid,
            }),
            failed: Mutex::new(None),
        }
    }

    fn stash(&self, e: io::Error) {
        let mut slot = recover(&self.failed);
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    fn append_json(&self, rec: &Json) {
        let res = recover(&self.state).writer.append(rec);
        if let Err(e) = res {
            self.stash(e);
        }
    }

    fn append_path(
        &self,
        unit: Option<u64>,
        origin: &[bool],
        result: &PathResult<soft_protocol::TraceEvent>,
        pending: &[(Vec<bool>, &str)],
    ) {
        let events = match result.outcome {
            PathOutcome::Aborted(_) => None,
            _ => Some(normalize_trace(&result.trace)),
        };
        let mut st = recover(&self.state);
        let oid = events.map(|ev| match st.outputs.get(&ev) {
            Some(&oid) => oid,
            None => {
                let oid = st.next_oid;
                st.next_oid += 1;
                let rec = output_record(unit, oid, &ev);
                if let Err(e) = st.writer.append(&rec) {
                    self.stash(e);
                }
                st.outputs.insert(ev, oid);
                oid
            }
        });
        let rec = path_record(unit, origin, result, pending, oid);
        if let Err(e) = st.writer.append(&rec) {
            self.stash(e);
        }
    }

    fn finish(&self) -> Result<(), JournalError> {
        if let Some(e) = recover(&self.failed).take() {
            return Err(JournalError::Io(e));
        }
        recover(&self.state)
            .writer
            .flush()
            .map_err(JournalError::Io)
    }
}

/// One unit's view of a [`SharedSink`]: tags every record with the unit
/// index (or nothing, for single-unit phase-1 journals).
struct RecordSink<'a> {
    shared: &'a SharedSink,
    unit: Option<u64>,
}

impl PathSink<soft_protocol::TraceEvent> for RecordSink<'_> {
    fn on_path(
        &self,
        origin: &[bool],
        result: &PathResult<soft_protocol::TraceEvent>,
        pending: &[(Vec<bool>, &str)],
    ) {
        self.shared.append_path(self.unit, origin, result, pending);
    }
}

/// Compare every journaled record against the path the resumed
/// exploration actually produced for the same decision sequence. Any
/// divergence means the agent, test, or engine changed under the journal
/// — resuming would fabricate artifacts, so it is a hard error.
fn validate_replay(
    recorded: &BTreeMap<Vec<bool>, RecordedPath>,
    paths: &[PathResult<soft_protocol::TraceEvent>],
) -> Result<(), JournalError> {
    if recorded.is_empty() {
        return Ok(());
    }
    let by_decisions: BTreeMap<&[bool], &PathResult<soft_protocol::TraceEvent>> =
        paths.iter().map(|p| (p.decisions.as_slice(), p)).collect();
    for (decisions, rec) in recorded {
        let bits: String = decisions
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        let p = by_decisions.get(decisions.as_slice()).ok_or_else(|| {
            JournalError::Replay(format!("journaled path [{bits}] was not reproduced"))
        })?;
        if outcome_tag(&p.outcome) != rec.outcome {
            return Err(JournalError::Replay(format!(
                "path [{bits}]: journaled outcome '{}' replayed as '{}'",
                rec.outcome,
                outcome_tag(&p.outcome)
            )));
        }
        if !matches!(p.outcome, PathOutcome::Aborted(_)) {
            let replayed: Vec<EventFile> = normalize_trace(&p.trace)
                .iter()
                .map(EventFile::from_event)
                .collect();
            if replayed != *rec.events {
                return Err(JournalError::Replay(format!(
                    "path [{bits}]: journaled output differs from replayed output"
                )));
            }
        }
        if cov_digest(&p.coverage) != rec.cov {
            return Err(JournalError::Replay(format!(
                "path [{bits}]: journaled coverage differs from replayed coverage"
            )));
        }
    }
    Ok(())
}

/// Configurations whose explorations cannot be replayed deterministically
/// are refused by every journaled entry point.
fn check_resumable(cfg: &ExplorerConfig) -> Result<(), JournalError> {
    if cfg.time_limit.is_some() {
        return Err(JournalError::Unsupported(
            "time-limited explorations replay non-deterministically; \
             run without --time-limit or without a journal"
                .to_string(),
        ));
    }
    if cfg.max_paths.is_some() {
        return Err(JournalError::Unsupported(
            "max-paths-truncated explorations are not resumable; \
             run without the path cap or without a journal"
                .to_string(),
        ));
    }
    Ok(())
}

/// [`crate::run_test`] with write-ahead journaling and resume.
///
/// Fresh mode truncates (or creates) the journal, writes the header, and
/// journals every explored path before its siblings become claimable.
/// Resume mode recovers the valid journal prefix (torn tails are
/// truncated away), refuses fingerprint mismatches, replays the
/// journaled paths concretely — zero forks, zero fresh-branch solver
/// queries — validates each against its record, and explores only the
/// remaining frontier. Either way the resulting [`TestRun`] is
/// byte-identical (modulo wall time) to an uninterrupted run at any
/// worker count.
pub fn run_test_durable(
    agent: impl Into<AgentRef>,
    test: &TestCase,
    cfg: &ExplorerConfig,
    opts: &DurableRun<'_>,
) -> Result<TestRun, JournalError> {
    let agent = agent.into();
    check_resumable(cfg)?;
    let fp = phase1_fingerprint(agent, test, cfg);
    let header = phase1_header(agent, test, &fp);
    let (records, writer) = if opts.resume {
        open_resume(opts.journal, "phase1", &fp, &header, opts.fsync)?
    } else {
        (
            Vec::new(),
            fresh_journal(opts.journal, &header, opts.fsync)?,
        )
    };
    let mut outputs: BTreeMap<u64, Arc<Vec<EventFile>>> = BTreeMap::new();
    let mut recorded: BTreeMap<Vec<bool>, RecordedPath> = BTreeMap::new();
    for r in &records {
        match r.field("rec").and_then(Json::as_str) {
            Ok("output") => {
                let (oid, events) = parse_output_record(r).map_err(JournalError::Corrupt)?;
                outputs.insert(oid, Arc::new(events));
            }
            Ok("path") => {
                let (decisions, rec) =
                    parse_path_record(r, &outputs).map_err(JournalError::Corrupt)?;
                if let Some(prev) = recorded.get(&decisions) {
                    if *prev != rec {
                        return Err(JournalError::Corrupt(format!(
                            "conflicting duplicate records for one decision sequence \
                             ({} records)",
                            records.len()
                        )));
                    }
                    continue;
                }
                recorded.insert(decisions, rec);
            }
            Ok(other) => {
                return Err(JournalError::Corrupt(format!(
                    "unknown record kind '{other}'"
                )));
            }
            Err(e) => return Err(JournalError::Corrupt(e)),
        }
    }
    let seed = build_seed(&recorded);
    let seed_opt = if seed.is_empty() { None } else { Some(&seed) };
    // Resumed outputs are not rehydrated into the dedup table (journal ids
    // are not interned-term identities), so a resumed run may re-journal a
    // previously seen output under a fresh oid; that is redundant but
    // harmless, as long as fresh oids never collide with recovered ones.
    let next_oid = outputs.keys().next_back().map_or(0, |m| m + 1);
    let shared = SharedSink::new(writer, next_oid);
    let sink = RecordSink {
        shared: &shared,
        unit: None,
    };
    let ex = explore_fn_seeded(cfg, agent_program(agent, test), seed_opt, Some(&sink));
    shared.finish()?;
    validate_replay(&recorded, &ex.paths)?;
    Ok(summarize(agent, test, ex))
}

/// [`crate::run_matrix`] with per-combination journaling: every
/// (agent, test) pair gets its own journal (`journal_for` maps the pair
/// to a path) and its own resumability. Engine panics degrade the
/// combination exactly as the plain matrix does; journal errors are
/// reported per combination so one damaged journal cannot sink the rest.
pub fn run_matrix_durable<A: Into<AgentRef> + Copy>(
    agents: &[A],
    tests: &[TestCase],
    cfg: &ExplorerConfig,
    jobs: usize,
    journal_for: &(dyn Fn(&str, &str) -> PathBuf + Sync),
    resume: bool,
    fsync: bool,
) -> Vec<Result<TestRun, JournalError>> {
    let combos: Vec<(AgentRef, &TestCase)> = agents
        .iter()
        .flat_map(|a| tests.iter().map(move |t| ((*a).into(), t)))
        .collect();
    let run_one = |a: AgentRef, t: &TestCase| -> Result<TestRun, JournalError> {
        let path = journal_for(a.id(), t.id);
        let opts = DurableRun {
            journal: &path,
            resume,
            fsync,
        };
        match std::panic::catch_unwind(AssertUnwindSafe(|| run_test_durable(a, t, cfg, &opts))) {
            Ok(r) => r,
            // Engine panic: same degradation as the plain matrix — the
            // combination reports itself truncated instead of aborting
            // the process (its journal stays resumable).
            Err(_) => Ok(degraded_run(a, t)),
        }
    };
    if jobs <= 1 {
        return combos.into_iter().map(|(a, t)| run_one(a, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<TestRun, JournalError>>>> =
        Mutex::new((0..combos.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(combos.len().max(1)) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= combos.len() {
                    break;
                }
                let (a, t) = combos[k];
                let run = run_one(a, t);
                recover(&results)[k] = Some(run);
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .zip(&combos)
        .map(|(r, (a, t))| r.unwrap_or_else(|| Ok(degraded_run(*a, t))))
        .collect()
}

// ---------------------------------------------------------------------------
// Crosscheck (phase-2) journals.

/// Identity of one crosscheck run: both artifact texts plus the solver
/// settings string (budget and retry ladder). Artifacts are hashed as
/// raw text — any re-exploration that changes them invalidates the
/// verdict journal.
pub fn check_fingerprint(a_text: &str, b_text: &str, settings: &str) -> String {
    fnv64_hex(&["check", a_text, b_text, settings])
}

/// One journaled crosscheck verdict, recovered on resume.
#[derive(Debug, Clone)]
pub struct VerdictRec {
    /// Path index in artifact A.
    pub i: usize,
    /// Path index in artifact B.
    pub j: usize,
    /// The solver's verdict (Sat carries the reconstructed witness).
    pub verdict: SatResult,
    /// The budget the verdict was decided under; Unknown verdicts are
    /// only reusable for budgets they cover.
    pub budget: SolverBudget,
}

pub(crate) fn verdict_record(
    t: Option<u64>,
    i: usize,
    j: usize,
    verdict: &SatResult,
    budget: &SolverBudget,
) -> Json {
    let mut fields = vec![("rec".to_string(), Json::Str("verdict".to_string()))];
    if let Some(t) = t {
        fields.push(("t".to_string(), Json::UInt(t)));
    }
    fields.extend([
        ("i".to_string(), Json::UInt(i as u64)),
        ("j".to_string(), Json::UInt(j as u64)),
    ]);
    match verdict {
        SatResult::Sat(model) => {
            let mut pairs: Vec<(&str, u64)> = model.iter().collect();
            pairs.sort_unstable();
            fields.push(("verdict".to_string(), Json::Str("sat".to_string())));
            fields.push((
                "model".to_string(),
                Json::Array(
                    pairs
                        .iter()
                        .map(|(n, v)| Json::Array(vec![Json::Str(n.to_string()), Json::UInt(*v)]))
                        .collect(),
                ),
            ));
        }
        SatResult::Unsat => fields.push(("verdict".to_string(), Json::Str("unsat".to_string()))),
        SatResult::Unknown => {
            fields.push(("verdict".to_string(), Json::Str("unknown".to_string())))
        }
    }
    fields.push(("budget".to_string(), budget_out(budget)));
    Json::Object(fields)
}

pub(crate) fn parse_verdict_record(v: &Json) -> Result<VerdictRec, String> {
    let rec = v.field("rec")?.as_str()?;
    if rec != "verdict" {
        return Err(format!("unexpected record type '{rec}'"));
    }
    let i = v.field("i")?.as_u64()? as usize;
    let j = v.field("j")?.as_u64()? as usize;
    let verdict = match v.field("verdict")?.as_str()? {
        "sat" => {
            let mut model = Assignment::new();
            for pair in v.field("model")?.as_array()? {
                let pair = pair.as_array()?;
                if pair.len() != 2 {
                    return Err("model entry is not a [name, value] pair".to_string());
                }
                model.set(pair[0].as_str()?, pair[1].as_u64()?);
            }
            SatResult::Sat(Arc::new(model))
        }
        "unsat" => SatResult::Unsat,
        "unknown" => SatResult::Unknown,
        other => return Err(format!("unknown verdict '{other}'")),
    };
    let budget = budget_in(v.field("budget")?)?;
    Ok(VerdictRec {
        i,
        j,
        verdict,
        budget,
    })
}

/// Write-ahead journal for crosscheck verdicts. Thread-safe; I/O errors
/// are stashed and surfaced via [`CheckJournal::take_error`].
pub struct CheckJournal {
    writer: Mutex<JournalWriter>,
    failed: Mutex<Option<io::Error>>,
}

impl CheckJournal {
    /// Open (or resume) a crosscheck journal. Returns the journal handle
    /// plus every verdict recovered from an existing valid prefix (empty
    /// in fresh mode or when the file is missing/empty).
    pub fn open(
        path: &Path,
        resume: bool,
        fsync: bool,
        fingerprint: &str,
    ) -> Result<(CheckJournal, Vec<VerdictRec>), JournalError> {
        let header = Json::Object(vec![
            ("format".to_string(), Json::UInt(1)),
            ("kind".to_string(), Json::Str("check".to_string())),
            (
                "fingerprint".to_string(),
                Json::Str(fingerprint.to_string()),
            ),
        ]);
        let (records, writer) = if resume {
            open_resume(path, "check", fingerprint, &header, fsync)?
        } else {
            (Vec::new(), fresh_journal(path, &header, fsync)?)
        };
        let verdicts = records
            .iter()
            .map(parse_verdict_record)
            .collect::<Result<Vec<_>, _>>()
            .map_err(JournalError::Corrupt)?;
        Ok((
            CheckJournal {
                writer: Mutex::new(writer),
                failed: Mutex::new(None),
            },
            verdicts,
        ))
    }

    /// Append one decided (or exhausted) verdict.
    pub fn record(&self, i: usize, j: usize, verdict: &SatResult, budget: &SolverBudget) {
        let rec = verdict_record(None, i, j, verdict, budget);
        let res = recover(&self.writer).append(&rec);
        if let Err(e) = res {
            let mut slot = recover(&self.failed);
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    }

    /// The first journaling I/O failure, if any occurred. Flushes any
    /// buffered frames first, so call this after the crosscheck finishes.
    pub fn take_error(&self) -> Option<io::Error> {
        if let Err(e) = recover(&self.writer).flush() {
            return Some(e);
        }
        recover(&self.failed).take()
    }
}

// ---------------------------------------------------------------------------
// Session journals: one WAL covering the whole streaming pipeline.

/// Identity of one streaming session: the agent pair, the test list, the
/// exploration config, and the (opaque) crosscheck and distillation
/// settings strings. Like [`phase1_fingerprint`], only process-stable
/// scalars are hashed and worker counts are excluded — resuming at a
/// different `--jobs` is supported. Artifact text is *not* part of the
/// identity (the session produces the artifacts); replay validation
/// guards against the agents or tests changing under the journal.
pub fn session_fingerprint(
    agent_a: impl Into<AgentRef>,
    agent_b: impl Into<AgentRef>,
    tests: &[TestCase],
    cfg: &ExplorerConfig,
    check_settings: &str,
    distill_settings: &str,
) -> String {
    let (agent_a, agent_b) = (agent_a.into(), agent_b.into());
    let mut parts: Vec<String> = vec![
        "session".to_string(),
        agent_a.id().to_string(),
        agent_b.id().to_string(),
        cfg.seed.to_string(),
        format!("{:?}", cfg.strategy),
        cfg.max_depth.to_string(),
        budget_out(&cfg.solver_budget).to_string(),
        check_settings.to_string(),
        distill_settings.to_string(),
    ];
    for t in tests {
        parts.push(t.id.to_string());
        parts.push(t.inputs.len().to_string());
    }
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    fnv64_hex(&refs)
}

/// Everything the journal recovered about one (agent, test) exploration
/// unit of a session.
#[derive(Default)]
pub struct UnitRecovery {
    recorded: BTreeMap<Vec<bool>, RecordedPath>,
}

impl UnitRecovery {
    /// No paths were journaled for this unit (explore it from scratch).
    pub fn is_empty(&self) -> bool {
        self.recorded.is_empty()
    }

    /// Number of journaled paths.
    pub fn path_count(&self) -> usize {
        self.recorded.len()
    }

    /// Resume seed replaying the journaled paths and re-scheduling the
    /// remaining frontier (see [`build_seed`]).
    pub fn seed(&self) -> ResumeSeed {
        build_seed(&self.recorded)
    }

    /// Cross-check the resumed exploration against the journal; any
    /// divergence means the agent, test, or engine changed and resuming
    /// would fabricate artifacts.
    pub fn validate(
        &self,
        paths: &[PathResult<soft_protocol::TraceEvent>],
    ) -> Result<(), JournalError> {
        validate_replay(&self.recorded, paths)
    }
}

/// A journaled distillation result for one test: the published corpus
/// bytes plus the summary the CLI reported. On resume the corpus is
/// republished verbatim instead of re-running crosscheck + distillation.
#[derive(Debug, Clone)]
pub struct CorpusRec {
    /// The summary object journaled next to the corpus (counts, exit
    /// severity — whatever the session chose to stash).
    pub summary: Json,
    /// The exact corpus artifact text.
    pub data: String,
}

/// Everything a session journal recovered from its valid prefix: per-unit
/// path records, per-test crosscheck verdicts (superseding rules are the
/// caller's concern, as with [`CheckJournal`]), and per-test finished
/// corpora.
pub struct SessionRecovery {
    /// One entry per exploration unit, in the caller's unit order.
    pub units: Vec<UnitRecovery>,
    /// Journaled verdicts per test, in journal order.
    pub verdicts: Vec<Vec<VerdictRec>>,
    /// Finished distillations per test (last record wins).
    pub corpora: Vec<Option<CorpusRec>>,
}

/// Write-ahead journal covering a whole streaming session: path, output,
/// verdict, and corpus records interleaved in one file. Thread-safe; I/O
/// errors are stashed and surfaced via [`SessionJournal::take_error`].
pub struct SessionJournal {
    shared: SharedSink,
}

/// The unit indices a session journal will accept, fixed at open time so
/// corrupt records cannot allocate unbounded recovery state.
impl SessionJournal {
    /// Open (or resume) a session journal for `n_units` exploration units
    /// and `n_tests` tests. Returns the journal handle plus everything
    /// recovered from an existing valid prefix (all-empty in fresh mode
    /// or when the file is missing/empty).
    pub fn open(
        path: &Path,
        resume: bool,
        fsync: bool,
        fingerprint: &str,
        n_units: usize,
        n_tests: usize,
    ) -> Result<(SessionJournal, SessionRecovery), JournalError> {
        let header = Json::Object(vec![
            ("format".to_string(), Json::UInt(1)),
            ("kind".to_string(), Json::Str("session".to_string())),
            (
                "fingerprint".to_string(),
                Json::Str(fingerprint.to_string()),
            ),
        ]);
        let (records, writer) = if resume {
            open_resume(path, "session", fingerprint, &header, fsync)?
        } else {
            (Vec::new(), fresh_journal(path, &header, fsync)?)
        };
        let mut outputs: BTreeMap<u64, Arc<Vec<EventFile>>> = BTreeMap::new();
        let mut recovery = SessionRecovery {
            units: (0..n_units).map(|_| UnitRecovery::default()).collect(),
            verdicts: vec![Vec::new(); n_tests],
            corpora: vec![None; n_tests],
        };
        let unit_of = |r: &Json, bound: usize| -> Result<usize, JournalError> {
            let u = r
                .field("unit")
                .and_then(Json::as_u64)
                .map_err(JournalError::Corrupt)? as usize;
            if u >= bound {
                return Err(JournalError::Corrupt(format!(
                    "record for unit {u} out of range (session has {bound})"
                )));
            }
            Ok(u)
        };
        let test_of = |r: &Json, bound: usize| -> Result<usize, JournalError> {
            let t = r
                .field("t")
                .and_then(Json::as_u64)
                .map_err(JournalError::Corrupt)? as usize;
            if t >= bound {
                return Err(JournalError::Corrupt(format!(
                    "record for test {t} out of range (session has {bound})"
                )));
            }
            Ok(t)
        };
        for r in &records {
            match r.field("rec").and_then(Json::as_str) {
                Ok("output") => {
                    let (oid, events) = parse_output_record(r).map_err(JournalError::Corrupt)?;
                    outputs.insert(oid, Arc::new(events));
                }
                Ok("path") => {
                    let unit = unit_of(r, n_units)?;
                    let (decisions, rec) =
                        parse_path_record(r, &outputs).map_err(JournalError::Corrupt)?;
                    let recorded = &mut recovery.units[unit].recorded;
                    if let Some(prev) = recorded.get(&decisions) {
                        if *prev != rec {
                            return Err(JournalError::Corrupt(format!(
                                "unit {unit}: conflicting duplicate records for one \
                                 decision sequence"
                            )));
                        }
                        continue;
                    }
                    recorded.insert(decisions, rec);
                }
                Ok("verdict") => {
                    let t = test_of(r, n_tests)?;
                    let v = parse_verdict_record(r).map_err(JournalError::Corrupt)?;
                    recovery.verdicts[t].push(v);
                }
                Ok("corpus") => {
                    let t = test_of(r, n_tests)?;
                    let summary = r.field("summary").map_err(JournalError::Corrupt)?.clone();
                    let data = r
                        .field("data")
                        .and_then(Json::as_str)
                        .map_err(JournalError::Corrupt)?
                        .to_string();
                    recovery.corpora[t] = Some(CorpusRec { summary, data });
                }
                Ok(other) => {
                    return Err(JournalError::Corrupt(format!(
                        "unknown record kind '{other}'"
                    )));
                }
                Err(e) => return Err(JournalError::Corrupt(e)),
            }
        }
        let next_oid = outputs.keys().next_back().map_or(0, |m| m + 1);
        Ok((
            SessionJournal {
                shared: SharedSink::new(writer, next_oid),
            },
            recovery,
        ))
    }

    /// The path sink for one exploration unit; hand it to the explorer
    /// (possibly teed with a streaming sink). Replayed paths are ignored
    /// — they are already on record.
    pub fn unit_sink(&self, unit: usize) -> SessionUnitSink<'_> {
        SessionUnitSink {
            inner: RecordSink {
                shared: &self.shared,
                unit: Some(unit as u64),
            },
        }
    }

    /// Append one decided (or exhausted) crosscheck verdict for `test`.
    pub fn record_verdict(
        &self,
        test: usize,
        i: usize,
        j: usize,
        verdict: &SatResult,
        budget: &SolverBudget,
    ) {
        let rec = verdict_record(Some(test as u64), i, j, verdict, budget);
        self.shared.append_json(&rec);
    }

    /// Journal the finished distillation for `test`: the exact corpus
    /// artifact text plus a summary object of the caller's choosing.
    /// Written *after* the corpus artifact is published, so a journaled
    /// corpus implies the test is fully done.
    pub fn record_corpus(&self, test: usize, summary: &Json, data: &str) {
        let rec = Json::Object(vec![
            ("rec".to_string(), Json::Str("corpus".to_string())),
            ("t".to_string(), Json::UInt(test as u64)),
            ("summary".to_string(), summary.clone()),
            ("data".to_string(), Json::Str(data.to_string())),
        ]);
        self.shared.append_json(&rec);
    }

    /// The first journaling I/O failure, if any occurred. Flushes any
    /// buffered frames first; call at unit/test boundaries and once at
    /// session end.
    pub fn take_error(&self) -> Option<io::Error> {
        match self.shared.finish() {
            Err(JournalError::Io(e)) => Some(e),
            _ => None,
        }
    }
}

/// One unit's [`PathSink`] view of a [`SessionJournal`].
pub struct SessionUnitSink<'a> {
    inner: RecordSink<'a>,
}

impl PathSink<soft_protocol::TraceEvent> for SessionUnitSink<'_> {
    fn on_path(
        &self,
        origin: &[bool],
        result: &PathResult<soft_protocol::TraceEvent>,
        pending: &[(Vec<bool>, &str)],
    ) {
        self.inner.on_path(origin, result, pending);
    }
}

/// Explore one (agent, test) unit of a streaming session: seed from the
/// recovered unit state (an empty recovery explores from scratch), emit
/// every path — fresh or replayed — through `sink` (typically a tee of
/// [`SessionJournal::unit_sink`] and a streaming consumer), validate the
/// replay against the journal, and summarize. Byte-identical (modulo
/// wall time) to [`run_test_durable`] for the same unit at any worker
/// count.
pub fn run_unit_durable(
    agent: impl Into<AgentRef>,
    test: &TestCase,
    cfg: &ExplorerConfig,
    recovery: &UnitRecovery,
    sink: &dyn PathSink<soft_protocol::TraceEvent>,
) -> Result<TestRun, JournalError> {
    let agent = agent.into();
    check_resumable(cfg)?;
    let seed = recovery.seed();
    let ex = explore_fn_seeded(cfg, agent_program(agent, test), Some(&seed), Some(sink));
    recovery.validate(&ex.paths)?;
    Ok(summarize(agent, test, ex))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use soft_agents::AgentKind;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("soft_journal_{}_{}", std::process::id(), name))
    }

    fn write_records(path: &Path, payloads: &[&str]) {
        let file = fs::File::create(path).unwrap();
        let mut w = JournalWriter::new(file, false);
        for p in payloads {
            w.append(&json::parse(p).unwrap()).unwrap();
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn records_roundtrip() {
        let path = temp_path("roundtrip");
        write_records(&path, &[r#"{"a":1}"#, r#"{"b":[true,"x"]}"#]);
        let raw = scan_records(&fs::read(&path).unwrap());
        assert_eq!(raw.records.len(), 2);
        assert!(!raw.dropped_tail);
        assert_eq!(
            raw.records[1].get("b").unwrap().as_array().unwrap().len(),
            2
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = temp_path("torn");
        write_records(&path, &[r#"{"a":1}"#, r#"{"b":2}"#]);
        let full = fs::read(&path).unwrap();
        // Simulate a crash mid-append: a frame header promising more
        // bytes than the file holds.
        let mut torn = full.clone();
        torn.extend_from_slice(&100u32.to_le_bytes());
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(b"half");
        let raw = scan_records(&torn);
        assert_eq!(raw.records.len(), 2);
        assert!(raw.dropped_tail);
        assert_eq!(raw.valid_len as usize, full.len());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_truncates_from_damage_onward() {
        let path = temp_path("corrupt");
        write_records(&path, &[r#"{"a":1}"#, r#"{"b":2}"#, r#"{"c":3}"#]);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte inside the second record.
        let first_frame = 8 + r#"{"a":1}"#.len();
        bytes[first_frame + 8 + 2] ^= 0xFF;
        let raw = scan_records(&bytes);
        assert_eq!(raw.records.len(), 1, "records after the damage are dropped");
        assert!(raw.dropped_tail);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_missing_files_scan_clean() {
        let raw = scan_records(&[]);
        assert!(raw.records.is_empty());
        assert!(!raw.dropped_tail);
        assert_eq!(raw.valid_len, 0);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let path = temp_path("atomic");
        atomic_write(&path, b"first version", true).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first version");
        atomic_write(&path, b"second", false).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp droppings left behind.
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(&name) && e.path() != path)
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dir_sync_real_errors_propagate() {
        let path = temp_path("dirsync_err");
        let fail = |_: &Path| -> io::Result<()> { Err(io::Error::other("disk on fire")) };
        let err = atomic_write_with(&path, b"x", true, &fail).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // The rename happened before the failed sync, so the bytes are
        // on disk — the error reports the durability gap, not data loss.
        assert_eq!(fs::read(&path).unwrap(), b"x");
        // Without fsync the directory-sync step never runs at all.
        atomic_write_with(&path, b"y", false, &fail).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"y");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dir_sync_refusals_are_excused() {
        let path = temp_path("dirsync_refused");
        let enotsup =
            |_: &Path| -> io::Result<()> { Err(io::Error::from(io::ErrorKind::Unsupported)) };
        atomic_write_with(&path, b"x", true, &enotsup).unwrap();
        let einval = |_: &Path| -> io::Result<()> { Err(io::Error::from_raw_os_error(22)) };
        atomic_write_with(&path, b"y", true, &einval).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"y");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_writers_to_one_target_never_collide() {
        let path = temp_path("atomic_race");
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let path = path.clone();
                s.spawn(move || {
                    let data = vec![b'a' + t; 64];
                    for _ in 0..50 {
                        atomic_write(&path, &data, false).unwrap();
                    }
                });
            }
        });
        // The survivor is one writer's payload in full, never a mix.
        let bytes = fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 64);
        assert!(bytes.windows(2).all(|w| w[0] == w[1]));
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(&name) && e.path() != path)
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn budget_roundtrips_through_wire_form() {
        for b in [
            SolverBudget::unlimited(),
            SolverBudget::conflicts(123),
            SolverBudget {
                max_conflicts: Some(5),
                max_propagations: Some(99),
                time_limit: Some(Duration::from_micros(1500)),
            },
        ] {
            assert_eq!(budget_in(&budget_out(&b)).unwrap(), b);
        }
    }

    #[test]
    fn verdict_records_roundtrip() {
        let mut model = Assignment::new();
        model.set("m0.x", 7);
        model.set("m0.y", 0xfffd);
        let cases = [
            (
                SatResult::Sat(Arc::new(model.clone())),
                SolverBudget::conflicts(10),
            ),
            (SatResult::Unsat, SolverBudget::unlimited()),
            (SatResult::Unknown, SolverBudget::conflicts(1)),
        ];
        for (k, (verdict, budget)) in cases.iter().enumerate() {
            let rec =
                parse_verdict_record(&verdict_record(None, k, k + 1, verdict, budget)).unwrap();
            assert_eq!(rec.i, k);
            assert_eq!(rec.j, k + 1);
            assert_eq!(rec.budget, *budget);
            match (&rec.verdict, verdict) {
                (SatResult::Sat(a), SatResult::Sat(b)) => assert_eq!(**a, **b),
                (SatResult::Unsat, SatResult::Unsat) => {}
                (SatResult::Unknown, SatResult::Unknown) => {}
                other => panic!("verdict did not roundtrip: {other:?}"),
            }
        }
    }

    #[test]
    fn durable_run_matches_plain_run() {
        let tests = suite::table1_suite();
        let agent = AgentKind::Reference;
        let test = &tests[0];
        let cfg = ExplorerConfig::default();
        let plain = crate::run_test(agent, test, &cfg);
        let path = temp_path("fresh_run");
        let run = run_test_durable(
            agent,
            test,
            &cfg,
            &DurableRun {
                journal: &path,
                resume: false,
                fsync: false,
            },
        )
        .unwrap();
        assert_eq!(
            crate::wire::TestRunFile::from_run(&run).paths,
            crate::wire::TestRunFile::from_run(&plain).paths
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_from_complete_journal_is_identical_and_appends_nothing() {
        let tests = suite::table1_suite();
        let agent = AgentKind::Reference;
        let test = &tests[0];
        let cfg = ExplorerConfig::default();
        let path = temp_path("resume_full");
        let opts = DurableRun {
            journal: &path,
            resume: false,
            fsync: false,
        };
        let first = run_test_durable(agent, test, &cfg, &opts).unwrap();
        let journal_after_first = fs::read(&path).unwrap();
        // Resume with a different worker count: replay everything, fork
        // nothing, append nothing.
        let cfg4 = ExplorerConfig {
            workers: 4,
            ..ExplorerConfig::default()
        };
        let resumed = run_test_durable(
            agent,
            test,
            &cfg4,
            &DurableRun {
                journal: &path,
                resume: true,
                fsync: false,
            },
        )
        .unwrap();
        assert_eq!(
            crate::wire::TestRunFile::from_run(&first).paths,
            crate::wire::TestRunFile::from_run(&resumed).paths
        );
        assert_eq!(resumed.stats.fresh_branches, 0, "full replay must not fork");
        assert_eq!(fs::read(&path).unwrap(), journal_after_first);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_from_truncated_journal_completes_the_run() {
        let tests = suite::table1_suite();
        let agent = AgentKind::Reference;
        let test = &tests[0];
        let cfg = ExplorerConfig::default();
        let path = temp_path("resume_cut");
        let opts = DurableRun {
            journal: &path,
            resume: false,
            fsync: false,
        };
        let reference = run_test_durable(agent, test, &cfg, &opts).unwrap();
        // Keep the header plus the first two path records; drop the rest
        // plus simulate a torn final append.
        let bytes = fs::read(&path).unwrap();
        let raw = scan_records(&bytes);
        assert!(raw.records.len() > 3, "need a few records to cut");
        let mut keep = 0usize;
        for _ in 0..3 {
            let len = u32::from_le_bytes(bytes[keep..keep + 4].try_into().unwrap()) as usize;
            keep += 8 + len;
        }
        let mut cut = bytes[..keep].to_vec();
        cut.extend_from_slice(&77u32.to_le_bytes()); // torn tail
        fs::write(&path, &cut).unwrap();
        let resumed = run_test_durable(
            agent,
            test,
            &cfg,
            &DurableRun {
                journal: &path,
                resume: true,
                fsync: false,
            },
        )
        .unwrap();
        assert_eq!(
            crate::wire::TestRunFile::from_run(&reference).paths,
            crate::wire::TestRunFile::from_run(&resumed).paths
        );
        // The journal is complete again: a further resume owes nothing.
        let raw = scan_records(&fs::read(&path).unwrap());
        assert!(!raw.dropped_tail);
        let path_records = raw
            .records
            .iter()
            .filter(|r| matches!(r.get("rec").and_then(|t| t.as_str().ok()), Some("path")))
            .count();
        assert_eq!(
            path_records,
            reference.paths.len() + reference.stats.aborted
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_refuses_foreign_fingerprint() {
        let tests = suite::table1_suite();
        let cfg = ExplorerConfig::default();
        let path = temp_path("foreign");
        run_test_durable(
            AgentKind::Reference,
            &tests[0],
            &cfg,
            &DurableRun {
                journal: &path,
                resume: false,
                fsync: false,
            },
        )
        .unwrap();
        // Same journal, different agent: must refuse, not fabricate.
        let err = run_test_durable(
            AgentKind::OpenVSwitch,
            &tests[0],
            &cfg,
            &DurableRun {
                journal: &path,
                resume: true,
                fsync: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)), "got {err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_refuses_unsupported_limits() {
        let tests = suite::table1_suite();
        let path = temp_path("limits");
        for cfg in [
            ExplorerConfig {
                time_limit: Some(Duration::from_secs(1)),
                ..ExplorerConfig::default()
            },
            ExplorerConfig {
                max_paths: Some(3),
                ..ExplorerConfig::default()
            },
        ] {
            let err = run_test_durable(
                AgentKind::Reference,
                &tests[0],
                &cfg,
                &DurableRun {
                    journal: &path,
                    resume: false,
                    fsync: false,
                },
            )
            .unwrap_err();
            assert!(matches!(err, JournalError::Unsupported(_)), "got {err}");
        }
    }

    #[test]
    fn check_journal_roundtrips_and_resumes() {
        let path = temp_path("checkj");
        let fp = check_fingerprint("artifact-a", "artifact-b", "budget=10");
        let (j, seeds) = CheckJournal::open(&path, false, false, &fp).unwrap();
        assert!(seeds.is_empty());
        j.record(0, 1, &SatResult::Unsat, &SolverBudget::conflicts(10));
        let mut model = Assignment::new();
        model.set("w.x", 3);
        j.record(
            2,
            0,
            &SatResult::Sat(Arc::new(model)),
            &SolverBudget::conflicts(10),
        );
        assert!(j.take_error().is_none());
        drop(j);
        let (_j2, seeds) = CheckJournal::open(&path, true, false, &fp).unwrap();
        assert_eq!(seeds.len(), 2);
        assert!(seeds[0].verdict.is_unsat());
        assert_eq!(seeds[1].i, 2);
        assert_eq!(seeds[1].verdict.model().unwrap().get("w.x"), Some(3));
        // Wrong fingerprint refuses.
        let err = match CheckJournal::open(&path, true, false, "0000000000000000") {
            Ok(_) => panic!("foreign fingerprint accepted"),
            Err(e) => e,
        };
        assert!(matches!(err, JournalError::Mismatch(_)));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn session_journal_roundtrips_all_record_kinds() {
        let tests = suite::table1_suite();
        let test = &tests[0];
        let cfg = ExplorerConfig::default();
        let path = temp_path("session");
        let fp = session_fingerprint(
            AgentKind::Reference,
            AgentKind::OpenVSwitch,
            std::slice::from_ref(test),
            &cfg,
            "budget=unlimited",
            "seed=0;fuzz=0",
        );
        let (j, rec) = SessionJournal::open(&path, false, false, &fp, 2, 1).unwrap();
        assert!(rec.units.iter().all(UnitRecovery::is_empty));
        assert!(rec.verdicts[0].is_empty() && rec.corpora[0].is_none());
        // Unit 0 explores through the journal; unit 1 stays untouched.
        let sink = j.unit_sink(0);
        let ex = explore_fn_seeded(
            &cfg,
            agent_program(AgentKind::Reference.into(), test),
            None,
            Some(&sink),
        );
        j.record_verdict(0, 1, 2, &SatResult::Unsat, &SolverBudget::conflicts(10));
        let summary = Json::Object(vec![("inconsistencies".to_string(), Json::UInt(3))]);
        j.record_corpus(0, &summary, "{\"corpus\":true}");
        assert!(j.take_error().is_none());
        drop(j);
        let (_j2, rec) = SessionJournal::open(&path, true, false, &fp, 2, 1).unwrap();
        assert_eq!(rec.units[0].path_count(), ex.paths.len());
        rec.units[0].validate(&ex.paths).unwrap();
        assert!(rec.units[1].is_empty());
        // A full unit's seed replays everything and leaves no frontier.
        let seed = rec.units[0].seed();
        assert_eq!(seed.replay.len(), ex.paths.len());
        assert!(seed.frontier.is_empty());
        assert_eq!(rec.verdicts[0].len(), 1);
        assert!(rec.verdicts[0][0].verdict.is_unsat());
        let corpus = rec.corpora[0].as_ref().expect("corpus recovered");
        assert_eq!(corpus.data, "{\"corpus\":true}");
        assert_eq!(
            corpus.summary.field("inconsistencies").unwrap().as_u64(),
            Ok(3)
        );
        // Wrong fingerprint refuses.
        let err = match SessionJournal::open(&path, true, false, "0000000000000000", 2, 1) {
            Ok(_) => panic!("foreign fingerprint accepted"),
            Err(e) => e,
        };
        assert!(matches!(err, JournalError::Mismatch(_)));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn session_journal_rejects_out_of_range_units_and_tests() {
        let path = temp_path("session_range");
        let fp = "00000000000000ab";
        let (j, _) = SessionJournal::open(&path, false, false, fp, 1, 1).unwrap();
        j.record_verdict(5, 0, 0, &SatResult::Unknown, &SolverBudget::conflicts(1));
        assert!(j.take_error().is_none());
        drop(j);
        let err = match SessionJournal::open(&path, true, false, fp, 1, 1) {
            Ok(_) => panic!("out-of-range test index accepted"),
            Err(e) => e,
        };
        assert!(matches!(err, JournalError::Corrupt(_)), "got {err}");
        fs::remove_file(&path).unwrap();
    }
}
