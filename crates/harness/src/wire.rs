//! Serializable phase-1 artifacts.
//!
//! SOFT's two phases are decoupled (§2.4): each vendor runs symbolic
//! execution on its own agent and ships only *intermediate results* — the
//! input-space partition (path conditions) and the output observed for
//! each subspace. This module defines that interchange format as JSON with
//! terms in the `soft-smt` wire syntax, so the crosschecking party needs
//! no access to the agent at all.

use crate::runner::{ObservedOutput, PathRecord, TestRun};
use serde::{Deserialize, Serialize};
use soft_openflow::TraceEvent;
use soft_smt::{sexpr, Term};
use soft_sym::SymBuf;

/// Serializable form of a term.
fn term_out(t: &Term) -> String {
    sexpr::to_wire(t)
}

fn term_in(s: &str) -> Result<Term, String> {
    sexpr::from_wire(s).map_err(|e| e.to_string())
}

/// Serializable form of a byte buffer: each byte as a wire term.
fn buf_out(b: &SymBuf) -> Vec<String> {
    b.bytes().iter().map(term_out).collect()
}

fn buf_in(v: &[String]) -> Result<SymBuf, String> {
    let mut b = SymBuf::empty();
    for s in v {
        let t = term_in(s)?;
        if t.sort() != soft_smt::Sort::Bv(8) {
            return Err(format!("buffer byte has sort {:?}", t.sort()));
        }
        b.push(t);
    }
    Ok(b)
}

/// Wire form of one trace event.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum EventFile {
    /// OpenFlow error message.
    Error {
        /// Transaction id (wire term).
        xid: String,
        /// Error type (wire term).
        etype: String,
        /// Error code (wire term).
        code: String,
    },
    /// Packet In message.
    PacketIn {
        /// Buffer id (wire term).
        buffer_id: String,
        /// Ingress port (wire term).
        in_port: String,
        /// Reason (wire term).
        reason: String,
        /// Included data length (wire term).
        data_len: String,
        /// Data bytes (wire terms).
        data: Vec<String>,
    },
    /// Any other OpenFlow reply.
    OfReply {
        /// Reply message type.
        msg_type: u8,
        /// Named fields (name, wire term).
        fields: Vec<(String, String)>,
        /// Body bytes (wire terms).
        body: Vec<String>,
    },
    /// Data-plane transmission.
    DataPlaneTx {
        /// Egress port (wire term).
        port: String,
        /// Frame bytes (wire terms).
        data: Vec<String>,
    },
    /// Flooded frame.
    Flood {
        /// Ingress excluded from the flood set?
        exclude_ingress: bool,
        /// Frame bytes (wire terms).
        data: Vec<String>,
    },
    /// Handed to the traditional forwarding path.
    NormalForward {
        /// Frame bytes (wire terms).
        data: Vec<String>,
    },
    /// Probe produced no output.
    ProbeDropped,
}

impl EventFile {
    /// Convert from the in-memory event.
    pub fn from_event(e: &TraceEvent) -> EventFile {
        match e {
            TraceEvent::Error { xid, etype, code } => EventFile::Error {
                xid: term_out(xid),
                etype: term_out(etype),
                code: term_out(code),
            },
            TraceEvent::PacketIn {
                buffer_id,
                in_port,
                reason,
                data_len,
                data,
            } => EventFile::PacketIn {
                buffer_id: term_out(buffer_id),
                in_port: term_out(in_port),
                reason: term_out(reason),
                data_len: term_out(data_len),
                data: buf_out(data),
            },
            TraceEvent::OfReply {
                msg_type,
                fields,
                body,
            } => EventFile::OfReply {
                msg_type: *msg_type,
                fields: fields
                    .iter()
                    .map(|(n, t)| (n.to_string(), term_out(t)))
                    .collect(),
                body: buf_out(body),
            },
            TraceEvent::DataPlaneTx { port, data } => EventFile::DataPlaneTx {
                port: term_out(port),
                data: buf_out(data),
            },
            TraceEvent::Flood {
                exclude_ingress,
                data,
            } => EventFile::Flood {
                exclude_ingress: *exclude_ingress,
                data: buf_out(data),
            },
            TraceEvent::NormalForward { data } => EventFile::NormalForward { data: buf_out(data) },
            TraceEvent::ProbeDropped => EventFile::ProbeDropped,
        }
    }

    /// Convert back to the in-memory event. Field names are interned as
    /// static strings from a fixed vocabulary; unknown names are rejected.
    pub fn to_event(&self) -> Result<TraceEvent, String> {
        Ok(match self {
            EventFile::Error { xid, etype, code } => TraceEvent::Error {
                xid: term_in(xid)?,
                etype: term_in(etype)?,
                code: term_in(code)?,
            },
            EventFile::PacketIn {
                buffer_id,
                in_port,
                reason,
                data_len,
                data,
            } => TraceEvent::PacketIn {
                buffer_id: term_in(buffer_id)?,
                in_port: term_in(in_port)?,
                reason: term_in(reason)?,
                data_len: term_in(data_len)?,
                data: buf_in(data)?,
            },
            EventFile::OfReply {
                msg_type,
                fields,
                body,
            } => TraceEvent::OfReply {
                msg_type: *msg_type,
                fields: fields
                    .iter()
                    .map(|(n, t)| Ok((intern_field(n)?, term_in(t)?)))
                    .collect::<Result<Vec<_>, String>>()?,
                body: buf_in(body)?,
            },
            EventFile::DataPlaneTx { port, data } => TraceEvent::DataPlaneTx {
                port: term_in(port)?,
                data: buf_in(data)?,
            },
            EventFile::Flood {
                exclude_ingress,
                data,
            } => TraceEvent::Flood {
                exclude_ingress: *exclude_ingress,
                data: buf_in(data)?,
            },
            EventFile::NormalForward { data } => TraceEvent::NormalForward { data: buf_in(data)? },
            EventFile::ProbeDropped => TraceEvent::ProbeDropped,
        })
    }
}

/// The fixed vocabulary of reply field names.
const FIELD_NAMES: [&str; 10] = [
    "xid",
    "stats_type",
    "flags",
    "miss_send_len",
    "datapath_id",
    "n_buffers",
    "n_tables",
    "port",
    "priority",
    "cookie",
];

fn intern_field(n: &str) -> Result<&'static str, String> {
    FIELD_NAMES
        .iter()
        .find(|f| **f == n)
        .copied()
        .ok_or_else(|| format!("unknown reply field '{n}'"))
}

/// Wire form of one explored path.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PathFile {
    /// Path condition (wire term).
    pub condition: String,
    /// Whether the agent crashed.
    pub crashed: bool,
    /// Normalized output events.
    pub events: Vec<EventFile>,
}

/// Wire form of a whole test run — the phase-1 artifact a vendor ships.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TestRunFile {
    /// Agent identifier.
    pub agent: String,
    /// Test identifier.
    pub test: String,
    /// Explored paths.
    pub paths: Vec<PathFile>,
    /// Exploration wall-clock time, milliseconds.
    pub wall_ms: u64,
    /// Instruction coverage percent.
    pub instruction_pct: f64,
    /// Branch coverage percent.
    pub branch_pct: f64,
    /// Whether exploration hit a configured limit.
    pub truncated: bool,
}

impl TestRunFile {
    /// Build the wire form of a test run.
    pub fn from_run(run: &TestRun) -> TestRunFile {
        TestRunFile {
            agent: run.agent.clone(),
            test: run.test.clone(),
            paths: run
                .paths
                .iter()
                .map(|p| PathFile {
                    condition: term_out(&p.condition),
                    crashed: p.output.crashed,
                    events: p.output.events.iter().map(EventFile::from_event).collect(),
                })
                .collect(),
            wall_ms: run.wall.as_millis() as u64,
            instruction_pct: run.instruction_pct,
            branch_pct: run.branch_pct,
            truncated: run.stats.truncated,
        }
    }

    /// Reconstruct the in-memory records (for the crosschecking phase —
    /// no agent access needed).
    pub fn to_paths(&self) -> Result<Vec<PathRecord>, String> {
        self.paths
            .iter()
            .map(|p| {
                let condition = term_in(&p.condition)?;
                let events = p
                    .events
                    .iter()
                    .map(EventFile::to_event)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(PathRecord {
                    constraint_size: soft_smt::metrics::op_count(&condition),
                    condition,
                    output: ObservedOutput { events, crashed: p.crashed },
                })
            })
            .collect()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("TestRunFile serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<TestRunFile, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent::PacketIn {
            buffer_id: Term::bv_const(32, 0),
            in_port: Term::var("w.in", 16),
            reason: Term::bv_const(8, 0),
            data_len: Term::bv_const(16, 2),
            data: SymBuf::concrete(&[0xab, 0xcd]),
        }
    }

    #[test]
    fn event_roundtrip() {
        let e = sample_event();
        let f = EventFile::from_event(&e);
        assert_eq!(f.to_event().unwrap(), e);

        let err = TraceEvent::Error {
            xid: Term::bv_const(32, 0),
            etype: Term::bv_const(16, 1),
            code: Term::bv_const(16, 6),
        };
        let f = EventFile::from_event(&err);
        assert_eq!(f.to_event().unwrap(), err);
    }

    #[test]
    fn of_reply_roundtrip_interns_fields() {
        let e = TraceEvent::OfReply {
            msg_type: 17,
            fields: vec![("stats_type", Term::bv_const(16, 3))],
            body: SymBuf::concrete(b"x"),
        };
        let f = EventFile::from_event(&e);
        assert_eq!(f.to_event().unwrap(), e);
    }

    #[test]
    fn unknown_field_rejected() {
        let f = EventFile::OfReply {
            msg_type: 17,
            fields: vec![("bogus".into(), "(c 16 1)".into())],
            body: vec![],
        };
        assert!(f.to_event().is_err());
    }

    #[test]
    fn run_file_json_roundtrip() {
        let cond = Term::var("w.x", 8).eq(Term::bv_const(8, 7));
        let run_file = TestRunFile {
            agent: "reference".into(),
            test: "packet_out".into(),
            paths: vec![PathFile {
                condition: sexpr::to_wire(&cond),
                crashed: true,
                events: vec![EventFile::from_event(&sample_event())],
            }],
            wall_ms: 12,
            instruction_pct: 26.2,
            branch_pct: 19.3,
            truncated: false,
        };
        let json = run_file.to_json();
        let back = TestRunFile::from_json(&json).unwrap();
        assert_eq!(back, run_file);
        let paths = back.to_paths().unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].condition, cond);
        assert!(paths[0].output.crashed);
    }

    #[test]
    fn corrupt_json_rejected() {
        assert!(TestRunFile::from_json("{").is_err());
        assert!(TestRunFile::from_json("{\"agent\": 3}").is_err());
    }
}
