//! Serializable phase-1 artifacts.
//!
//! SOFT's two phases are decoupled (§2.4): each vendor runs symbolic
//! execution on its own agent and ships only *intermediate results* — the
//! input-space partition (path conditions) and the output observed for
//! each subspace. This module defines that interchange format as JSON with
//! terms in the `soft-smt` wire syntax, so the crosschecking party needs
//! no access to the agent at all.

use crate::json::{self, Json};
use crate::runner::{ObservedOutput, PathRecord, TestRun};
use soft_protocol::TraceEvent;
use soft_smt::{sexpr, Term};
use soft_sym::SymBuf;

/// Serializable form of a term.
fn term_out(t: &Term) -> String {
    sexpr::to_wire(t)
}

fn term_in(s: &str) -> Result<Term, String> {
    sexpr::from_wire(s).map_err(|e| e.to_string())
}

/// Serializable form of a byte buffer: each byte as a wire term.
fn buf_out(b: &SymBuf) -> Vec<String> {
    b.bytes().iter().map(term_out).collect()
}

fn buf_in(v: &[String]) -> Result<SymBuf, String> {
    let mut b = SymBuf::empty();
    for s in v {
        let t = term_in(s)?;
        if t.sort() != soft_smt::Sort::Bv(8) {
            return Err(format!("buffer byte has sort {:?}", t.sort()));
        }
        b.push(t);
    }
    Ok(b)
}

/// Wire form of one trace event. Serialized as an internally tagged
/// object: `{"kind": "<snake_case variant>", ...fields}`.
#[derive(Debug, Clone, PartialEq)]
pub enum EventFile {
    /// OpenFlow error message.
    Error {
        /// Transaction id (wire term).
        xid: String,
        /// Error type (wire term).
        etype: String,
        /// Error code (wire term).
        code: String,
    },
    /// Packet In message.
    PacketIn {
        /// Buffer id (wire term).
        buffer_id: String,
        /// Ingress port (wire term).
        in_port: String,
        /// Reason (wire term).
        reason: String,
        /// Included data length (wire term).
        data_len: String,
        /// Data bytes (wire terms).
        data: Vec<String>,
    },
    /// Any other OpenFlow reply.
    OfReply {
        /// Reply message type.
        msg_type: u8,
        /// Named fields (name, wire term).
        fields: Vec<(String, String)>,
        /// Body bytes (wire terms).
        body: Vec<String>,
    },
    /// Data-plane transmission.
    DataPlaneTx {
        /// Egress port (wire term).
        port: String,
        /// Frame bytes (wire terms).
        data: Vec<String>,
    },
    /// Flooded frame.
    Flood {
        /// Ingress excluded from the flood set?
        exclude_ingress: bool,
        /// Frame bytes (wire terms).
        data: Vec<String>,
    },
    /// Handed to the traditional forwarding path.
    NormalForward {
        /// Frame bytes (wire terms).
        data: Vec<String>,
    },
    /// Probe produced no output.
    ProbeDropped,
}

impl EventFile {
    /// Convert from the in-memory event.
    pub fn from_event(e: &TraceEvent) -> EventFile {
        match e {
            TraceEvent::Error { xid, etype, code } => EventFile::Error {
                xid: term_out(xid),
                etype: term_out(etype),
                code: term_out(code),
            },
            TraceEvent::PacketIn {
                buffer_id,
                in_port,
                reason,
                data_len,
                data,
            } => EventFile::PacketIn {
                buffer_id: term_out(buffer_id),
                in_port: term_out(in_port),
                reason: term_out(reason),
                data_len: term_out(data_len),
                data: buf_out(data),
            },
            TraceEvent::OfReply {
                msg_type,
                fields,
                body,
            } => EventFile::OfReply {
                msg_type: *msg_type,
                fields: fields
                    .iter()
                    .map(|(n, t)| (n.to_string(), term_out(t)))
                    .collect(),
                body: buf_out(body),
            },
            TraceEvent::DataPlaneTx { port, data } => EventFile::DataPlaneTx {
                port: term_out(port),
                data: buf_out(data),
            },
            TraceEvent::Flood {
                exclude_ingress,
                data,
            } => EventFile::Flood {
                exclude_ingress: *exclude_ingress,
                data: buf_out(data),
            },
            TraceEvent::NormalForward { data } => EventFile::NormalForward {
                data: buf_out(data),
            },
            TraceEvent::ProbeDropped => EventFile::ProbeDropped,
        }
    }

    /// Convert back to the in-memory event. Field names are interned as
    /// static strings from a fixed vocabulary; unknown names are rejected.
    pub fn to_event(&self) -> Result<TraceEvent, String> {
        Ok(match self {
            EventFile::Error { xid, etype, code } => TraceEvent::Error {
                xid: term_in(xid)?,
                etype: term_in(etype)?,
                code: term_in(code)?,
            },
            EventFile::PacketIn {
                buffer_id,
                in_port,
                reason,
                data_len,
                data,
            } => TraceEvent::PacketIn {
                buffer_id: term_in(buffer_id)?,
                in_port: term_in(in_port)?,
                reason: term_in(reason)?,
                data_len: term_in(data_len)?,
                data: buf_in(data)?,
            },
            EventFile::OfReply {
                msg_type,
                fields,
                body,
            } => TraceEvent::OfReply {
                msg_type: *msg_type,
                fields: fields
                    .iter()
                    .map(|(n, t)| Ok((intern_field(n)?, term_in(t)?)))
                    .collect::<Result<Vec<_>, String>>()?,
                body: buf_in(body)?,
            },
            EventFile::DataPlaneTx { port, data } => TraceEvent::DataPlaneTx {
                port: term_in(port)?,
                data: buf_in(data)?,
            },
            EventFile::Flood {
                exclude_ingress,
                data,
            } => TraceEvent::Flood {
                exclude_ingress: *exclude_ingress,
                data: buf_in(data)?,
            },
            EventFile::NormalForward { data } => TraceEvent::NormalForward {
                data: buf_in(data)?,
            },
            EventFile::ProbeDropped => TraceEvent::ProbeDropped,
        })
    }
}

/// The fixed vocabulary of reply field names.
const FIELD_NAMES: [&str; 10] = [
    "xid",
    "stats_type",
    "flags",
    "miss_send_len",
    "datapath_id",
    "n_buffers",
    "n_tables",
    "port",
    "priority",
    "cookie",
];

fn intern_field(n: &str) -> Result<&'static str, String> {
    FIELD_NAMES
        .iter()
        .find(|f| **f == n)
        .copied()
        .ok_or_else(|| format!("unknown reply field '{n}'"))
}

/// Wire form of one explored path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathFile {
    /// Path condition (wire term).
    pub condition: String,
    /// Whether the agent crashed.
    pub crashed: bool,
    /// Normalized output events.
    pub events: Vec<EventFile>,
}

/// Wire form of a whole test run — the phase-1 artifact a vendor ships.
#[derive(Debug, Clone, PartialEq)]
pub struct TestRunFile {
    /// Agent identifier.
    pub agent: String,
    /// Test identifier.
    pub test: String,
    /// Explored paths.
    pub paths: Vec<PathFile>,
    /// Exploration wall-clock time, milliseconds.
    pub wall_ms: u64,
    /// Instruction coverage percent.
    pub instruction_pct: f64,
    /// Branch coverage percent.
    pub branch_pct: f64,
    /// Whether exploration hit a configured limit.
    pub truncated: bool,
}

impl TestRunFile {
    /// Build the wire form of a test run.
    pub fn from_run(run: &TestRun) -> TestRunFile {
        TestRunFile {
            agent: run.agent.clone(),
            test: run.test.clone(),
            paths: run
                .paths
                .iter()
                .map(|p| PathFile {
                    condition: term_out(&p.condition),
                    crashed: p.output.crashed,
                    events: p.output.events.iter().map(EventFile::from_event).collect(),
                })
                .collect(),
            wall_ms: run.wall.as_millis() as u64,
            instruction_pct: run.instruction_pct,
            branch_pct: run.branch_pct,
            truncated: run.stats.truncated,
        }
    }

    /// Reconstruct the in-memory records (for the crosschecking phase —
    /// no agent access needed).
    pub fn to_paths(&self) -> Result<Vec<PathRecord>, String> {
        self.paths
            .iter()
            .map(|p| {
                let condition = term_in(&p.condition)?;
                let events = p
                    .events
                    .iter()
                    .map(EventFile::to_event)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(PathRecord {
                    constraint_size: soft_smt::metrics::op_count(&condition),
                    condition,
                    output: ObservedOutput {
                        events,
                        crashed: p.crashed,
                    },
                })
            })
            .collect()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        Json::Object(vec![
            ("agent".into(), Json::Str(self.agent.clone())),
            ("test".into(), Json::Str(self.test.clone())),
            (
                "paths".into(),
                Json::Array(self.paths.iter().map(PathFile::to_json_value).collect()),
            ),
            ("wall_ms".into(), Json::UInt(self.wall_ms)),
            ("instruction_pct".into(), Json::Float(self.instruction_pct)),
            ("branch_pct".into(), Json::Float(self.branch_pct)),
            ("truncated".into(), Json::Bool(self.truncated)),
        ])
        .to_string()
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<TestRunFile, String> {
        let v = json::parse(s)?;
        if !matches!(v, Json::Object(_)) {
            return Err("artifact must be a JSON object".into());
        }
        Ok(TestRunFile {
            agent: v.field("agent")?.as_str()?.to_string(),
            test: v.field("test")?.as_str()?.to_string(),
            paths: v
                .field("paths")?
                .as_array()?
                .iter()
                .map(PathFile::from_json_value)
                .collect::<Result<Vec<_>, _>>()?,
            wall_ms: v.field("wall_ms")?.as_u64()?,
            instruction_pct: v.field("instruction_pct")?.as_f64()?,
            branch_pct: v.field("branch_pct")?.as_f64()?,
            truncated: v.field("truncated")?.as_bool()?,
        })
    }
}

impl PathFile {
    fn to_json_value(&self) -> Json {
        Json::Object(vec![
            ("condition".into(), Json::Str(self.condition.clone())),
            ("crashed".into(), Json::Bool(self.crashed)),
            (
                "events".into(),
                Json::Array(self.events.iter().map(EventFile::to_json_value).collect()),
            ),
        ])
    }

    fn from_json_value(v: &Json) -> Result<PathFile, String> {
        Ok(PathFile {
            condition: v.field("condition")?.as_str()?.to_string(),
            crashed: v.field("crashed")?.as_bool()?,
            events: v
                .field("events")?
                .as_array()?
                .iter()
                .map(EventFile::from_json_value)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

fn strings_out(v: &[String]) -> Json {
    Json::Array(v.iter().map(|s| Json::Str(s.clone())).collect())
}

fn strings_in(v: &Json) -> Result<Vec<String>, String> {
    v.as_array()?
        .iter()
        .map(|s| Ok(s.as_str()?.to_string()))
        .collect()
}

impl EventFile {
    /// Serialize to a JSON value (shared with the journal records).
    pub(crate) fn to_json_value(&self) -> Json {
        let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
        match self {
            EventFile::Error { xid, etype, code } => Json::Object(vec![
                kind("error"),
                ("xid".into(), Json::Str(xid.clone())),
                ("etype".into(), Json::Str(etype.clone())),
                ("code".into(), Json::Str(code.clone())),
            ]),
            EventFile::PacketIn {
                buffer_id,
                in_port,
                reason,
                data_len,
                data,
            } => Json::Object(vec![
                kind("packet_in"),
                ("buffer_id".into(), Json::Str(buffer_id.clone())),
                ("in_port".into(), Json::Str(in_port.clone())),
                ("reason".into(), Json::Str(reason.clone())),
                ("data_len".into(), Json::Str(data_len.clone())),
                ("data".into(), strings_out(data)),
            ]),
            EventFile::OfReply {
                msg_type,
                fields,
                body,
            } => Json::Object(vec![
                kind("of_reply"),
                ("msg_type".into(), Json::UInt(*msg_type as u64)),
                (
                    "fields".into(),
                    Json::Array(
                        fields
                            .iter()
                            .map(|(n, t)| {
                                Json::Array(vec![Json::Str(n.clone()), Json::Str(t.clone())])
                            })
                            .collect(),
                    ),
                ),
                ("body".into(), strings_out(body)),
            ]),
            EventFile::DataPlaneTx { port, data } => Json::Object(vec![
                kind("data_plane_tx"),
                ("port".into(), Json::Str(port.clone())),
                ("data".into(), strings_out(data)),
            ]),
            EventFile::Flood {
                exclude_ingress,
                data,
            } => Json::Object(vec![
                kind("flood"),
                ("exclude_ingress".into(), Json::Bool(*exclude_ingress)),
                ("data".into(), strings_out(data)),
            ]),
            EventFile::NormalForward { data } => Json::Object(vec![
                kind("normal_forward"),
                ("data".into(), strings_out(data)),
            ]),
            EventFile::ProbeDropped => Json::Object(vec![kind("probe_dropped")]),
        }
    }

    /// Parse from a JSON value (shared with the journal records).
    pub(crate) fn from_json_value(v: &Json) -> Result<EventFile, String> {
        let kind = v.field("kind")?.as_str()?;
        Ok(match kind {
            "error" => EventFile::Error {
                xid: v.field("xid")?.as_str()?.to_string(),
                etype: v.field("etype")?.as_str()?.to_string(),
                code: v.field("code")?.as_str()?.to_string(),
            },
            "packet_in" => EventFile::PacketIn {
                buffer_id: v.field("buffer_id")?.as_str()?.to_string(),
                in_port: v.field("in_port")?.as_str()?.to_string(),
                reason: v.field("reason")?.as_str()?.to_string(),
                data_len: v.field("data_len")?.as_str()?.to_string(),
                data: strings_in(v.field("data")?)?,
            },
            "of_reply" => {
                let msg_type = v.field("msg_type")?.as_u64()?;
                if msg_type > u8::MAX as u64 {
                    return Err(format!("msg_type {msg_type} out of range"));
                }
                EventFile::OfReply {
                    msg_type: msg_type as u8,
                    fields: v
                        .field("fields")?
                        .as_array()?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_array()?;
                            if pair.len() != 2 {
                                return Err("field entry must be a [name, term] pair".into());
                            }
                            Ok((pair[0].as_str()?.to_string(), pair[1].as_str()?.to_string()))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    body: strings_in(v.field("body")?)?,
                }
            }
            "data_plane_tx" => EventFile::DataPlaneTx {
                port: v.field("port")?.as_str()?.to_string(),
                data: strings_in(v.field("data")?)?,
            },
            "flood" => EventFile::Flood {
                exclude_ingress: v.field("exclude_ingress")?.as_bool()?,
                data: strings_in(v.field("data")?)?,
            },
            "normal_forward" => EventFile::NormalForward {
                data: strings_in(v.field("data")?)?,
            },
            "probe_dropped" => EventFile::ProbeDropped,
            other => return Err(format!("unknown event kind '{other}'")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent::PacketIn {
            buffer_id: Term::bv_const(32, 0),
            in_port: Term::var("w.in", 16),
            reason: Term::bv_const(8, 0),
            data_len: Term::bv_const(16, 2),
            data: SymBuf::concrete(&[0xab, 0xcd]),
        }
    }

    #[test]
    fn event_roundtrip() {
        let e = sample_event();
        let f = EventFile::from_event(&e);
        assert_eq!(f.to_event().unwrap(), e);

        let err = TraceEvent::Error {
            xid: Term::bv_const(32, 0),
            etype: Term::bv_const(16, 1),
            code: Term::bv_const(16, 6),
        };
        let f = EventFile::from_event(&err);
        assert_eq!(f.to_event().unwrap(), err);
    }

    #[test]
    fn of_reply_roundtrip_interns_fields() {
        let e = TraceEvent::OfReply {
            msg_type: 17,
            fields: vec![("stats_type", Term::bv_const(16, 3))],
            body: SymBuf::concrete(b"x"),
        };
        let f = EventFile::from_event(&e);
        assert_eq!(f.to_event().unwrap(), e);
    }

    #[test]
    fn unknown_field_rejected() {
        let f = EventFile::OfReply {
            msg_type: 17,
            fields: vec![("bogus".into(), "(c 16 1)".into())],
            body: vec![],
        };
        assert!(f.to_event().is_err());
    }

    #[test]
    fn run_file_json_roundtrip() {
        let cond = Term::var("w.x", 8).eq(Term::bv_const(8, 7));
        let run_file = TestRunFile {
            agent: "reference".into(),
            test: "packet_out".into(),
            paths: vec![PathFile {
                condition: sexpr::to_wire(&cond),
                crashed: true,
                events: vec![EventFile::from_event(&sample_event())],
            }],
            wall_ms: 12,
            instruction_pct: 26.2,
            branch_pct: 19.3,
            truncated: false,
        };
        let json = run_file.to_json();
        let back = TestRunFile::from_json(&json).unwrap();
        assert_eq!(back, run_file);
        let paths = back.to_paths().unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].condition, cond);
        assert!(paths[0].output.crashed);
    }

    #[test]
    fn corrupt_json_rejected() {
        assert!(TestRunFile::from_json("{").is_err());
        assert!(TestRunFile::from_json("{\"agent\": 3}").is_err());
    }
}
