//! Persistent cross-run result store for `soft serve`.
//!
//! One entry per *content key* — [`job_key`] hashes the two agent
//! fingerprints plus every job parameter that affects the published
//! bytes (test, budget, seed, fuzz tries, retry rungs) — holding the
//! complete published output of one audit job: both phase-1 artifacts,
//! the witness corpus, the summary, and the full verdict matrix. A
//! re-submitted job whose key is present is answered from the store
//! without touching a solver.
//!
//! A second, fingerprint-free *logical key* ([`logical_key`]) indexes
//! the latest entry per (agent pair, test, budget, seed, fuzz, rungs).
//! When a job's content key misses but its logical key hits, the agent
//! changed: the stored entry becomes the baseline for the diff-based
//! partial re-solve (see `DESIGN.md` § Serve architecture).
//!
//! Layout under the store root (all files published via
//! [`crate::atomic_write`]):
//!
//! ```text
//! jobs/<key>.json      one store entry per content key
//! index.json           logical key -> latest content key
//! index.json.corrupt-* quarantined corrupt index snapshots (forensics)
//! inflight/<key>.json  jobs accepted but not yet published (recovery)
//! wal/<key>.wal        per-job session journal
//! out/<key>_*          per-job artifact staging area
//! serve_stats.json     store-wide counters, persisted on drain
//! addr                 the daemon's bound address, for clients
//! ```

use crate::journal::{atomic_write, fnv64_hex, parse_verdict_record, verdict_record, VerdictRec};
use crate::json::{self, Json};
use crate::proto::JobSpec;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Content key of one job: agent fingerprints + every byte-affecting
/// job parameter.
pub fn job_key(fp_a: &str, fp_b: &str, spec: &JobSpec) -> String {
    fnv64_hex(&[
        "job",
        &spec.protocol,
        fp_a,
        fp_b,
        &spec.test,
        &spec.budget_str(),
        &spec.seed.to_string(),
        &spec.fuzz.to_string(),
        &spec.retry_rungs.to_string(),
    ])
}

/// Fingerprint-free job identity: which audit this is, independent of
/// the agents' current code. Maps to the latest content key in the
/// index, which is what makes an older entry discoverable as a diff
/// baseline after an agent changes.
pub fn logical_key(spec: &JobSpec) -> String {
    fnv64_hex(&[
        "logical",
        &spec.protocol,
        &spec.agent_a,
        &spec.agent_b,
        &spec.test,
        &spec.budget_str(),
        &spec.seed.to_string(),
        &spec.fuzz.to_string(),
        &spec.retry_rungs.to_string(),
    ])
}

/// The complete published output of one audit job.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Fingerprint of agent A at publish time.
    pub fp_a: String,
    /// Fingerprint of agent B at publish time.
    pub fp_b: String,
    /// Phase-1 artifact text for agent A (exact published bytes).
    pub artifact_a: String,
    /// Phase-1 artifact text for agent B.
    pub artifact_b: String,
    /// Witness corpus text.
    pub corpus: String,
    /// The per-test summary object (verdict counts, solver stats).
    pub summary: Json,
    /// Full verdict matrix of the canonical crosscheck — the seed set
    /// for diff-based partial re-solves.
    pub verdicts: Vec<VerdictRec>,
    /// The job spec this entry was published for. Embedding the spec
    /// makes every entry self-describing: a lost or corrupt `index.json`
    /// can be rebuilt from the `jobs/` directory alone (see
    /// [`ResultStore::read_index`]). `None` for entries written before
    /// the spec was embedded — those stay addressable by content key but
    /// cannot be re-indexed.
    pub spec: Option<JobSpec>,
}

impl StoreEntry {
    /// Wire/disk form of the entry. Public because replication ships
    /// entries between back-ends inside `replicate` frames — the pushed
    /// bytes are exactly the published bytes.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("fp_a".to_string(), Json::Str(self.fp_a.clone())),
            ("fp_b".to_string(), Json::Str(self.fp_b.clone())),
            ("artifact_a".to_string(), Json::Str(self.artifact_a.clone())),
            ("artifact_b".to_string(), Json::Str(self.artifact_b.clone())),
            ("corpus".to_string(), Json::Str(self.corpus.clone())),
            ("summary".to_string(), self.summary.clone()),
            (
                "verdicts".to_string(),
                Json::Array(
                    self.verdicts
                        .iter()
                        .map(|r| verdict_record(None, r.i, r.j, &r.verdict, &r.budget))
                        .collect(),
                ),
            ),
        ];
        if let Some(spec) = &self.spec {
            fields.push(("spec".to_string(), spec.to_json()));
        }
        Json::Object(fields)
    }

    /// Parse an entry from its wire/disk form.
    pub fn from_json(v: &Json) -> Result<StoreEntry, String> {
        let mut verdicts = Vec::new();
        for rec in v.field("verdicts")?.as_array()? {
            verdicts.push(parse_verdict_record(rec)?);
        }
        Ok(StoreEntry {
            fp_a: v.field("fp_a")?.as_str()?.to_string(),
            fp_b: v.field("fp_b")?.as_str()?.to_string(),
            artifact_a: v.field("artifact_a")?.as_str()?.to_string(),
            artifact_b: v.field("artifact_b")?.as_str()?.to_string(),
            corpus: v.field("corpus")?.as_str()?.to_string(),
            summary: v.field("summary")?.clone(),
            verdicts,
            // Pre-spec entries are valid; they just cannot be re-indexed.
            spec: v
                .field("spec")
                .ok()
                .and_then(|s| JobSpec::from_json(s).ok()),
        })
    }
}

/// Handle on a store root directory. All mutation goes through
/// [`crate::atomic_write`]; concurrent *processes* must not share a
/// root, but concurrent threads of one daemon may — entry files are
/// one-per-key, and [`ResultStore::publish`] serializes the shared
/// `index.json` update internally.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    fsync: bool,
    /// Guards the `index.json` read-modify-write in [`Self::publish`]:
    /// two unserialized publishers would each rewrite the index from a
    /// stale read, and the last writer would silently drop the other's
    /// logical→latest mapping (losing a diff baseline). Readers need no
    /// lock — `atomic_write` renames, so any read sees a full snapshot.
    index_lock: Mutex<()>,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: &Path, fsync: bool) -> io::Result<ResultStore> {
        for sub in ["jobs", "inflight", "wal", "out"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(ResultStore {
            root: root.to_path_buf(),
            fsync,
            index_lock: Mutex::new(()),
        })
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{key}.json"))
    }

    /// Fetch the entry stored under `key`, if any. A present-but-corrupt
    /// entry is an error, not a miss — silently re-solving would mask
    /// store damage.
    pub fn lookup(&self, key: &str) -> Result<Option<StoreEntry>, String> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("store read {}: {e}", path.display())),
        };
        let v = json::parse(&text).map_err(|e| format!("store entry {key}: {e}"))?;
        StoreEntry::from_json(&v).map(Some)
    }

    /// Publish `entry` under `key` and point `logical` at it in the
    /// index. The entry write lands before the index update, so a crash
    /// between the two leaves the index pointing at the older (still
    /// valid) entry.
    pub fn publish(&self, key: &str, logical: &str, entry: &StoreEntry) -> io::Result<()> {
        let mut text = String::new();
        entry.to_json().write_into(&mut text);
        atomic_write(&self.entry_path(key), text.as_bytes(), self.fsync)?;
        let _index_guard = self.index_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut index = self.read_index();
        index.retain(|(k, _)| k != logical);
        index.push((logical.to_string(), Json::Str(key.to_string())));
        index.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        Json::Object(index).write_into(&mut out);
        atomic_write(&self.root.join("index.json"), out.as_bytes(), self.fsync)
    }

    /// Ingest an entry replicated from a fleet peer. Entries are
    /// content-addressed and writes are atomic, so replication is
    /// idempotent: if `key` is already present and readable the push is
    /// a no-op (`Ok(false)`); otherwise the entry is published exactly
    /// as a local solve would have published it — including the
    /// logical→latest index update that makes it discoverable as a
    /// store hit or diff baseline on this replica (`Ok(true)`). A
    /// present-but-corrupt entry is repaired by re-publishing.
    pub fn ingest_replica(&self, key: &str, logical: &str, entry: &StoreEntry) -> io::Result<bool> {
        if let Ok(Some(_)) = self.lookup(key) {
            return Ok(false);
        }
        self.publish(key, logical, entry)?;
        Ok(true)
    }

    /// Read the logical index. A missing file is an empty index; a file
    /// that exists but does not parse as a JSON object is *damage* — the
    /// corrupt bytes are preserved under `index.json.corrupt-<n>` for
    /// forensics and the index is rebuilt from the content-addressed
    /// entries themselves (see [`Self::rebuild_index`]). Callers must
    /// hold `index_lock`: recovery rewrites `index.json`, and an
    /// unserialized reader racing a publisher could resurrect a stale
    /// mapping.
    fn read_index(&self) -> Vec<(String, Json)> {
        let path = self.root.join("index.json");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return Vec::new(),
        };
        match json::parse(&text) {
            Ok(Json::Object(fields)) => fields,
            // Truncated write survived a crash, or external damage:
            // quarantine and rebuild rather than silently serving an
            // empty index (which would drop every diff baseline).
            _ => self.recover_index(&text),
        }
    }

    /// Quarantine the corrupt index bytes and rebuild `index.json` from
    /// the entries under `jobs/`. Returns the rebuilt index. Caller
    /// holds `index_lock`.
    fn recover_index(&self, corrupt: &str) -> Vec<(String, Json)> {
        for n in 0..10_000u32 {
            let q = self.root.join(format!("index.json.corrupt-{n}"));
            if !q.exists() {
                let _ = atomic_write(&q, corrupt.as_bytes(), self.fsync);
                break;
            }
        }
        let rebuilt = self.rebuild_index();
        let mut out = String::new();
        Json::Object(rebuilt.clone()).write_into(&mut out);
        let _ = atomic_write(&self.root.join("index.json"), out.as_bytes(), self.fsync);
        rebuilt
    }

    /// Reconstruct logical-key → latest-content-key mappings from the
    /// content-addressed entries. Each entry that embeds its [`JobSpec`]
    /// yields its logical key directly; when several entries share one
    /// (the agent changed between publishes), the most recently modified
    /// file wins, with the key as a deterministic tie-break. Entries
    /// without an embedded spec (pre-spec format, or unreadable) cannot
    /// be re-indexed and are skipped — they remain addressable by
    /// content key.
    fn rebuild_index(&self) -> Vec<(String, Json)> {
        use std::collections::BTreeMap;
        use std::time::SystemTime;
        let mut best: BTreeMap<String, (SystemTime, String)> = BTreeMap::new();
        let Ok(dir) = fs::read_dir(self.root.join("jobs")) else {
            return Vec::new();
        };
        for e in dir.filter_map(|e| e.ok()) {
            let name = e.file_name().to_string_lossy().to_string();
            let Some(key) = name.strip_suffix(".json") else {
                continue;
            };
            let Ok(text) = fs::read_to_string(e.path()) else {
                continue;
            };
            let Ok(v) = json::parse(&text) else {
                continue;
            };
            let Ok(entry) = StoreEntry::from_json(&v) else {
                continue;
            };
            let Some(spec) = entry.spec else {
                continue;
            };
            let mtime = e
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            let candidate = (mtime, key.to_string());
            match best.get_mut(&logical_key(&spec)) {
                Some(cur) if *cur >= candidate => {}
                Some(cur) => *cur = candidate,
                None => {
                    best.insert(logical_key(&spec), candidate);
                }
            }
        }
        best.into_iter()
            .map(|(logical, (_, key))| (logical, Json::Str(key)))
            .collect()
    }

    /// The latest content key published for `logical`, if any. Takes the
    /// index lock: a corrupt index triggers a rebuild-and-rewrite here,
    /// which must not interleave with a concurrent publish.
    pub fn latest(&self, logical: &str) -> Option<String> {
        let _index_guard = self.index_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.read_index()
            .iter()
            .find(|(k, _)| k == logical)
            .and_then(|(_, v)| v.as_str().ok().map(str::to_string))
    }

    /// Record a job as accepted-but-unpublished; survives a crash so the
    /// daemon can re-run it on restart.
    pub fn record_inflight(&self, key: &str, spec: &JobSpec) -> io::Result<()> {
        let mut text = String::new();
        spec.to_json().write_into(&mut text);
        atomic_write(
            &self.root.join("inflight").join(format!("{key}.json")),
            text.as_bytes(),
            self.fsync,
        )
    }

    /// Drop a job's in-flight record (published or abandoned).
    pub fn clear_inflight(&self, key: &str) {
        let _ = fs::remove_file(self.root.join("inflight").join(format!("{key}.json")));
    }

    /// All in-flight records, sorted by key for deterministic recovery
    /// order.
    pub fn list_inflight(&self) -> Vec<(String, JobSpec)> {
        let mut out = Vec::new();
        let Ok(dir) = fs::read_dir(self.root.join("inflight")) else {
            return out;
        };
        for e in dir.filter_map(|e| e.ok()) {
            let name = e.file_name().to_string_lossy().to_string();
            let Some(key) = name.strip_suffix(".json") else {
                continue;
            };
            let Ok(text) = fs::read_to_string(e.path()) else {
                continue;
            };
            let Ok(v) = json::parse(&text) else {
                continue;
            };
            if let Ok(spec) = JobSpec::from_json(&v) {
                out.push((key.to_string(), spec));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Per-job session journal path.
    pub fn wal_path(&self, key: &str) -> PathBuf {
        self.root.join("wal").join(format!("{key}.wal"))
    }

    /// Per-job artifact staging prefix (the session's `out_prefix`).
    pub fn out_prefix(&self, key: &str) -> String {
        format!("{}/{key}_", self.root.join("out").display())
    }

    /// Persist the store-wide counters object.
    pub fn write_stats(&self, stats: &Json) -> io::Result<()> {
        let mut text = String::new();
        stats.write_into(&mut text);
        atomic_write(
            &self.root.join("serve_stats.json"),
            text.as_bytes(),
            self.fsync,
        )
    }

    /// Publish the daemon's bound address for clients.
    pub fn write_addr(&self, addr: &str) -> io::Result<()> {
        atomic_write(&self.root.join("addr"), addr.as_bytes(), self.fsync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_smt::{SatResult, SolverBudget};

    fn spec() -> JobSpec {
        JobSpec {
            protocol: "of10".to_string(),
            agent_a: "reference".to_string(),
            agent_b: "ovs".to_string(),
            test: "queue_config".to_string(),
            seed: 7,
            budget_conflicts: None,
            fuzz: 4,
            retry_rungs: 2,
            fp_a: None,
            fp_b: None,
        }
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("soft_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry() -> StoreEntry {
        StoreEntry {
            fp_a: "aa".to_string(),
            fp_b: "bb".to_string(),
            artifact_a: "{\"a\":1}".to_string(),
            artifact_b: "{\"b\":2}".to_string(),
            corpus: "{\"c\":3}".to_string(),
            summary: Json::Object(vec![("ok".to_string(), Json::Bool(true))]),
            verdicts: vec![VerdictRec {
                i: 0,
                j: 1,
                verdict: SatResult::Unsat,
                budget: SolverBudget::unlimited(),
            }],
            spec: None,
        }
    }

    #[test]
    fn keys_separate_fingerprints_and_params() {
        let s = spec();
        let k1 = job_key("aa", "bb", &s);
        assert_eq!(k1, job_key("aa", "bb", &s), "keys must be deterministic");
        assert_ne!(k1, job_key("aa", "cc", &s), "fingerprint must change key");
        let mut s2 = s.clone();
        s2.seed = 8;
        assert_ne!(k1, job_key("aa", "bb", &s2), "seed must change key");
        let mut s3 = s.clone();
        s3.budget_conflicts = Some(100);
        assert_ne!(k1, job_key("aa", "bb", &s3), "budget must change key");
        // Logical key ignores fingerprints but not parameters.
        assert_eq!(logical_key(&s), logical_key(&s));
        assert_ne!(logical_key(&s), logical_key(&s2));
    }

    #[test]
    fn entries_roundtrip_and_index_tracks_latest() {
        let root = temp_store("roundtrip");
        let store = ResultStore::open(&root, false).unwrap();
        let s = spec();
        let entry = entry();
        let key = job_key("aa", "bb", &s);
        let logical = logical_key(&s);
        assert!(store.lookup(&key).unwrap().is_none());
        store.publish(&key, &logical, &entry).unwrap();
        let got = store.lookup(&key).unwrap().expect("entry");
        assert_eq!(got.artifact_a, entry.artifact_a);
        assert_eq!(got.artifact_b, entry.artifact_b);
        assert_eq!(got.corpus, entry.corpus);
        assert_eq!(got.verdicts.len(), 1);
        assert!(matches!(got.verdicts[0].verdict, SatResult::Unsat));
        assert_eq!(store.latest(&logical).as_deref(), Some(key.as_str()));
        // A re-publish under a new fingerprint supersedes the index slot.
        let key2 = job_key("aa2", "bb", &s);
        store.publish(&key2, &logical, &entry).unwrap();
        assert_eq!(store.latest(&logical).as_deref(), Some(key2.as_str()));
        // The superseded entry stays addressable by content key.
        assert!(store.lookup(&key).unwrap().is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_publishes_keep_every_index_mapping() {
        let root = temp_store("concurrent");
        let store = ResultStore::open(&root, false).unwrap();
        let entry = entry();
        // Eight publishers race on index.json; every logical→latest
        // mapping must survive the read-modify-write storm.
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let (store, entry) = (&store, &entry);
                scope.spawn(move || {
                    let mut s = spec();
                    s.seed = t;
                    store
                        .publish(&job_key("aa", "bb", &s), &logical_key(&s), entry)
                        .unwrap();
                });
            }
        });
        for t in 0..8u64 {
            let mut s = spec();
            s.seed = t;
            assert_eq!(
                store.latest(&logical_key(&s)).as_deref(),
                Some(job_key("aa", "bb", &s).as_str()),
                "publish race dropped the mapping for seed {t}"
            );
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_index_is_quarantined_and_rebuilt() {
        let root = temp_store("corrupt");
        let store = ResultStore::open(&root, false).unwrap();
        // Two logical jobs with embedded specs, one of them superseded
        // once (two content keys, same logical key), plus one pre-spec
        // entry that cannot be re-indexed.
        let s1 = spec();
        let mut s2 = spec();
        s2.seed = 99;
        let mut e1 = entry();
        e1.spec = Some(s1.clone());
        let mut e2 = entry();
        e2.spec = Some(s2.clone());
        let old_key = job_key("aa_old", "bb", &s1);
        let new_key = job_key("aa_new", "bb", &s1);
        let other_key = job_key("aa", "bb", &s2);
        store.publish(&old_key, &logical_key(&s1), &e1).unwrap();
        store.publish(&new_key, &logical_key(&s1), &e1).unwrap();
        store.publish(&other_key, &logical_key(&s2), &e2).unwrap();
        store
            .publish("prespec", "legacy-logical", &entry())
            .unwrap();
        // The superseded entry must *lose* the rebuild: backdate it so
        // the mtime ranking is unambiguous.
        let old_mtime = fs::metadata(store.entry_path(&new_key))
            .and_then(|m| m.modified())
            .unwrap()
            - std::time::Duration::from_secs(60);
        let f = fs::OpenOptions::new()
            .append(true)
            .open(store.entry_path(&old_key))
            .unwrap();
        f.set_modified(old_mtime).unwrap();
        drop(f);

        // Truncate the index mid-token, as a crash or disk fault would.
        fs::write(root.join("index.json"), "{\"trunc").unwrap();

        // The next read recovers: latest() serves the rebuilt mapping.
        assert_eq!(
            store.latest(&logical_key(&s1)).as_deref(),
            Some(new_key.as_str())
        );
        assert_eq!(
            store.latest(&logical_key(&s2)).as_deref(),
            Some(other_key.as_str())
        );
        // The pre-spec entry dropped out of the index but is still
        // addressable by content key.
        assert_eq!(store.latest("legacy-logical"), None);
        assert!(store.lookup("prespec").unwrap().is_some());
        // The corrupt bytes were preserved, and the rewritten index is
        // valid JSON that parses without another recovery pass.
        let quarantined = fs::read_to_string(root.join("index.json.corrupt-0")).unwrap();
        assert_eq!(quarantined, "{\"trunc");
        let reread = fs::read_to_string(root.join("index.json")).unwrap();
        assert!(matches!(json::parse(&reread), Ok(Json::Object(_))));
        // A second corruption lands in the next quarantine slot.
        fs::write(root.join("index.json"), "junk").unwrap();
        assert_eq!(
            store.latest(&logical_key(&s1)).as_deref(),
            Some(new_key.as_str())
        );
        assert_eq!(
            fs::read_to_string(root.join("index.json.corrupt-1")).unwrap(),
            "junk"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn entries_embed_their_spec_and_tolerate_its_absence() {
        let root = temp_store("spec_embed");
        let store = ResultStore::open(&root, false).unwrap();
        let s = spec();
        let mut e = entry();
        e.spec = Some(s.clone());
        store.publish("with_spec", &logical_key(&s), &e).unwrap();
        let got = store.lookup("with_spec").unwrap().expect("entry");
        assert_eq!(got.spec, Some(s));
        // An entry serialized before the spec field existed still loads.
        store.publish("no_spec", "l2", &entry()).unwrap();
        assert_eq!(store.lookup("no_spec").unwrap().expect("entry").spec, None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn replica_ingest_is_idempotent_and_indexes_the_entry() {
        let root = temp_store("replica");
        let store = ResultStore::open(&root, false).unwrap();
        let s = spec();
        let key = job_key("aa", "bb", &s);
        let logical = logical_key(&s);
        // First push lands and becomes the logical latest.
        assert!(store.ingest_replica(&key, &logical, &entry()).unwrap());
        assert_eq!(store.latest(&logical).as_deref(), Some(key.as_str()));
        let first = fs::read_to_string(store.entry_path(&key)).unwrap();
        // Re-push of the same content is a no-op, byte for byte.
        assert!(!store.ingest_replica(&key, &logical, &entry()).unwrap());
        assert_eq!(fs::read_to_string(store.entry_path(&key)).unwrap(), first);
        // A corrupt entry under the key is repaired by the next push.
        fs::write(store.entry_path(&key), "garbage").unwrap();
        assert!(store.ingest_replica(&key, &logical, &entry()).unwrap());
        assert_eq!(fs::read_to_string(store.entry_path(&key)).unwrap(), first);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn inflight_records_roundtrip() {
        let root = temp_store("inflight");
        let store = ResultStore::open(&root, false).unwrap();
        let s = spec();
        assert!(store.list_inflight().is_empty());
        store.record_inflight("k1", &s).unwrap();
        let listed = store.list_inflight();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, "k1");
        assert_eq!(listed[0].1, s);
        store.clear_inflight("k1");
        assert!(store.list_inflight().is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
