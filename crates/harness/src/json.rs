//! A minimal, dependency-free JSON reader/writer for the phase-1
//! artifact format.
//!
//! The interchange artifacts ([`crate::wire`]) must be producible and
//! consumable in hermetic build environments, so the harness carries its
//! own JSON implementation instead of an external crate. The subset is
//! complete for the artifact schema: objects (insertion-ordered), arrays,
//! strings (full escape handling including `\uXXXX`), booleans, null,
//! unsigned integers and finite floats. The writer emits the same compact
//! form serde_json produced for the seed artifacts (no whitespace, `{:?}`
//! shortest-roundtrip floats), so artifacts remain byte-stable across the
//! switch.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the artifact schema has no negatives).
    UInt(u64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Require a key in an object.
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {}", other.kind_name())),
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {}", other.kind_name())),
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::UInt(v) => Ok(*v),
            other => Err(format!("expected integer, got {}", other.kind_name())),
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Float(v) => Ok(*v),
            Json::UInt(v) => Ok(*v as f64),
            other => Err(format!("expected number, got {}", other.kind_name())),
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Array(v) => Ok(v),
            other => Err(format!("expected array, got {}", other.kind_name())),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) => "integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Serialize into `out` (compact form) without intermediate
    /// allocations — the hot path for journal appends.
    pub fn write_into(&self, out: &mut String) {
        self.write(out);
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                // `{:?}` prints the shortest string that round-trips the
                // f64 — the same contract serde_json's float writer gives.
                // Non-finite values have no JSON form; clamp to null.
                if v.is_finite() {
                    let s = format!("{v:?}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serializes to the compact interchange form (via `to_string`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    // Bulk-copy maximal spans that need no escaping (the overwhelmingly
    // common case — ids, bitstrings, hex) instead of pushing char by char.
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                0x8 => out.push_str("\\b"),
                0xc => out.push_str("\\f"),
                _ => out.push_str(&format!("\\u{:04x}", b as u32)),
            }
            start = i + 1;
        }
        i += 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

/// Maximum nesting depth; the artifact schema needs 5.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at offset {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err("expected low surrogate".into());
                                    }
                                    self.pos += 1;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else if (0xdc00..0xe000).contains(&cp) {
                                return Err("lone low surrogate".into());
                            } else {
                                out.push(char::from_u32(cp).ok_or("invalid code point")?);
                            }
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Bulk-copy the maximal span needing no unescaping —
                    // the overwhelmingly common case. The input is a &str
                    // (valid UTF-8 by construction) and spans begin and end
                    // at ASCII delimiters, so byte indexes are always char
                    // boundaries; non-ASCII bytes pass through untouched.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        if b < 0x20 {
                            return Err("unescaped control character in string".into());
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.input[start..self.pos]);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at offset {start}"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}'"))?;
        if !v.is_finite() {
            return Err(format!("number '{text}' out of range"));
        }
        Ok(Json::Float(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::Object(vec![
            ("a".into(), Json::UInt(3)),
            ("b".into(), Json::Str("x\"y\\z\n".into())),
            (
                "c".into(),
                Json::Array(vec![Json::Bool(true), Json::Float(26.2), Json::Null]),
            ),
        ]);
        let s = v.to_string();
        assert_eq!(
            s,
            "{\"a\":3,\"b\":\"x\\\"y\\\\z\\n\",\"c\":[true,26.2,null]}"
        );
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.0, 19.3, 26.2, 1.0 / 3.0, 1e-9, 123456789.125] {
            let s = Json::Float(f).to_string();
            match parse(&s).unwrap() {
                Json::Float(g) => assert_eq!(f, g, "{s}"),
                Json::UInt(g) => assert_eq!(f, g as f64, "{s}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("Aé😀".into())
        );
        assert!(parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"\u{1}\"").is_err());
        assert!(parse("1e999").is_err());
    }

    #[test]
    fn negative_numbers_parse_as_float() {
        assert_eq!(parse("-3").unwrap(), Json::Float(-3.0));
    }

    #[test]
    fn deep_nesting_bounded() {
        let s = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&s).is_err());
        let s = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&s).is_ok());
    }
}
