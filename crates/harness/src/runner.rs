//! The test driver (§4.1).
//!
//! Emulates the controller and the network around an agent: completes the
//! connection handshake, injects the test's symbolic messages and concrete
//! probes one at a time, captures all emitted output events, marks silent
//! probe drops, and — after exploration — normalizes each path's trace
//! into the *observed output* the grouping phase keys on. Agent crashes
//! are part of the observed output (externally, the TCP connection dies).

use crate::input::{Input, TestCase};
use soft_protocol::{normalize_trace, AgentRef, TraceEvent};
use soft_sym::{
    explore_fn, Coverage, ExecCtx, Exploration, ExplorationStats, ExplorerConfig, PathOutcome,
    RunEnd,
};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Recover the guarded data even if a sibling worker panicked while
/// holding the lock. The result vector is only written slot-wise, so a
/// poisoned lock still guards usable state; aborting the whole matrix
/// (what `expect` did) would lose every already-finished combination.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// The normalized externally-observable result of one explored path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObservedOutput {
    /// Normalized output events, in order.
    pub events: Vec<TraceEvent>,
    /// Whether the agent crashed while processing the inputs.
    pub crashed: bool,
}

/// One explored path: its input subspace and what was observed.
#[derive(Debug, Clone)]
pub struct PathRecord {
    /// The path condition (conjunction term over the input bytes).
    pub condition: soft_smt::Term,
    /// Size metric of the condition (boolean operation count, Table 2).
    pub constraint_size: u64,
    /// The normalized observed output.
    pub output: ObservedOutput,
}

/// The result of symbolically executing one agent on one test.
#[derive(Debug, Clone)]
pub struct TestRun {
    /// Agent identifier.
    pub agent: String,
    /// Test identifier.
    pub test: String,
    /// Effective paths (completed or crashed; engine-aborted paths are
    /// dropped, mirroring "SOFT is capable of working with traces that are
    /// only partially covering agents' code").
    pub paths: Vec<PathRecord>,
    /// Wall-clock time of the exploration.
    pub wall: Duration,
    /// Engine statistics.
    pub stats: ExplorationStats,
    /// Union coverage.
    pub coverage: Coverage,
    /// Instruction coverage percent against the agent's universe.
    pub instruction_pct: f64,
    /// Branch coverage percent against the agent's universe.
    pub branch_pct: f64,
}

impl TestRun {
    /// Average and maximum constraint size over the paths (Table 2).
    pub fn constraint_size_stats(&self) -> (f64, u64) {
        if self.paths.is_empty() {
            return (0.0, 0);
        }
        let max = self
            .paths
            .iter()
            .map(|p| p.constraint_size)
            .max()
            .unwrap_or(0);
        let avg = self.paths.iter().map(|p| p.constraint_size).sum::<u64>() as f64
            / self.paths.len() as f64;
        (avg, max)
    }

    /// Number of paths on which the agent crashed.
    pub fn crash_count(&self) -> usize {
        self.paths.iter().filter(|p| p.output.crashed).count()
    }
}

/// Symbolically execute `agent` on `test` (SOFT phase 1 for one
/// agent/test pair).
///
/// Exploration honors `cfg.workers`; the resulting paths are canonically
/// ordered by decision prefix for *every* worker count, so the produced
/// [`TestRun`] (and any artifact serialized from it) is identical whether
/// the exploration ran on one thread or many.
pub fn run_test(agent: impl Into<AgentRef>, test: &TestCase, cfg: &ExplorerConfig) -> TestRun {
    let agent = agent.into();
    let ex: Exploration<TraceEvent> = explore_fn(cfg, agent_program(agent, test));
    summarize(agent, test, ex)
}

/// The exploration closure for one agent/test combination: handshake,
/// then the test's input sequence with probe-drop detection. Shared by
/// the plain and the journaled (durable) drivers.
pub(crate) fn agent_program(
    agent: AgentRef,
    test: &TestCase,
) -> impl Fn(&mut ExecCtx<'_, TraceEvent>) -> RunEnd + Sync + '_ {
    move |ctx| {
        let mut a = agent.make();
        a.on_connect(ctx)?;
        for input in &test.inputs {
            match input {
                Input::Message(m) => a.handle_message(ctx, m)?,
                Input::Probe { in_port, packet } => {
                    let before = ctx.trace_len();
                    a.handle_packet(ctx, *in_port, packet)?;
                    if ctx.trace_len() == before {
                        // "The probe packet is then either forwarded ...,
                        // or it is dropped, in which case we log an empty
                        // probe response."
                        ctx.emit(TraceEvent::ProbeDropped);
                    }
                }
                Input::AdvanceTime { now } => a.handle_time(ctx, *now)?,
            }
        }
        Ok(())
    }
}

/// Run every (agent, test) combination — SOFT phase 1 over a whole suite —
/// fanning the combinations across `jobs` worker threads.
///
/// Each combination is an independent exploration (own solver, own verdict
/// cache), and the results come back in agent-major, test-minor order no
/// matter how many threads ran them, so `jobs = N` output equals
/// `jobs = 1` output exactly.
pub fn run_matrix<A: Into<AgentRef> + Copy>(
    agents: &[A],
    tests: &[TestCase],
    cfg: &ExplorerConfig,
    jobs: usize,
) -> Vec<TestRun> {
    let combos: Vec<(AgentRef, &TestCase)> = agents
        .iter()
        .flat_map(|a| tests.iter().map(move |t| ((*a).into(), t)))
        .collect();
    if jobs <= 1 {
        return combos
            .into_iter()
            .map(|(a, t)| run_test_contained(a, t, cfg))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<TestRun>>> =
        Mutex::new((0..combos.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(combos.len().max(1)) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= combos.len() {
                    break;
                }
                let (a, t) = combos[k];
                let run = run_test_contained(a, t, cfg);
                recover(&results)[k] = Some(run);
            });
        }
    });
    // A slot can only be `None` if its worker died outside the per-run
    // containment (a bug in this loop itself); degrade it the same way.
    results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .zip(&combos)
        .map(|(r, (a, t))| r.unwrap_or_else(|| degraded_run(*a, t)))
        .collect()
}

/// Run one combination with engine-panic containment: agent panics are
/// already converted to crash outputs inside the explorer, so an unwind
/// escaping [`run_test`] means the exploration *machinery* failed. The
/// matrix must still complete and say so — the combination degrades to an
/// empty, truncated [`TestRun`] with `engine_panics` set, never to a
/// process abort that discards every other combination.
fn run_test_contained(agent: AgentRef, test: &TestCase, cfg: &ExplorerConfig) -> TestRun {
    std::panic::catch_unwind(AssertUnwindSafe(|| run_test(agent, test, cfg)))
        .unwrap_or_else(|_| degraded_run(agent, test))
}

/// Placeholder result for a combination whose exploration engine panicked:
/// no paths, flagged truncated, one engine panic on record.
pub(crate) fn degraded_run(agent: AgentRef, test: &TestCase) -> TestRun {
    TestRun {
        agent: agent.id().to_string(),
        test: test.id.to_string(),
        paths: Vec::new(),
        wall: Duration::ZERO,
        stats: ExplorationStats {
            truncated: true,
            engine_panics: 1,
            ..ExplorationStats::default()
        },
        coverage: Coverage::new(),
        instruction_pct: 0.0,
        branch_pct: 0.0,
    }
}

/// Convert one explored path into the [`PathRecord`] the grouping phase
/// consumes, or `None` for an engine-aborted path (aborted paths carry no
/// externally-observable output and are dropped from artifacts). This is
/// the single normalization point shared by the phased artifact writer
/// and the streaming session's incremental grouper.
pub fn record_path(p: &soft_sym::PathResult<TraceEvent>) -> Option<PathRecord> {
    let crashed = match &p.outcome {
        PathOutcome::Completed => false,
        PathOutcome::Crashed(_) => true,
        PathOutcome::Aborted(_) => return None,
    };
    let condition = p.condition_term();
    let constraint_size = soft_smt::metrics::op_count(&condition);
    Some(PathRecord {
        condition,
        constraint_size,
        output: ObservedOutput {
            events: normalize_trace(&p.trace),
            crashed,
        },
    })
}

pub(crate) fn summarize(agent: AgentRef, test: &TestCase, ex: Exploration<TraceEvent>) -> TestRun {
    let universe = agent.make().universe();
    let paths: Vec<PathRecord> = ex.paths.iter().filter_map(record_path).collect();
    TestRun {
        agent: agent.id().to_string(),
        test: test.id.to_string(),
        paths,
        wall: ex.stats.wall,
        instruction_pct: ex.coverage.instruction_pct(&universe),
        branch_pct: ex.coverage.branch_pct(&universe),
        coverage: ex.coverage,
        stats: ex.stats,
    }
}
