//! # soft-harness — the SOFT test driver
//!
//! Emulates the controller and network around an agent under test (§4.1):
//! defines the evaluation test suite (Table 1, the Table 5 concretization
//! ablations, the Figure 4 message-count study), drives symbolic
//! exploration of an agent over a test's input sequence with probe-drop
//! detection and output normalization, and serializes the per-vendor
//! phase-1 artifacts that the crosschecking phase consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod input;
pub mod journal;
pub mod json;
pub mod proto;
pub mod recorded;
pub mod runner;
pub mod store;
pub use soft_agents::suite;
pub mod wire;

pub use input::{Input, TestCase};
pub use journal::{
    atomic_write, check_fingerprint, fnv64_hex, phase1_fingerprint, run_matrix_durable,
    run_test_durable, run_unit_durable, session_fingerprint, CheckJournal, CorpusRec, DurableRun,
    JournalError, SessionJournal, SessionRecovery, SessionUnitSink, UnitRecovery, VerdictRec,
};
pub use proto::JobSpec;
pub use recorded::{symbolize_frame, RecordedTrace, Symbolize};
pub use runner::{record_path, run_matrix, run_test, ObservedOutput, PathRecord, TestRun};
pub use store::{job_key, logical_key, ResultStore, StoreEntry};
pub use wire::TestRunFile;
