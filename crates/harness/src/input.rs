//! Test inputs and test cases.
//!
//! The definitions are protocol-generic and live in `soft-protocol`;
//! this module re-exports them under their historical harness paths.

pub use soft_protocol::{Input, TestCase};
