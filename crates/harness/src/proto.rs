//! Length-prefixed JSON wire protocol for `soft serve`.
//!
//! Frames reuse the journal's record framing — `[u32 LE payload length]
//! [u32 LE CRC32] [JSON payload]` — over any byte stream, so a `soft
//! submit` client and the serve daemon speak the exact format the WAL
//! already proves out. Every message is a JSON object with a `"type"`
//! field:
//!
//! | direction | type        | meaning                                       |
//! |-----------|-------------|-----------------------------------------------|
//! | request   | `job`       | run (or answer from store) one audit job      |
//! | request   | `status`    | report store-wide counters                    |
//! | request   | `drain`     | stop accepting jobs, finish in-flight, exit   |
//! | response  | `result`    | artifacts + per-job counters for a `job`      |
//! | response  | `status`    | the counters object                           |
//! | response  | `draining`  | drain acknowledged                            |
//! | response  | `error`     | human-readable failure                        |
//!
//! The fleet layer (`soft route`) adds four message kinds spoken
//! between the router and its back-ends, and between back-end pairs:
//!
//! | direction           | type         | meaning                                   |
//! |---------------------|--------------|-------------------------------------------|
//! | router → back-end   | `route`      | fleet membership announcement             |
//! | back-end → router   | `registered` | registration ack: worker count, depth     |
//! | router → back-end   | `steal`      | release up to `max` queued routed jobs    |
//! | back-end → router   | `steal_ack`  | how many queued jobs were released        |
//! | back-end → back-end | `replicate`  | push one store entry to a ring successor  |
//! | back-end → back-end | `replicated` | replication ack (`stored`: newly written) |
//! | back-end → router   | `stolen`     | a queued `job`'s slot was stolen; re-route|

use crate::journal::crc32;
use crate::json::{self, Json};
use std::io::{self, Read, Write};

/// Sanity bound on one frame; artifacts for a single test are far
/// smaller, so anything larger is framing damage, not data.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Payload buffers grow by at most this much per read round, so a
/// corrupt or hostile length prefix buys an attacker (or a flipped bit)
/// at most one chunk of memory before the stream has to actually
/// deliver bytes — never a `MAX_FRAME_LEN`-sized allocation up front.
const READ_CHUNK: usize = 64 * 1024;

/// Serialize `msg` as one frame onto `w` (no flush; callers flush once
/// per message batch).
pub fn write_frame<W: Write>(w: &mut W, msg: &Json) -> io::Result<()> {
    let mut payload = String::new();
    msg.write_into(&mut payload);
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(bytes).to_le_bytes())?;
    w.write_all(bytes)
}

/// One observed event on a framed stream (see [`read_frame_idle`]).
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete, checksum-verified frame.
    Frame(Json),
    /// The peer closed the stream cleanly at a frame boundary.
    Eof,
    /// The stream's read timeout elapsed with no frame in progress. Only
    /// surfaces on streams with a read timeout set; lets a server poll a
    /// shutdown flag between frames instead of blocking forever on an
    /// idle-but-connected client.
    Idle,
}

/// Consecutive timed-out reads tolerated *inside* a frame before the
/// peer is declared stalled. At the serve daemon's 200 ms socket
/// timeout this is a minute of mid-frame silence — frames are written
/// with a single flush, so a peer that stops mid-frame is gone, and an
/// unbounded wait would let one half-sent frame pin a draining daemon.
const MID_FRAME_STALL_LIMIT: u32 = 300;

fn is_timeout(kind: io::ErrorKind) -> bool {
    // Unix reports an elapsed SO_RCVTIMEO as WouldBlock, Windows as
    // TimedOut.
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Read one frame from `r`, surfacing read-timeout expiry between
/// frames as [`FrameEvent::Idle`] rather than an error. A timeout
/// *inside* a frame keeps waiting (the peer may just be slow) up to
/// [`MID_FRAME_STALL_LIMIT`] consecutive stalls; a partial frame,
/// checksum mismatch, or unparseable payload is an error.
pub fn read_frame_idle<R: Read>(r: &mut R) -> Result<FrameEvent, String> {
    let mut header = [0u8; 8];
    let mut got = 0;
    let mut stalls = 0u32;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(FrameEvent::Eof),
            Ok(0) => return Err("stream closed mid-frame-header".to_string()),
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) && got == 0 => return Ok(FrameEvent::Idle),
            Err(e) if is_timeout(e.kind()) => {
                stalls += 1;
                if stalls > MID_FRAME_STALL_LIMIT {
                    return Err("peer stalled mid-frame-header".to_string());
                }
            }
            Err(e) => return Err(format!("frame header read: {e}")),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let sum = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(format!("frame length {len} exceeds bound {MAX_FRAME_LEN}"));
    }
    let total = len as usize;
    // Allocate lazily, one chunk ahead of the bytes actually received:
    // a length prefix is a *claim*, and claims under the cap must still
    // not pre-commit memory the peer never sends.
    let mut payload: Vec<u8> = Vec::with_capacity(total.min(READ_CHUNK));
    let mut got = 0;
    let mut stalls = 0u32;
    while got < total {
        let want = got + (total - got).min(READ_CHUNK);
        if payload.len() < want {
            payload.resize(want, 0);
        }
        match r.read(&mut payload[got..want]) {
            Ok(0) => return Err("stream closed mid-frame-payload".to_string()),
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {
                stalls += 1;
                if stalls > MID_FRAME_STALL_LIMIT {
                    return Err("peer stalled mid-frame-payload".to_string());
                }
            }
            Err(e) => return Err(format!("frame payload read: {e}")),
        }
    }
    if crc32(&payload) != sum {
        return Err("frame checksum mismatch".to_string());
    }
    let text = std::str::from_utf8(&payload).map_err(|e| format!("frame not UTF-8: {e}"))?;
    json::parse(text).map(FrameEvent::Frame)
}

/// Read one frame from `r`. `Ok(None)` means the peer closed the stream
/// cleanly at a frame boundary; a partial frame, checksum mismatch, or
/// unparseable payload is an error. On a stream with a read timeout
/// set, expiry between frames is an error here — use
/// [`read_frame_idle`] to observe it instead.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Json>, String> {
    match read_frame_idle(r)? {
        FrameEvent::Frame(msg) => Ok(Some(msg)),
        FrameEvent::Eof => Ok(None),
        FrameEvent::Idle => Err("read timed out between frames".to_string()),
    }
}

/// One audit job: which agent pair to crosscheck on which test, under
/// what seed and solver budget. The optional `fp_a`/`fp_b` override the
/// daemon's computed agent fingerprints — the knob that lets a client
/// (or a test) declare "this agent changed" without shipping code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Protocol id the agents belong to (e.g. `of10`, `tlv`). Folded
    /// into store keys so same-named jobs of different protocols can
    /// never alias.
    pub protocol: String,
    /// First agent id (e.g. `reference`).
    pub agent_a: String,
    /// Second agent id (e.g. `ovs`).
    pub agent_b: String,
    /// Test id from the suite (e.g. `queue_config`).
    pub test: String,
    /// Exploration seed.
    pub seed: u64,
    /// Per-query solver conflict budget; `None` is unlimited.
    pub budget_conflicts: Option<u64>,
    /// Witness neighborhood-fuzz tries.
    pub fuzz: u64,
    /// Unknown-verdict retry rungs.
    pub retry_rungs: u64,
    /// Fingerprint override for agent A (hex, as produced by
    /// [`crate::fnv64_hex`]).
    pub fp_a: Option<String>,
    /// Fingerprint override for agent B.
    pub fp_b: Option<String>,
}

impl JobSpec {
    /// The `job` request message for this spec.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("type".to_string(), Json::Str("job".to_string())),
            ("protocol".to_string(), Json::Str(self.protocol.clone())),
            ("agent_a".to_string(), Json::Str(self.agent_a.clone())),
            ("agent_b".to_string(), Json::Str(self.agent_b.clone())),
            ("test".to_string(), Json::Str(self.test.clone())),
            ("seed".to_string(), Json::UInt(self.seed)),
            ("fuzz".to_string(), Json::UInt(self.fuzz)),
            ("retry_rungs".to_string(), Json::UInt(self.retry_rungs)),
        ];
        if let Some(c) = self.budget_conflicts {
            fields.push(("budget_conflicts".to_string(), Json::UInt(c)));
        }
        if let Some(fp) = &self.fp_a {
            fields.push(("fp_a".to_string(), Json::Str(fp.clone())));
        }
        if let Some(fp) = &self.fp_b {
            fields.push(("fp_b".to_string(), Json::Str(fp.clone())));
        }
        Json::Object(fields)
    }

    /// Parse a `job` request message.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                Some(j) => Ok(Some(j.as_u64()?)),
                None => Ok(None),
            }
        };
        let opt_str = |key: &str| -> Result<Option<String>, String> {
            match v.get(key) {
                Some(j) => Ok(Some(j.as_str()?.to_string())),
                None => Ok(None),
            }
        };
        Ok(JobSpec {
            // Pre-protocol-abstraction clients do not send the field;
            // their jobs are OpenFlow 1.0 by construction.
            protocol: opt_str("protocol")?.unwrap_or_else(|| "of10".to_string()),
            agent_a: v.field("agent_a")?.as_str()?.to_string(),
            agent_b: v.field("agent_b")?.as_str()?.to_string(),
            test: v.field("test")?.as_str()?.to_string(),
            seed: v.field("seed")?.as_u64()?,
            budget_conflicts: opt_u64("budget_conflicts")?,
            fuzz: v.field("fuzz")?.as_u64()?,
            retry_rungs: v.field("retry_rungs")?.as_u64()?,
            fp_a: opt_str("fp_a")?,
            fp_b: opt_str("fp_b")?,
        })
    }

    /// The budget string that participates in store keys. Must be
    /// injective over distinct budgets so two budgets never share a key.
    pub fn budget_str(&self) -> String {
        match self.budget_conflicts {
            Some(c) => format!("conflicts={c}"),
            None => "unlimited".to_string(),
        }
    }
}

/// Build a `status` request.
pub fn status_request() -> Json {
    Json::Object(vec![("type".to_string(), Json::Str("status".to_string()))])
}

/// Build a `drain` request.
pub fn drain_request() -> Json {
    Json::Object(vec![("type".to_string(), Json::Str("drain".to_string()))])
}

/// Build an `error` response.
pub fn error_response(message: &str) -> Json {
    Json::Object(vec![
        ("type".to_string(), Json::Str("error".to_string())),
        ("message".to_string(), Json::Str(message.to_string())),
    ])
}

/// Fleet membership as announced by the router to each back-end: the
/// ordered back-end list (order defines ring identity, so every member
/// must receive the same list), which entry the recipient is, and the
/// ring/replication parameters. A back-end uses it to compute the same
/// consistent-hash ring the router places jobs with, and to push
/// freshly published store entries to its keys' ring successors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetView {
    /// Every back-end's address, in ring-identity order.
    pub backends: Vec<String>,
    /// Index of the recipient in `backends`.
    pub you: usize,
    /// Virtual nodes per back-end on the hash ring.
    pub vnodes: u32,
    /// Ring successors each published entry is pushed to.
    pub replicas: u32,
}

impl FleetView {
    /// The `route` announcement message for this view.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("type".to_string(), Json::Str("route".to_string())),
            (
                "backends".to_string(),
                Json::Array(self.backends.iter().cloned().map(Json::Str).collect()),
            ),
            ("you".to_string(), Json::UInt(self.you as u64)),
            ("vnodes".to_string(), Json::UInt(self.vnodes as u64)),
            ("replicas".to_string(), Json::UInt(self.replicas as u64)),
        ])
    }

    /// Parse a `route` announcement.
    pub fn from_json(v: &Json) -> Result<FleetView, String> {
        let mut backends = Vec::new();
        for b in v.field("backends")?.as_array()? {
            backends.push(b.as_str()?.to_string());
        }
        let you = v.field("you")?.as_u64()? as usize;
        if backends.is_empty() {
            return Err("route: empty backend list".to_string());
        }
        if you >= backends.len() {
            return Err(format!(
                "route: you={you} out of range for {} backend(s)",
                backends.len()
            ));
        }
        Ok(FleetView {
            backends,
            you,
            vnodes: v.field("vnodes")?.as_u64()? as u32,
            replicas: v.field("replicas")?.as_u64()? as u32,
        })
    }
}

/// Build a `registered` response: the back-end's worker capacity and
/// current queue depth, the load facts the router's placement needs.
pub fn registered_response(workers: u64, queue_depth: u64) -> Json {
    Json::Object(vec![
        ("type".to_string(), Json::Str("registered".to_string())),
        ("workers".to_string(), Json::UInt(workers)),
        ("queue_depth".to_string(), Json::UInt(queue_depth)),
    ])
}

/// Build a `steal` request: release up to `max` queued routed jobs back
/// to the router for placement on an idle replica.
pub fn steal_request(max: u64) -> Json {
    Json::Object(vec![
        ("type".to_string(), Json::Str("steal".to_string())),
        ("max".to_string(), Json::UInt(max)),
    ])
}

/// Build a `steal_ack` response: how many queued jobs were released.
pub fn steal_ack(stolen: u64) -> Json {
    Json::Object(vec![
        ("type".to_string(), Json::Str("steal_ack".to_string())),
        ("stolen".to_string(), Json::UInt(stolen)),
    ])
}

/// Build the `stolen` response a back-end sends *on a job connection*
/// whose queued job was released by a `steal`: the router re-routes the
/// job to the back-end it freed capacity for.
pub fn stolen_response(key: &str) -> Json {
    Json::Object(vec![
        ("type".to_string(), Json::Str("stolen".to_string())),
        ("key".to_string(), Json::Str(key.to_string())),
    ])
}

/// Build a `replicate` push: one content-addressed store entry bound
/// for a ring successor. `entry` is the store entry's JSON object —
/// replication re-publishes the exact bytes, so the push is idempotent.
pub fn replicate_message(key: &str, logical: &str, entry: &Json) -> Json {
    Json::Object(vec![
        ("type".to_string(), Json::Str("replicate".to_string())),
        ("key".to_string(), Json::Str(key.to_string())),
        ("logical".to_string(), Json::Str(logical.to_string())),
        ("entry".to_string(), entry.clone()),
    ])
}

/// Build a `replicated` ack. `stored` is false when the replica already
/// held the entry (idempotent re-push).
pub fn replicated_response(stored: bool) -> Json {
    Json::Object(vec![
        ("type".to_string(), Json::Str("replicated".to_string())),
        ("stored".to_string(), Json::Bool(stored)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let spec = JobSpec {
            protocol: "of10".to_string(),
            agent_a: "reference".to_string(),
            agent_b: "ovs".to_string(),
            test: "queue_config".to_string(),
            seed: 7,
            budget_conflicts: Some(1000),
            fuzz: 4,
            retry_rungs: 2,
            fp_a: None,
            fp_b: Some("deadbeefdeadbeef".to_string()),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &spec.to_json()).unwrap();
        write_frame(&mut buf, &status_request()).unwrap();
        let mut r = &buf[..];
        let first = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(JobSpec::from_json(&first).unwrap(), spec);
        let second = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(second.field("type").unwrap().as_str().unwrap(), "status");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &drain_request()).unwrap();
        // Flip a payload byte: checksum must catch it.
        let n = buf.len();
        buf[n - 1] ^= 0xFF;
        assert!(read_frame(&mut &buf[..]).is_err());
        // Truncated payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, &drain_request()).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut &buf[..]).is_err());
        // Oversized length header.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    /// One data byte per read, a timeout error between every pair —
    /// the shape of a slow peer on a socket with SO_RCVTIMEO set.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        ready: bool,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.data.len() {
                return Ok(0);
            }
            if !self.ready {
                self.ready = true;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    /// `sent` bytes of a frame, then silence forever.
    struct Stall<'a> {
        data: &'a [u8],
        pos: usize,
        sent: usize,
    }

    impl Read for Stall<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.sent {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn idle_timeouts_are_not_errors_but_stalls_are() {
        // Timeout with no frame in progress: Idle, not an error.
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::ErrorKind::WouldBlock.into())
            }
        }
        assert!(matches!(
            read_frame_idle(&mut AlwaysTimeout),
            Ok(FrameEvent::Idle)
        ));
        // ... and read_frame (no-timeout contract) rejects it.
        assert!(read_frame(&mut AlwaysTimeout).is_err());

        // Timeouts *between bytes* of a frame are absorbed: the frame
        // still arrives intact.
        let mut buf = Vec::new();
        write_frame(&mut buf, &drain_request()).unwrap();
        let mut slow = Trickle {
            data: &buf,
            pos: 0,
            ready: true, // first byte lands before the first timeout
        };
        let first = read_frame_idle(&mut slow).unwrap();
        assert!(matches!(first, FrameEvent::Frame(_)));
        assert!(matches!(read_frame_idle(&mut slow), Ok(FrameEvent::Eof)));

        // A peer that goes silent mid-header or mid-payload is declared
        // stalled once the tolerance runs out — never an infinite wait.
        let mut mid_header = Stall {
            data: &buf,
            pos: 0,
            sent: 4,
        };
        assert!(
            read_frame_idle(&mut mid_header).is_err_and(|e| e.contains("stalled mid-frame-header"))
        );
        let mut mid_payload = Stall {
            data: &buf,
            pos: 0,
            sent: 10,
        };
        assert!(read_frame_idle(&mut mid_payload)
            .is_err_and(|e| e.contains("stalled mid-frame-payload")));
    }

    /// `gap` consecutive timeouts before every data byte after the
    /// first — the stall counter must reset on each byte of progress.
    struct Choppy<'a> {
        data: &'a [u8],
        pos: usize,
        pending_timeouts: u32,
        gap: u32,
    }

    impl Read for Choppy<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.data.len() {
                return Ok(0);
            }
            if self.pending_timeouts > 0 {
                self.pending_timeouts -= 1;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            self.pending_timeouts = self.gap;
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    /// The stall budget is exact: a peer that pauses for precisely
    /// [`MID_FRAME_STALL_LIMIT`] timeouts before every byte is slow but
    /// alive (the counter resets on progress); one more consecutive
    /// timeout and it is declared stalled.
    #[test]
    fn mid_frame_stall_budget_boundary_is_exact() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &drain_request()).unwrap();
        let mut at_budget = Choppy {
            data: &buf,
            pos: 0,
            pending_timeouts: 0, // first byte lands, so every gap is mid-frame
            gap: MID_FRAME_STALL_LIMIT,
        };
        assert!(matches!(
            read_frame_idle(&mut at_budget),
            Ok(FrameEvent::Frame(_))
        ));
        let mut past_budget = Choppy {
            data: &buf,
            pos: 0,
            pending_timeouts: 0,
            gap: MID_FRAME_STALL_LIMIT + 1,
        };
        assert!(read_frame_idle(&mut past_budget)
            .is_err_and(|e| e.contains("stalled mid-frame-header")));
    }

    /// A frame scattered across many one-byte reads (no timeouts at all
    /// — just a miserly kernel buffer) reassembles losslessly, back to
    /// back.
    #[test]
    fn one_byte_reads_reassemble_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &drain_request()).unwrap();
        write_frame(&mut buf, &status_request()).unwrap();
        struct OneByte<'a> {
            data: &'a [u8],
            pos: usize,
        }
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut r = OneByte { data: &buf, pos: 0 };
        let first = match read_frame_idle(&mut r).unwrap() {
            FrameEvent::Frame(f) => f,
            other => panic!("expected frame, got {}", event_name(&other)),
        };
        assert_eq!(first.field("type").unwrap().as_str().unwrap(), "drain");
        let second = match read_frame_idle(&mut r).unwrap() {
            FrameEvent::Frame(f) => f,
            other => panic!("expected frame, got {}", event_name(&other)),
        };
        assert_eq!(second.field("type").unwrap().as_str().unwrap(), "status");
        assert!(matches!(read_frame_idle(&mut r), Ok(FrameEvent::Eof)));
    }

    /// A stream torn inside the 8-byte length prefix is damage, not a
    /// clean close — only EOF at byte 0 of a frame is [`FrameEvent::Eof`].
    #[test]
    fn torn_length_prefix_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &drain_request()).unwrap();
        for cut in 1..8 {
            let err = read_frame_idle(&mut &buf[..cut]);
            assert!(
                err.as_ref()
                    .is_err_and(|e| e.contains("closed mid-frame-header")),
                "cut at {cut} must tear the header"
            );
        }
        // EOF exactly at the header/payload seam tears the payload.
        assert!(
            read_frame_idle(&mut &buf[..8]).is_err_and(|e| e.contains("closed mid-frame-payload"))
        );
    }

    fn event_name(e: &FrameEvent) -> &'static str {
        match e {
            FrameEvent::Frame(_) => "Frame",
            FrameEvent::Eof => "Eof",
            FrameEvent::Idle => "Idle",
        }
    }

    /// The drain-poll contract: timeouts *between* frames surface as
    /// `Idle` every time (a serving loop regains control to check its
    /// shutdown flag), and absorbing a frame does not eat the following
    /// idle window.
    #[test]
    fn idle_surfaces_between_frames_for_drain_polling() {
        let mut first = Vec::new();
        write_frame(&mut first, &drain_request()).unwrap();
        let mut second = Vec::new();
        write_frame(&mut second, &status_request()).unwrap();
        // frame, 3 idle timeouts, frame, EOF.
        struct Script<'a> {
            chunks: Vec<&'a [u8]>,
            idle_between: u32,
            idles_done: u32,
            chunk: usize,
            pos: usize,
        }
        impl Read for Script<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let Some(data) = self.chunks.get(self.chunk) else {
                    return Ok(0);
                };
                if self.pos == data.len() {
                    if self.idles_done < self.idle_between {
                        self.idles_done += 1;
                        return Err(io::ErrorKind::WouldBlock.into());
                    }
                    self.chunk += 1;
                    self.pos = 0;
                    self.idles_done = 0;
                    return self.read(buf);
                }
                buf[0] = data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut r = Script {
            chunks: vec![&first, &second],
            idle_between: 3,
            idles_done: 0,
            chunk: 0,
            pos: 0,
        };
        let mut seen = Vec::new();
        loop {
            let e = read_frame_idle(&mut r).unwrap();
            let name = event_name(&e);
            seen.push(name);
            if name == "Eof" {
                break;
            }
        }
        assert_eq!(
            seen,
            vec!["Frame", "Idle", "Idle", "Idle", "Frame", "Idle", "Idle", "Idle", "Eof"],
            "every between-frame timeout must yield control to the caller"
        );
    }

    /// A hostile length prefix must be rejected from the 8 header bytes
    /// alone: no payload read, no payload allocation. The reader panics
    /// if the frame layer asks it for anything past the header.
    #[test]
    fn hostile_length_prefix_is_rejected_before_any_payload_read() {
        struct HeaderOnly {
            header: [u8; 8],
            pos: usize,
        }
        impl Read for HeaderOnly {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                assert!(
                    self.pos < 8,
                    "frame layer must not read payload bytes of an oversized frame"
                );
                buf[0] = self.header[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        for hostile_len in [MAX_FRAME_LEN + 1, u32::MAX] {
            let mut header = [0u8; 8];
            header[..4].copy_from_slice(&hostile_len.to_le_bytes());
            let mut r = HeaderOnly { header, pos: 0 };
            let err = read_frame_idle(&mut r).expect_err("oversized frame must be rejected");
            assert!(
                err.contains("exceeds bound"),
                "rejection must name the bound: {err}"
            );
        }
    }

    /// A length *under* the cap is still only a claim: the payload
    /// buffer must grow chunk-by-chunk with the bytes actually
    /// received, never be pre-sized to the claimed length. The reader
    /// observes the buffer slices it is offered.
    #[test]
    fn payload_allocation_tracks_received_bytes_not_the_claimed_length() {
        // A frame claiming 32 MiB (within bounds) whose peer vanishes
        // after the header: the torn stream is an error, and the frame
        // layer asked for at most one chunk of buffer.
        struct TornAfterHeader {
            header: [u8; 8],
            pos: usize,
            max_want: usize,
        }
        impl Read for TornAfterHeader {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.max_want = self.max_want.max(buf.len());
                if self.pos < 8 {
                    buf[0] = self.header[self.pos];
                    self.pos += 1;
                    Ok(1)
                } else {
                    Ok(0)
                }
            }
        }
        let claimed = 32 * 1024 * 1024u32;
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&claimed.to_le_bytes());
        let mut r = TornAfterHeader {
            header,
            pos: 0,
            max_want: 0,
        };
        assert!(read_frame_idle(&mut r).is_err_and(|e| e.contains("closed mid-frame-payload")));
        assert!(
            r.max_want <= READ_CHUNK,
            "read of a {claimed}-byte claim asked for a {} byte buffer (> one {READ_CHUNK} chunk)",
            r.max_want
        );
    }

    #[test]
    fn fleet_view_roundtrips_and_validates() {
        let view = FleetView {
            backends: vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()],
            you: 1,
            vnodes: 64,
            replicas: 2,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &view.to_json()).unwrap();
        let msg = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(msg.field("type").unwrap().as_str().unwrap(), "route");
        assert_eq!(FleetView::from_json(&msg).unwrap(), view);
        // Out-of-range self index and empty membership are damage.
        let mut bad = view.clone();
        bad.you = 2;
        assert!(FleetView::from_json(&bad.to_json()).is_err());
        let mut empty = view.clone();
        empty.backends.clear();
        empty.you = 0;
        assert!(FleetView::from_json(&empty.to_json()).is_err());
    }

    #[test]
    fn fleet_frames_roundtrip() {
        let entry = Json::Object(vec![("fp_a".to_string(), Json::Str("aa".to_string()))]);
        let msgs = [
            replicate_message("k1", "l1", &entry),
            replicated_response(true),
            steal_request(3),
            steal_ack(2),
            stolen_response("k1"),
            registered_response(4, 1),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            let got = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&got, m);
        }
        let rep = &msgs[0];
        assert_eq!(rep.field("key").unwrap().as_str().unwrap(), "k1");
        assert_eq!(rep.field("logical").unwrap().as_str().unwrap(), "l1");
        assert_eq!(
            rep.field("entry").unwrap().field("fp_a").unwrap().as_str(),
            Ok("aa")
        );
    }

    #[test]
    fn budget_strings_are_injective() {
        let mut spec = JobSpec {
            protocol: "of10".to_string(),
            agent_a: String::new(),
            agent_b: String::new(),
            test: String::new(),
            seed: 0,
            budget_conflicts: None,
            fuzz: 0,
            retry_rungs: 0,
            fp_a: None,
            fp_b: None,
        };
        assert_eq!(spec.budget_str(), "unlimited");
        spec.budget_conflicts = Some(10);
        assert_eq!(spec.budget_str(), "conflicts=10");
    }
}
