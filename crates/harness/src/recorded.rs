//! Trace-driven test generation.
//!
//! §6.3 observes that OFRewind-style recorded traces "explore only one
//! specific execution path" and suggests using recorded traces to *create*
//! test inputs. This module implements that bridge: take concrete recorded
//! OpenFlow frames, re-symbolize the fields of interest, and obtain a
//! SOFT test case whose exploration covers *every* behaviour in the
//! neighbourhood of the recorded interaction — not just the one path the
//! trace took.

use crate::input::{Input, TestCase};
use soft_openflow::consts::msg_type;
use soft_openflow::layout;
use soft_openflow::parse::{parse, Message, ParseError};
use soft_sym::SymBuf;

/// Field families that can be re-symbolized in a recorded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbolize {
    /// Output-action ports (and max_len) in flow mods / packet outs.
    OutputPorts,
    /// Arguments of set-field actions (VLAN vid/pcp, ToS, addresses).
    ActionArguments,
    /// The buffer id field.
    BufferId,
    /// The whole 40-byte match structure of a flow mod.
    MatchStruct,
    /// Idle/hard timeouts and flags of a flow mod.
    TimeoutsAndFlags,
    /// The statistics type of a stats request.
    StatsType,
}

/// Error for trace-to-test conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// A frame failed to parse.
    BadFrame(usize, ParseError),
    /// A requested field family does not exist in the frame's type.
    Inapplicable(usize, Symbolize),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::BadFrame(i, e) => write!(f, "frame {i}: {e}"),
            RecordError::Inapplicable(i, s) => {
                write!(f, "frame {i}: {s:?} not applicable to this message type")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Byte ranges of the requested field family within a parsed frame.
fn field_ranges(msg: &Message, sel: Symbolize) -> Option<Vec<(usize, usize)>> {
    use layout::{action, flow_mod, packet_out, stats_request};
    // Argument bytes of every action slot (after the type/len header).
    let action_ranges = |base: usize, n: usize| -> Vec<(usize, usize)> {
        (0..n)
            .map(|i| {
                let off = base + i * action::BASE_SIZE;
                (off + 4, off + 8)
            })
            .collect()
    };
    match (msg, sel) {
        (Message::PacketOut { actions, .. }, Symbolize::OutputPorts) => Some(
            actions
                .iter()
                .enumerate()
                .filter(|(_, a)| a.atype == soft_openflow::consts::action::OUTPUT)
                .map(|(i, _)| {
                    let off = packet_out::ACTIONS + i * action::BASE_SIZE;
                    (off + 4, off + 8)
                })
                .collect(),
        ),
        (Message::PacketOut { actions, .. }, Symbolize::ActionArguments) => {
            Some(action_ranges(packet_out::ACTIONS, actions.len()))
        }
        (Message::PacketOut { .. }, Symbolize::BufferId) => {
            Some(vec![(packet_out::BUFFER_ID, packet_out::BUFFER_ID + 4)])
        }
        (Message::FlowMod { actions, .. }, Symbolize::OutputPorts) => Some(
            actions
                .iter()
                .enumerate()
                .filter(|(_, a)| a.atype == soft_openflow::consts::action::OUTPUT)
                .map(|(i, _)| {
                    let off = flow_mod::ACTIONS + i * action::BASE_SIZE;
                    (off + 4, off + 8)
                })
                .collect(),
        ),
        (Message::FlowMod { actions, .. }, Symbolize::ActionArguments) => {
            Some(action_ranges(flow_mod::ACTIONS, actions.len()))
        }
        (Message::FlowMod { .. }, Symbolize::BufferId) => {
            Some(vec![(flow_mod::BUFFER_ID, flow_mod::BUFFER_ID + 4)])
        }
        (Message::FlowMod { .. }, Symbolize::MatchStruct) => {
            Some(vec![(flow_mod::MATCH, flow_mod::MATCH + 40)])
        }
        (Message::FlowMod { .. }, Symbolize::TimeoutsAndFlags) => Some(vec![
            (flow_mod::IDLE_TIMEOUT, flow_mod::HARD_TIMEOUT + 2),
            (flow_mod::FLAGS, flow_mod::FLAGS + 2),
        ]),
        (Message::StatsRequest { .. }, Symbolize::StatsType) => {
            Some(vec![(stats_request::TYPE, stats_request::TYPE + 2)])
        }
        _ => None,
    }
}

/// Re-symbolize the selected field families of a recorded frame. The
/// resulting buffer uses the standard `{tag}.b{offset}` variable naming,
/// so runs of different agents align (§3.1's cross-agent requirement).
pub fn symbolize_frame(
    frame_idx: usize,
    frame: &[u8],
    tag: &str,
    fields: &[Symbolize],
) -> Result<SymBuf, RecordError> {
    let parsed = parse(frame).map_err(|e| RecordError::BadFrame(frame_idx, e))?;
    // Start fully symbolic (stable names), then pin every byte that is NOT
    // selected back to its recorded value.
    let symbolic = SymBuf::symbolic(tag, frame.len());
    let mut selected = vec![false; frame.len()];
    for sel in fields {
        let ranges = field_ranges(&parsed.message, *sel)
            .ok_or(RecordError::Inapplicable(frame_idx, *sel))?;
        for (lo, hi) in ranges {
            for flag in selected.iter_mut().take(hi.min(frame.len())).skip(lo) {
                *flag = true;
            }
        }
    }
    let mut out = symbolic;
    for (i, &byte) in frame.iter().enumerate() {
        if !selected[i] {
            out.set_u8(i, byte);
        }
    }
    Ok(out)
}

/// A recorded controller-to-switch trace.
#[derive(Debug, Clone, Default)]
pub struct RecordedTrace {
    /// Concrete frames, in arrival order.
    pub frames: Vec<Vec<u8>>,
}

impl RecordedTrace {
    /// New empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one recorded frame.
    pub fn push(&mut self, frame: Vec<u8>) {
        self.frames.push(frame);
    }

    /// Convert to a SOFT test: each frame gets the requested field
    /// families re-symbolized (frames whose type doesn't carry the family
    /// stay concrete), and a TCP probe is appended after any
    /// state-changing message, per §3.3.
    pub fn to_test(&self, id: &'static str, fields: &[Symbolize]) -> Result<TestCase, RecordError> {
        let mut inputs = Vec::new();
        let mut any_state_changing = false;
        for (i, frame) in self.frames.iter().enumerate() {
            let parsed = parse(frame).map_err(|e| RecordError::BadFrame(i, e))?;
            // Apply only the families applicable to this frame's type.
            let applicable: Vec<Symbolize> = fields
                .iter()
                .copied()
                .filter(|s| field_ranges(&parsed.message, *s).is_some())
                .collect();
            let tag = format!("m{i}");
            let buf = if applicable.is_empty() {
                SymBuf::concrete(frame)
            } else {
                symbolize_frame(i, frame, &tag, &applicable)?
            };
            if matches!(
                parsed.message,
                Message::FlowMod { .. } | Message::SetConfig { .. }
            ) {
                any_state_changing = true;
            }
            let _ = msg_type::FLOW_MOD; // keep the import honest
            inputs.push(Input::Message(buf));
        }
        if any_state_changing {
            inputs.push(Input::Probe {
                in_port: 1,
                packet: soft_dataplane::tcp_probe(),
            });
        }
        Ok(TestCase::new(
            id,
            "Recorded trace",
            "Re-symbolized recorded controller trace (OFRewind-style).",
            inputs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_openflow::builder::{self, ActionSpec, FlowModSpec};

    fn recorded_flow_mod() -> Vec<u8> {
        builder::flow_mod("rec", &FlowModSpec::concrete_add(3))
            .as_concrete()
            .expect("concrete")
    }

    #[test]
    fn symbolize_output_ports_only() {
        let frame = recorded_flow_mod();
        let buf = symbolize_frame(0, &frame, "m0", &[Symbolize::OutputPorts]).unwrap();
        // Action port/max_len bytes (72+4..72+8) symbolic; everything else
        // pinned to the recorded values.
        for i in 0..frame.len() {
            let is_sym = (76..80).contains(&i);
            assert_eq!(
                buf.u8(i).as_bv_const().is_none(),
                is_sym,
                "byte {i} symbolization wrong"
            );
        }
    }

    #[test]
    fn symbolize_match_struct() {
        let frame = recorded_flow_mod();
        let buf = symbolize_frame(0, &frame, "m0", &[Symbolize::MatchStruct]).unwrap();
        for i in 8..48 {
            assert!(buf.u8(i).as_bv_const().is_none(), "match byte {i}");
        }
        assert!(buf.u8(56).as_bv_const().is_some(), "command stays concrete");
    }

    #[test]
    fn inapplicable_family_rejected() {
        let frame = builder::hello(1).as_concrete().unwrap();
        let err = symbolize_frame(0, &frame, "m0", &[Symbolize::OutputPorts]).unwrap_err();
        assert!(matches!(err, RecordError::Inapplicable(0, _)));
    }

    #[test]
    fn trace_to_test_appends_probe_after_state_change() {
        let mut trace = RecordedTrace::new();
        trace.push(builder::hello(1).as_concrete().unwrap());
        trace.push(recorded_flow_mod());
        let test = trace
            .to_test("rec_test", &[Symbolize::OutputPorts])
            .unwrap();
        assert_eq!(test.inputs.len(), 3, "hello + flow mod + probe");
        assert!(matches!(test.inputs.last(), Some(Input::Probe { .. })));
    }

    #[test]
    fn pure_query_trace_has_no_probe() {
        let mut trace = RecordedTrace::new();
        trace.push(
            builder::concrete_header_only(soft_openflow::consts::msg_type::ECHO_REQUEST, 1)
                .as_concrete()
                .unwrap(),
        );
        let test = trace.to_test("rec_q", &[]).unwrap();
        assert_eq!(test.inputs.len(), 1);
    }

    #[test]
    fn bad_frame_reported_with_index() {
        let mut trace = RecordedTrace::new();
        trace.push(vec![9, 9, 9]);
        let err = trace.to_test("rec_bad", &[]).unwrap_err();
        assert!(matches!(err, RecordError::BadFrame(0, _)));
    }

    #[test]
    fn symbolized_packet_out_uses_recorded_payload() {
        let payload = [1u8, 2, 3, 4];
        let mut m = builder::packet_out("rp", &[ActionSpec::Output(2)], &payload);
        m.set_u32(8, soft_openflow::consts::NO_BUFFER);
        m.set_u16(12, 1);
        let frame = m.as_concrete().unwrap();
        let buf = symbolize_frame(0, &frame, "m0", &[Symbolize::OutputPorts]).unwrap();
        // Payload bytes pinned.
        let off = frame.len() - payload.len();
        for (i, &b) in payload.iter().enumerate() {
            assert_eq!(buf.u8(off + i).as_bv_const(), Some(b as u64));
        }
        // Port bytes symbolic.
        assert!(buf.u16(20).as_bv_const().is_none());
    }
}
