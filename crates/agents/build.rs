//! Build-time source fingerprint for the agent models.
//!
//! `soft serve` keys its persistent result store on agent fingerprints.
//! The coverage-label universe alone cannot see a behaviour change that
//! keeps every label — a flipped branch constant, a different emitted
//! output — so the fingerprint also folds in a hash of the sources the
//! model's semantics flow through: this crate plus the wire-format,
//! data-plane, and symbolic-context crates it builds on. Any edit to
//! those sources changes `SOFT_AGENTS_BUILD_FP`, so a restarted daemon
//! re-solves instead of serving stale pre-change artifacts.

use std::fs;
use std::path::{Path, PathBuf};

/// FNV-1a 64 with a 0x1f separator after each field, matching
/// `soft_harness::journal::fnv64_hex` (not linkable from a build
/// script — the harness crate depends on this one's siblings).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn field(&mut self, bytes: &[u8]) {
        for &b in bytes.iter().chain(&[0x1f]) {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
}

/// Collect every `.rs` file under `dir`, recursively, as
/// (workspace-relative label, absolute path) pairs.
fn collect(dir: &Path, label: &str, out: &mut Vec<(String, PathBuf)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            collect(&path, &format!("{label}/{name}"), out);
        } else if name.ends_with(".rs") {
            out.push((format!("{label}/{name}"), path));
        }
    }
}

fn main() {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").expect("CARGO_MANIFEST_DIR");
    // The crates whose sources define agent behaviour. Paths are
    // relative to crates/agents; the labels are checkout-independent so
    // the fingerprint is stable across machines for identical sources.
    let roots = [
        ("agents/src", "src"),
        ("protocol/src", "../protocol/src"),
        ("openflow/src", "../openflow/src"),
        ("dataplane/src", "../dataplane/src"),
        ("sym/src", "../sym/src"),
    ];
    let mut files = Vec::new();
    for (label, rel) in roots {
        let dir = Path::new(&manifest).join(rel);
        println!("cargo:rerun-if-changed={}", dir.display());
        collect(&dir, label, &mut files);
    }
    files.sort();
    let mut h = Fnv::new();
    h.field(b"soft-agents-build");
    for (label, path) in &files {
        h.field(label.as_bytes());
        h.field(&fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display())));
        println!("cargo:rerun-if-changed={}", path.display());
    }
    println!("cargo:rustc-env=SOFT_AGENTS_BUILD_FP={:016x}", h.0);
}
