//! Plumbing shared by all agent models.
//!
//! Deliberately thin: SOFT exists to compare *independent implementations*,
//! so validation logic, error propagation and action execution live in each
//! agent. What is shared here is only what the wire format dictates
//! (action-slot field offsets, error emission helpers) and the switch-state
//! containers.

use soft_openflow::layout;
use soft_protocol::TraceEvent;
use soft_smt::Term;
use soft_sym::SymBuf;

pub use soft_protocol::{AgentResult, Ctx};

/// Accessor for one 8-byte action slot in an action list.
#[derive(Debug, Clone)]
pub struct ActionSlot {
    buf: SymBuf,
    off: usize,
}

impl ActionSlot {
    /// Slot at byte offset `off` of `buf`.
    pub fn at(buf: &SymBuf, off: usize) -> ActionSlot {
        ActionSlot {
            buf: buf.clone(),
            off,
        }
    }

    /// Action type (16-bit term).
    pub fn atype(&self) -> Term {
        self.buf.u16(self.off + layout::action::TYPE)
    }

    /// Declared action length (16-bit term).
    pub fn alen(&self) -> Term {
        self.buf.u16(self.off + layout::action::LEN)
    }

    /// Output action: port.
    pub fn output_port(&self) -> Term {
        self.buf.u16(self.off + layout::action::OUTPUT_PORT)
    }

    /// Output action: max_len (controller truncation).
    pub fn output_max_len(&self) -> Term {
        self.buf.u16(self.off + layout::action::OUTPUT_MAX_LEN)
    }

    /// VLAN vid argument.
    pub fn vlan_vid(&self) -> Term {
        self.buf.u16(self.off + layout::action::VLAN_VID)
    }

    /// VLAN pcp argument.
    pub fn vlan_pcp(&self) -> Term {
        self.buf.u8(self.off + layout::action::VLAN_PCP)
    }

    /// Ethernet address argument (set_dl_src / set_dl_dst). The 8-byte slot
    /// carries only the first 4 address bytes; the agents read the full
    /// 6-byte field only when the slot length permits, which our fixed
    /// 8-byte geometry does not, so the low bytes read as the following
    /// header — exactly the kind of aliasing the C structs exhibit. To stay
    /// well-defined we use the 4 argument bytes zero-extended.
    pub fn dl_addr(&self) -> Term {
        self.buf.u32(self.off + layout::action::DL_ADDR).zext(48)
    }

    /// IPv4 address argument.
    pub fn nw_addr(&self) -> Term {
        self.buf.u32(self.off + layout::action::NW_ADDR)
    }

    /// ToS argument.
    pub fn nw_tos(&self) -> Term {
        self.buf.u8(self.off + layout::action::NW_TOS)
    }

    /// Transport-port argument.
    pub fn tp_port(&self) -> Term {
        self.buf.u16(self.off + layout::action::TP_PORT)
    }
}

/// Switch configuration state (set by Set Config).
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Fragment-handling flags (16-bit term).
    pub flags: Term,
    /// Bytes of an unmatched packet forwarded to the controller.
    pub miss_send_len: Term,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            flags: Term::bv_const(16, 0),
            miss_send_len: Term::bv_const(16, soft_openflow::consts::DEFAULT_MISS_SEND_LEN as u64),
        }
    }
}

/// Classify a probe whose framing bytes are symbolic, branching on the
/// ethertype(s) the way the C agents' `flow_extract` does. Returns the
/// packet re-framed for the chosen interpretation. Concrete-framed packets
/// pass through without branching.
pub fn classify_packet(
    ctx: &mut Ctx<'_>,
    pkt: &soft_dataplane::Packet,
) -> Result<soft_dataplane::Packet, soft_sym::Stop> {
    use soft_dataplane::packet::{ETH_TYPE_IP, ETH_TYPE_VLAN};
    use soft_dataplane::Packet;
    if !pkt.framing_symbolic() {
        return Ok(pkt.clone());
    }
    ctx.cover("extract.entry");
    let et = pkt.buf.u16(12);
    if ctx.branch(
        "extract.vlan",
        &et.clone().eq(Term::bv_const(16, ETH_TYPE_VLAN as u64)),
    )? {
        ctx.cover("extract.vlan_tagged");
        if pkt.buf.len() >= 18 {
            let inner = pkt.buf.u16(16);
            let ip_ok = pkt.buf.len() >= 18 + 24;
            if ip_ok
                && ctx.branch(
                    "extract.vlan_ip",
                    &inner.eq(Term::bv_const(16, ETH_TYPE_IP as u64)),
                )?
            {
                ctx.cover("extract.vlan_ip");
                return Ok(Packet::with_framing(pkt.buf.clone(), true, true, true));
            }
            return Ok(Packet::with_framing(pkt.buf.clone(), true, false, false));
        }
        return Ok(Packet::with_framing(pkt.buf.clone(), true, false, false));
    }
    let ip_ok = pkt.buf.len() >= 14 + 24;
    if ip_ok && ctx.branch("extract.ip", &et.eq(Term::bv_const(16, ETH_TYPE_IP as u64)))? {
        ctx.cover("extract.ip");
        return Ok(Packet::with_framing(pkt.buf.clone(), false, true, true));
    }
    ctx.cover("extract.other");
    Ok(Packet::with_framing(pkt.buf.clone(), false, false, false))
}

/// Emit an OpenFlow error message event.
pub fn emit_error(ctx: &mut Ctx<'_>, xid: Term, etype: u16, code: u16) {
    ctx.emit(TraceEvent::Error {
        xid,
        etype: Term::bv_const(16, etype as u64),
        code: Term::bv_const(16, code as u64),
    });
}

/// Fork over the value of `len_term` in `0..=max`, returning the concrete
/// prefix length. Models the per-byte forking a real engine performs when a
/// `memcpy` length is symbolic (miss_send_len truncation, output max_len).
pub fn fork_truncation(
    ctx: &mut Ctx<'_>,
    site: &'static str,
    len_term: &Term,
    max: usize,
) -> Result<usize, soft_sym::Stop> {
    debug_assert_eq!(len_term.width(), 16);
    if let Some(v) = len_term.as_bv_const() {
        return Ok((v as usize).min(max));
    }
    if ctx.branch(site, &len_term.clone().uge(Term::bv_const(16, max as u64)))? {
        return Ok(max);
    }
    for n in 0..max {
        if ctx.branch(site, &len_term.clone().eq(Term::bv_const(16, n as u64)))? {
            return Ok(n);
        }
    }
    // Unreachable: len < max and len != 0..max-1 is infeasible; the solver
    // prunes the final false side, but keep a sound fallback.
    Err(soft_sym::Stop::Abort("truncation fork exhausted".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_sym::{explore, ExplorerConfig};

    #[test]
    fn action_slot_field_offsets() {
        let mut b = SymBuf::concrete(&[0; 16]);
        b.set_u16(8, 0x0001); // type at slot offset 8
        b.set_u16(10, 8); // len
        b.set_u16(12, 0x0abc); // vid
        let s = ActionSlot::at(&b, 8);
        assert_eq!(s.atype().as_bv_const(), Some(1));
        assert_eq!(s.alen().as_bv_const(), Some(8));
        assert_eq!(s.vlan_vid().as_bv_const(), Some(0x0abc));
    }

    #[test]
    fn fork_truncation_concrete_is_single_path() {
        let ex = explore(&ExplorerConfig::default(), |ctx: &mut Ctx<'_>| {
            let n = fork_truncation(ctx, "t", &Term::bv_const(16, 100), 68)?;
            assert_eq!(n, 68);
            let n2 = fork_truncation(ctx, "t", &Term::bv_const(16, 5), 68)?;
            assert_eq!(n2, 5);
            Ok(())
        });
        assert_eq!(ex.stats.paths, 1);
    }

    #[test]
    fn fork_truncation_symbolic_covers_all_lengths() {
        let ex = explore(&ExplorerConfig::default(), |ctx: &mut Ctx<'_>| {
            let msl = Term::var("ftr.msl", 16);
            let n = fork_truncation(ctx, "t", &msl, 4)?;
            ctx.emit(TraceEvent::DataPlaneTx {
                port: Term::bv_const(16, n as u64),
                data: SymBuf::empty(),
            });
            Ok(())
        });
        // lengths 0,1,2,3 plus the >=4 class
        let done: Vec<_> = ex.effective_paths().collect();
        assert_eq!(done.len(), 5);
    }

    #[test]
    fn default_config_matches_spec_defaults() {
        let c = SwitchConfig::default();
        assert_eq!(c.miss_send_len.as_bv_const(), Some(128));
        assert_eq!(c.flags.as_bv_const(), Some(0));
    }
}
