//! The agent interface SOFT tests against.

use crate::common::{AgentResult, Ctx};
use soft_dataplane::Packet;
use soft_sym::{CoverageUniverse, SymBuf};

/// An OpenFlow agent under test.
///
/// Implementations must be *deterministic*: all data-dependent control flow
/// goes through `ctx.branch`, all outputs through `ctx.emit`. The harness
/// constructs a fresh instance per explored path.
pub trait OpenFlowAgent {
    /// Implementation name (used in reports and result files).
    fn name(&self) -> &'static str;

    /// The agent's instrumentation universe (for coverage accounting).
    fn universe(&self) -> CoverageUniverse;

    /// Connection-establishment work (runs after the Hello exchange, before
    /// any test input). Covers the initialization code the paper measures
    /// as the "No Message" baseline of Table 4.
    fn on_connect(&mut self, ctx: &mut Ctx<'_>) -> AgentResult;

    /// Process one OpenFlow control message.
    fn handle_message(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf) -> AgentResult;

    /// Process one data-plane packet arriving on `in_port`.
    fn handle_packet(&mut self, ctx: &mut Ctx<'_>, in_port: u16, pkt: &Packet) -> AgentResult;

    /// Advance the agent's virtual clock to `now` (seconds since
    /// connection setup), firing any due timers (flow expiry).
    ///
    /// This implements the paper's stated future work ("we plan to extend
    /// our approach to deal with time, e.g., similarly to MODIST"): with a
    /// virtual clock the engine *can* trigger timers, making the
    /// timeout-dependent injected modification (M2) observable.
    fn handle_time(&mut self, ctx: &mut Ctx<'_>, now: u16) -> AgentResult {
        let _ = (ctx, now);
        Ok(())
    }
}

/// The agents this reproduction ships, mirroring the paper's evaluation
/// subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentKind {
    /// The OpenFlow 1.0 reference switch model (55K LoC of C in the paper).
    Reference,
    /// The Open vSwitch 1.0.0 model (80K LoC of C in the paper).
    OpenVSwitch,
    /// The Reference Switch with 7 manually injected behaviour changes
    /// (§5.1.1).
    Modified,
    /// The Reference Switch with one injected Rust panic on the unbuffered
    /// Packet Out branch — a fault-injection subject for the failure
    /// containment tests, not one of the paper's evaluation subjects (and
    /// therefore not part of [`AgentKind::all`]).
    Panicky,
}

impl AgentKind {
    /// Instantiate a fresh agent of this kind.
    pub fn make(self) -> Box<dyn OpenFlowAgent> {
        match self {
            AgentKind::Reference => Box::new(crate::reference::ReferenceSwitch::new()),
            AgentKind::OpenVSwitch => Box::new(crate::ovs::OpenVSwitch::new()),
            AgentKind::Modified => Box::new(crate::modified::modified_switch()),
            AgentKind::Panicky => Box::new(crate::modified::panicky_switch()),
        }
    }

    /// Stable identifier used in result files.
    pub fn id(self) -> &'static str {
        match self {
            AgentKind::Reference => "reference",
            AgentKind::OpenVSwitch => "ovs",
            AgentKind::Modified => "modified",
            AgentKind::Panicky => "panicky",
        }
    }

    /// The paper's three evaluation subjects (excludes the fault-injection
    /// [`AgentKind::Panicky`] agent).
    pub fn all() -> [AgentKind; 3] {
        [
            AgentKind::Reference,
            AgentKind::OpenVSwitch,
            AgentKind::Modified,
        ]
    }
}
