//! The agent interface SOFT tests against.
//!
//! The trait itself is protocol-generic and lives in `soft-protocol`
//! ([`soft_protocol::Agent`]); this module re-exports it under its
//! historical name and defines the enum of OpenFlow agents this
//! reproduction ships.

/// An agent under test. Alias of the protocol-generic
/// [`soft_protocol::Agent`] trait, kept under the name the OpenFlow
/// models were written against.
///
/// Implementations must be *deterministic*: all data-dependent control flow
/// goes through `ctx.branch`, all outputs through `ctx.emit`. The harness
/// constructs a fresh instance per explored path.
pub use soft_protocol::Agent as OpenFlowAgent;

/// The agents this reproduction ships, mirroring the paper's evaluation
/// subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentKind {
    /// The OpenFlow 1.0 reference switch model (55K LoC of C in the paper).
    Reference,
    /// The Open vSwitch 1.0.0 model (80K LoC of C in the paper).
    OpenVSwitch,
    /// The Reference Switch with 7 manually injected behaviour changes
    /// (§5.1.1).
    Modified,
    /// The Reference Switch with one injected Rust panic on the unbuffered
    /// Packet Out branch — a fault-injection subject for the failure
    /// containment tests, not one of the paper's evaluation subjects (and
    /// therefore not part of [`AgentKind::all`]).
    Panicky,
}

impl AgentKind {
    /// Instantiate a fresh agent of this kind.
    pub fn make(self) -> Box<dyn OpenFlowAgent> {
        match self {
            AgentKind::Reference => Box::new(crate::reference::ReferenceSwitch::new()),
            AgentKind::OpenVSwitch => Box::new(crate::ovs::OpenVSwitch::new()),
            AgentKind::Modified => Box::new(crate::modified::modified_switch()),
            AgentKind::Panicky => Box::new(crate::modified::panicky_switch()),
        }
    }

    /// Stable identifier used in result files.
    pub fn id(self) -> &'static str {
        match self {
            AgentKind::Reference => "reference",
            AgentKind::OpenVSwitch => "ovs",
            AgentKind::Modified => "modified",
            AgentKind::Panicky => "panicky",
        }
    }

    /// The paper's three evaluation subjects (excludes the fault-injection
    /// [`AgentKind::Panicky`] agent).
    pub fn all() -> [AgentKind; 3] {
        [
            AgentKind::Reference,
            AgentKind::OpenVSwitch,
            AgentKind::Modified,
        ]
    }
}
