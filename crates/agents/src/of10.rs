//! The OpenFlow 1.0 [`Protocol`] implementation and its wire dialect.
//!
//! This is the binding layer between the protocol-agnostic kernel and the
//! OpenFlow models: symbolic field layout, wire codec round-trips, the
//! test suite, and the over-the-wire conformance dialect (framing,
//! handshake script, frame classification, comparison tokens) all resolve
//! here.
//!
//! Conformance verdicts hinge on comparing *expected* behavior (the
//! in-process agent's trace) against *observed* behavior (frames read off
//! a socket). Rendering those through two different code paths is how
//! comparison logic drifts; this module has exactly one path instead:
//!
//! - [`encode_event`] turns a control-plane [`TraceEvent`] into an OF 1.0
//!   frame. The xid lives in the header slot *only* — an `OfReply` field
//!   named `"xid"` is never serialized into the payload — so a raw event
//!   (real xid) and its normalized twin (xid stripped) encode to frames
//!   that differ in the header alone.
//! - [`frame_token`] renders a wire frame as a comparison token that
//!   ignores the header xid and the packet-in buffer id, the exact data
//!   [`TraceEvent::normalize`] zeroes.
//!
//! Expected signatures are therefore `encode_event ∘ frame_token` over the
//! normalized trace, observed signatures are `frame_token` over the wire —
//! consistent by construction.

use crate::agent::AgentKind;
use crate::suite;
use soft_openflow::consts::{msg_type, OFP_VERSION};
use soft_openflow::decode::{frame_type, frame_xid, HEADER_LEN};
use soft_openflow::{layout, parse};
use soft_protocol::{
    Agent, AgentRef, FrameEvent, FrameIo, FrameStep, Input, Protocol, TestCase, TraceEvent,
    WireDialect, WireRx,
};
use soft_smt::Term;
use soft_sym::SymBuf;

/// The one OpenFlow 1.0 protocol instance; [`AgentRef`]s and the registry
/// point here.
pub static OF10: Of10 = Of10;

/// OpenFlow 1.0 as a [`Protocol`].
#[derive(Debug)]
pub struct Of10;

impl Protocol for Of10 {
    fn id(&self) -> &'static str {
        "of10"
    }

    fn wire_name(&self) -> &'static str {
        "OpenFlow 1.0"
    }

    fn agent_ids(&self) -> &'static [&'static str] {
        &["reference", "ovs", "modified", "panicky"]
    }

    fn agent_id(&self, name: &str) -> Option<&'static str> {
        match name {
            "reference" | "ref" => Some("reference"),
            "ovs" | "openvswitch" => Some("ovs"),
            "modified" => Some("modified"),
            "panicky" => Some("panicky"),
            _ => None,
        }
    }

    fn make_agent(&self, id: &str) -> Option<Box<dyn Agent>> {
        Some(match id {
            "reference" => AgentKind::Reference.make(),
            "ovs" => AgentKind::OpenVSwitch.make(),
            "modified" => AgentKind::Modified.make(),
            "panicky" => AgentKind::Panicky.make(),
            _ => return None,
        })
    }

    fn build_fingerprint(&self) -> &'static str {
        crate::BUILD_FINGERPRINT
    }

    fn tests(&self) -> Vec<TestCase> {
        let mut tests = suite::table1_suite();
        tests.push(suite::queue_config());
        tests.push(suite::timeout_flow_mod());
        tests.extend(suite::ablation::table5_suite());
        tests
    }

    fn message_spans(&self, bytes: &[u8]) -> Vec<(usize, usize)> {
        layout::spans::message_spans(bytes)
    }

    fn roundtrips(&self, bytes: &[u8]) -> bool {
        parse::roundtrips(bytes)
    }

    fn message_type(&self, bytes: &[u8]) -> Option<u8> {
        bytes.get(1).copied()
    }

    fn dialect(&self) -> &'static dyn WireDialect {
        &OF10_DIALECT
    }
}

impl From<AgentKind> for AgentRef {
    fn from(kind: AgentKind) -> AgentRef {
        AgentRef {
            protocol: &OF10,
            agent: kind.id(),
        }
    }
}

/// Prefix of every harness-originated xid (`0xC04F____` — "conf").
pub const HARNESS_XID_BASE: u32 = 0xC04F_0000;
/// Xid of the opening `HELLO`.
pub const HELLO_XID: u32 = HARNESS_XID_BASE | 1;
/// Xid of the `FEATURES_REQUEST`.
pub const FEATURES_XID: u32 = HARNESS_XID_BASE | 2;
/// Xid of the liveness `ECHO_REQUEST` keepalive.
pub const ECHO_XID: u32 = HARNESS_XID_BASE | 3;
/// Xid of the end-of-witness `BARRIER_REQUEST` sentinel.
pub const BARRIER_XID: u32 = HARNESS_XID_BASE | 0xBA;

/// True if `xid` was minted by the conformance harness.
pub fn is_harness_xid(xid: u32) -> bool {
    xid & 0xFFFF_0000 == HARNESS_XID_BASE
}

/// Build one OpenFlow 1.0 frame: header plus `body`.
pub fn frame(msg_type: u8, xid: u32, body: &[u8]) -> Vec<u8> {
    let len = (8 + body.len()) as u16;
    let mut f = vec![OFP_VERSION, msg_type];
    f.extend_from_slice(&len.to_be_bytes());
    f.extend_from_slice(&xid.to_be_bytes());
    f.extend_from_slice(body);
    f
}

/// The `ECHO_REPLY` answering a peer `ECHO_REQUEST` (same xid, same body).
pub fn echo_reply_for(request: &[u8]) -> Vec<u8> {
    frame(
        msg_type::ECHO_REPLY,
        frame_xid(request),
        request.get(8..).unwrap_or(&[]),
    )
}

fn concrete(t: &Term, what: &str) -> Result<u64, String> {
    t.as_bv_const()
        .ok_or_else(|| format!("{what} is symbolic in a concretely replayed trace"))
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Encode one trace event as an OpenFlow 1.0 frame.
///
/// `Ok(None)` for data-plane events — they are not observable on the
/// control channel and have no wire form here. `Err` if any field is
/// still symbolic (the conformance path only ever sees concretely
/// replayed traces, so this indicates a harness bug, not DUT behavior).
pub fn encode_event(e: &TraceEvent) -> Result<Option<Vec<u8>>, String> {
    match e {
        TraceEvent::Error { xid, etype, code } => {
            let mut body = Vec::with_capacity(4);
            body.extend_from_slice(&(concrete(etype, "error etype")? as u16).to_be_bytes());
            body.extend_from_slice(&(concrete(code, "error code")? as u16).to_be_bytes());
            Ok(Some(frame(
                msg_type::ERROR,
                concrete(xid, "error xid")? as u32,
                &body,
            )))
        }
        TraceEvent::PacketIn {
            buffer_id,
            in_port,
            reason,
            data_len,
            data,
        } => {
            let bytes = data
                .as_concrete()
                .ok_or("packet_in data is symbolic in a concretely replayed trace")?;
            let mut body = Vec::with_capacity(10 + bytes.len());
            body.extend_from_slice(&(concrete(buffer_id, "buffer_id")? as u32).to_be_bytes());
            body.extend_from_slice(&(concrete(data_len, "data_len")? as u16).to_be_bytes());
            body.extend_from_slice(&(concrete(in_port, "in_port")? as u16).to_be_bytes());
            body.push(concrete(reason, "reason")? as u8);
            body.push(0); // pad
            body.extend_from_slice(&bytes);
            Ok(Some(frame(msg_type::PACKET_IN, 0, &body)))
        }
        TraceEvent::OfReply {
            msg_type: t,
            fields,
            body,
        } => {
            // The xid goes into the header slot only; every other field
            // is serialized big-endian at its declared width, in order.
            let mut xid = 0u32;
            let mut payload = Vec::new();
            for (name, term) in fields {
                let v = concrete(term, &format!("reply field {name}"))?;
                if *name == "xid" {
                    xid = v as u32;
                    continue;
                }
                let width_bytes = (term.width() as usize).div_ceil(8);
                payload.extend_from_slice(&v.to_be_bytes()[8 - width_bytes..]);
            }
            payload.extend_from_slice(
                &body
                    .as_concrete()
                    .ok_or("reply body is symbolic in a concretely replayed trace")?,
            );
            Ok(Some(frame(*t, xid, &payload)))
        }
        TraceEvent::DataPlaneTx { .. }
        | TraceEvent::Flood { .. }
        | TraceEvent::NormalForward { .. }
        | TraceEvent::ProbeDropped => Ok(None),
    }
}

/// Render one wire frame as a comparison token. Ignores exactly the data
/// normalization zeroes: the header xid, and the packet-in buffer id.
/// Error frames also drop any echoed offending-message tail — real
/// switches attach it, the in-process model does not, and it carries no
/// verdict information beyond the (type, code) pair.
pub fn frame_token(f: &[u8]) -> String {
    if f.len() < 8 {
        return format!("runt({})", hex(f));
    }
    match frame_type(f) {
        t if t == msg_type::ERROR && f.len() >= 12 => {
            let etype = u16::from_be_bytes([f[8], f[9]]);
            let code = u16::from_be_bytes([f[10], f[11]]);
            format!("error({etype},{code})")
        }
        t if t == msg_type::PACKET_IN && f.len() >= 18 => {
            let total_len = u16::from_be_bytes([f[12], f[13]]);
            let in_port = u16::from_be_bytes([f[14], f[15]]);
            let reason = f[16];
            format!(
                "packet_in(port={in_port},reason={reason},len={total_len},data={})",
                hex(&f[18..])
            )
        }
        t => format!("reply({t}:{})", hex(&f[8..])),
    }
}

/// The token for an expected (in-process) event: canonical wire encoding
/// followed by the same tokenizer the observed side uses. `Ok(None)` for
/// events with no control-channel wire form.
pub fn event_token(e: &TraceEvent) -> Result<Option<String>, String> {
    Ok(encode_event(e)?.map(|f| frame_token(&f)))
}

/// What the completed handshake learned about the peer.
#[derive(Debug)]
pub struct HandshakeInfo {
    /// The version byte of the peer's `HELLO`.
    pub peer_version: u8,
    /// Body of the peer's `FEATURES_REPLY` (datapath id first).
    pub features_body: Vec<u8>,
}

/// Upper bound on frames consumed while waiting for one handshake step,
/// so a peer spraying asynchronous messages cannot wedge the harness.
const HANDSHAKE_FRAME_BUDGET: u32 = 64;

/// Run the controller side of session bring-up on `io`.
///
/// The harness behaves like a minimal controller: exchange `HELLO`,
/// negotiate down to 1.0, issue `FEATURES_REQUEST`, then prove liveness
/// with an `ECHO_REQUEST` keepalive before any witness traffic flows.
/// Every frame the harness originates carries an xid with the
/// [`HARNESS_XID_BASE`] prefix so its own control traffic can never be
/// confused with witness-induced replies — the replayer filters
/// observations by that prefix, not by arrival order, which is what makes
/// reordered keepalive replies harmless.
///
/// Any transport failure or protocol violation is an `Err` — the caller
/// retries on a fresh connection; handshake failures are never verdicts.
pub fn client_handshake_info(io: &mut dyn FrameIo) -> Result<HandshakeInfo, String> {
    io.send_frame(&frame(msg_type::HELLO, HELLO_XID, &[]))?;
    let hello = await_frame(io, "HELLO", |f| {
        (frame_type(f) == msg_type::HELLO).then(|| f.first().copied().unwrap_or(0))
    })?;
    if hello == 0 {
        return Err("peer HELLO carries version 0; no common version".to_string());
    }
    // OF version negotiation: the session runs at min(ours, theirs).
    // We only speak 1.0, and every version byte >= 1 negotiates down to
    // it, so any nonzero peer version is acceptable.

    io.send_frame(&frame(msg_type::FEATURES_REQUEST, FEATURES_XID, &[]))?;
    let features_body = await_frame(io, "FEATURES_REPLY", |f| {
        (frame_type(f) == msg_type::FEATURES_REPLY).then(|| f.get(8..).unwrap_or(&[]).to_vec())
    })?;

    // Liveness: a keepalive echo must round-trip before witness traffic.
    io.send_frame(&frame(msg_type::ECHO_REQUEST, ECHO_XID, &[]))?;
    await_frame(io, "ECHO_REPLY", |f| {
        (frame_type(f) == msg_type::ECHO_REPLY && frame_xid(f) == ECHO_XID).then_some(())
    })?;

    Ok(HandshakeInfo {
        peer_version: hello,
        features_body,
    })
}

/// Read frames until `want` extracts a value, answering peer echo
/// requests and ignoring asynchronous chatter along the way.
fn await_frame<T>(
    io: &mut dyn FrameIo,
    what: &str,
    want: impl Fn(&[u8]) -> Option<T>,
) -> Result<T, String> {
    for _ in 0..HANDSHAKE_FRAME_BUDGET {
        match io.recv_frame()? {
            FrameEvent::Closed => return Err(format!("peer closed while waiting for {what}")),
            FrameEvent::Frame(f) => {
                if let Some(v) = want(&f) {
                    return Ok(v);
                }
                if frame_type(&f) == msg_type::ECHO_REQUEST {
                    io.send_frame(&echo_reply_for(&f))?;
                }
            }
        }
    }
    Err(format!(
        "no {what} within {HANDSHAKE_FRAME_BUDGET} frames of chatter"
    ))
}

/// The one OpenFlow 1.0 wire-dialect instance.
pub static OF10_DIALECT: Of10Dialect = Of10Dialect;

/// OpenFlow 1.0 as a [`WireDialect`].
#[derive(Debug)]
pub struct Of10Dialect;

impl WireDialect for Of10Dialect {
    fn server_greeting(&self) -> Vec<u8> {
        // A switch speaks first: announce ourselves.
        frame(msg_type::HELLO, 0, &[])
    }

    fn frame_step(&self, buffered: &[u8]) -> FrameStep {
        // Mirrors `soft_openflow::decode::FrameDecoder` exactly, runt
        // diagnostic included.
        if buffered.len() < 4 {
            return FrameStep::NeedMore;
        }
        let declared = u16::from_be_bytes([buffered[2], buffered[3]]) as usize;
        if declared < HEADER_LEN {
            return FrameStep::Invalid(format!(
                "header declares length {declared} < {HEADER_LEN}; stream framing is lost"
            ));
        }
        if buffered.len() < declared {
            FrameStep::NeedMore
        } else {
            FrameStep::Frame(declared)
        }
    }

    fn encode_event(&self, e: &TraceEvent) -> Result<Option<Vec<u8>>, String> {
        encode_event(e)
    }

    fn frame_token(&self, f: &[u8]) -> String {
        frame_token(f)
    }

    fn client_handshake(&self, io: &mut dyn FrameIo) -> Result<(), String> {
        client_handshake_info(io).map(|_| ())
    }

    fn prelude_inputs(&self) -> Vec<Input> {
        // The same HELLO, FEATURES_REQUEST and keepalive ECHO the wire
        // handshake sends before witness traffic.
        [
            frame(msg_type::HELLO, HELLO_XID, &[]),
            frame(msg_type::FEATURES_REQUEST, FEATURES_XID, &[]),
            frame(msg_type::ECHO_REQUEST, ECHO_XID, &[]),
        ]
        .iter()
        .map(|f| Input::Message(SymBuf::concrete(f)))
        .collect()
    }

    fn end_sentinel(&self) -> Vec<u8> {
        frame(msg_type::BARRIER_REQUEST, BARRIER_XID, &[])
    }

    fn classify_rx(&self, f: &[u8]) -> WireRx {
        match frame_type(f) {
            // Session chatter, not behavior.
            t if t == msg_type::HELLO => WireRx::Ignore,
            // The DUT probing *our* liveness: answer, don't record.
            t if t == msg_type::ECHO_REQUEST => WireRx::Answer(echo_reply_for(f)),
            // Replies to our own keepalives, correlated by xid so
            // fault-injected reordering cannot misfile them.
            t if t == msg_type::ECHO_REPLY && is_harness_xid(frame_xid(f)) => WireRx::Ignore,
            t if t == msg_type::BARRIER_REPLY && frame_xid(f) == BARRIER_XID => WireRx::End,
            _ => WireRx::Observe,
        }
    }

    fn wire_framable(&self, msg: &[u8]) -> bool {
        msg.len() >= HEADER_LEN && u16::from_be_bytes([msg[2], msg[3]]) as usize == msg.len()
    }

    fn is_keepalive_reply(&self, f: &[u8]) -> bool {
        frame_type(f) == msg_type::ECHO_REPLY && is_harness_xid(frame_xid(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_protocol::render_signature;

    #[test]
    fn raw_and_normalized_error_share_a_token() {
        let raw = TraceEvent::Error {
            xid: Term::bv_const(32, 0xDEAD),
            etype: Term::bv_const(16, 1),
            code: Term::bv_const(16, 6),
        };
        let f_raw = encode_event(&raw).unwrap().unwrap();
        let f_norm = encode_event(&raw.normalize()).unwrap().unwrap();
        assert_eq!(frame_xid(&f_raw), 0xDEAD);
        assert_eq!(frame_xid(&f_norm), 0);
        assert_eq!(frame_token(&f_raw), "error(1,6)");
        assert_eq!(frame_token(&f_raw), frame_token(&f_norm));
    }

    #[test]
    fn reply_xid_field_lands_in_header_not_payload() {
        let raw = TraceEvent::OfReply {
            msg_type: msg_type::BARRIER_REPLY,
            fields: vec![("xid", Term::bv_const(32, 77))],
            body: SymBuf::empty(),
        };
        let f = encode_event(&raw).unwrap().unwrap();
        assert_eq!(f.len(), 8, "xid must not leak into the payload");
        assert_eq!(frame_xid(&f), 77);
        let norm = encode_event(&raw.normalize()).unwrap().unwrap();
        assert_eq!(frame_token(&f), frame_token(&norm));
    }

    #[test]
    fn reply_fields_serialize_at_declared_width() {
        let e = TraceEvent::OfReply {
            msg_type: msg_type::FEATURES_REPLY,
            fields: vec![
                ("xid", Term::bv_const(32, 5)),
                ("datapath_id", Term::bv_const(64, 0x1)),
                ("n_buffers", Term::bv_const(32, 256)),
                ("n_tables", Term::bv_const(8, 1)),
            ],
            body: SymBuf::empty(),
        };
        let f = encode_event(&e).unwrap().unwrap();
        assert_eq!(f.len(), 8 + 8 + 4 + 1);
        assert_eq!(&f[8..16], &[0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(&f[16..20], &[0, 0, 1, 0]);
        assert_eq!(f[20], 1);
    }

    #[test]
    fn packet_in_token_ignores_buffer_id() {
        let mk = |buf_id: u64| TraceEvent::PacketIn {
            buffer_id: Term::bv_const(32, buf_id),
            in_port: Term::bv_const(16, 3),
            reason: Term::bv_const(8, 0),
            data_len: Term::bv_const(16, 2),
            data: SymBuf::concrete(&[0xAA, 0xBB]),
        };
        let a = encode_event(&mk(17)).unwrap().unwrap();
        let b = encode_event(&mk(9999)).unwrap().unwrap();
        assert_ne!(a, b, "buffer id is on the wire");
        assert_eq!(frame_token(&a), frame_token(&b), "but not in the token");
        assert_eq!(
            frame_token(&a),
            "packet_in(port=3,reason=0,len=2,data=aabb)"
        );
    }

    #[test]
    fn symbolic_fields_are_rejected() {
        let e = TraceEvent::Error {
            xid: Term::var("x", 32),
            etype: Term::bv_const(16, 1),
            code: Term::bv_const(16, 6),
        };
        assert!(encode_event(&e).is_err());
    }

    #[test]
    fn data_plane_events_have_no_wire_form() {
        assert_eq!(encode_event(&TraceEvent::ProbeDropped).unwrap(), None);
        assert_eq!(event_token(&TraceEvent::ProbeDropped).unwrap(), None);
    }

    #[test]
    fn signature_style_matches_crosscheck_reports() {
        let toks = vec!["error(1,6)".to_string(), "reply(19:)".to_string()];
        assert_eq!(render_signature(false, &toks), "error(1,6)+reply(19:)");
        assert_eq!(render_signature(true, &toks), "crash:error(1,6)+reply(19:)");
        assert_eq!(render_signature(true, &[]), "crash:");
    }

    #[test]
    fn frame_layout_is_of10() {
        let f = frame(msg_type::ECHO_REQUEST, ECHO_XID, &[0xAB, 0xCD]);
        assert_eq!(f.len(), 10);
        assert_eq!(f[0], OFP_VERSION);
        assert_eq!(frame_type(&f), msg_type::ECHO_REQUEST);
        assert_eq!(u16::from_be_bytes([f[2], f[3]]), 10);
        assert_eq!(frame_xid(&f), ECHO_XID);
        assert_eq!(&f[8..], &[0xAB, 0xCD]);
    }

    #[test]
    fn echo_reply_mirrors_xid_and_body() {
        let req = frame(msg_type::ECHO_REQUEST, 0x1234, &[9, 9]);
        let rep = echo_reply_for(&req);
        assert_eq!(frame_type(&rep), msg_type::ECHO_REPLY);
        assert_eq!(frame_xid(&rep), 0x1234);
        assert_eq!(&rep[8..], &[9, 9]);
    }

    #[test]
    fn harness_xids_are_recognizable() {
        for xid in [HELLO_XID, FEATURES_XID, ECHO_XID, BARRIER_XID] {
            assert!(is_harness_xid(xid));
        }
        assert!(!is_harness_xid(0));
        assert!(!is_harness_xid(0x1234_5678));
    }

    #[test]
    fn frame_step_matches_frame_decoder() {
        let f = frame(msg_type::ECHO_REPLY, 7, &[1, 2]);
        assert_eq!(OF10_DIALECT.frame_step(&f[..3]), FrameStep::NeedMore);
        assert_eq!(OF10_DIALECT.frame_step(&f[..5]), FrameStep::NeedMore);
        assert_eq!(OF10_DIALECT.frame_step(&f), FrameStep::Frame(f.len()));
        let mut runt = f.clone();
        runt[2] = 0;
        runt[3] = 7;
        assert!(matches!(
            OF10_DIALECT.frame_step(&runt),
            FrameStep::Invalid(_)
        ));
    }

    #[test]
    fn classify_rx_separates_chatter_from_behavior() {
        use soft_protocol::WireRx;
        assert_eq!(
            OF10_DIALECT.classify_rx(&frame(msg_type::HELLO, 9, &[])),
            WireRx::Ignore
        );
        let keepalive = frame(msg_type::ECHO_REPLY, ECHO_XID, &[]);
        assert_eq!(OF10_DIALECT.classify_rx(&keepalive), WireRx::Ignore);
        assert!(OF10_DIALECT.is_keepalive_reply(&keepalive));
        assert_eq!(
            OF10_DIALECT.classify_rx(&frame(msg_type::BARRIER_REPLY, BARRIER_XID, &[])),
            WireRx::End
        );
        match OF10_DIALECT.classify_rx(&frame(msg_type::ECHO_REQUEST, 3, &[1])) {
            WireRx::Answer(reply) => assert_eq!(frame_type(&reply), msg_type::ECHO_REPLY),
            other => panic!("echo request should be answered, got {other:?}"),
        }
        assert_eq!(
            OF10_DIALECT.classify_rx(&frame(msg_type::ERROR, 1, &[0, 1, 0, 6])),
            WireRx::Observe
        );
    }

    #[test]
    fn protocol_surface_is_of10() {
        assert_eq!(OF10.id(), "of10");
        assert_eq!(OF10.wire_name(), "OpenFlow 1.0");
        assert_eq!(OF10.agent_id("ref"), Some("reference"));
        assert_eq!(OF10.agent_id("openvswitch"), Some("ovs"));
        assert_eq!(OF10.agent_id("nope"), None);
        let r: AgentRef = AgentKind::Reference.into();
        assert_eq!(r.id(), "reference");
        assert_eq!(r.protocol.id(), "of10");
        assert_eq!(r.make().name(), AgentKind::Reference.make().name());
        let f = frame(msg_type::ECHO_REQUEST, 1, &[]);
        assert_eq!(OF10.message_type(&f), Some(msg_type::ECHO_REQUEST));
        assert!(OF10.find_test("packet_out").is_some());
        assert!(OF10.find_test("no_such_test").is_none());
    }
}
