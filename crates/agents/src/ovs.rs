//! Behavioural model of *Open vSwitch 1.0.0* (80K LoC of C in the paper) —
//! the production-quality agent of the evaluation.
//!
//! The behaviours that diverge from the Reference Switch, per §5.1.2:
//!
//! - **Strict argument validation with silent drops**: a `SET_VLAN_VID`
//!   that does not fit in 12 bits, a `SET_VLAN_PCP` above 7, or a
//!   `SET_NW_TOS` with the low two bits set cause the *whole message* to be
//!   silently ignored — no error, no execution, no installation.
//! - **Max-port validation**: an output action to a port at or above the
//!   physical maximum (and not a known special port) is rejected with
//!   `OFPBAC_BAD_OUT_PORT` immediately.
//! - **`in_port == out_port` rules accepted**: the rule installs and the
//!   datapath silently drops matching packets.
//! - **Buffer errors reported**: a nonexistent `buffer_id` produces
//!   `OFPBRC_BUFFER_UNKNOWN`; for Flow Mod the flow is *still installed*.
//! - **Validation order**: actions are validated before the buffer id is
//!   resolved (the reverse of the Reference Switch).
//! - **`OFPP_NORMAL` supported**; **emergency flow entries not supported**
//!   (rejected with an error).
//! - **Unknown/vendor statistics requests get error replies** instead of
//!   being silently ignored.

use crate::agent::OpenFlowAgent;
use crate::common::{emit_error, fork_truncation, ActionSlot, AgentResult, Ctx, SwitchConfig};
use soft_dataplane::{FlowEntry, MatchFields, Packet};
use soft_openflow::consts::{
    action as act, bad_action, bad_request, config_flags, error_type, flow_mod_cmd, flow_mod_flags,
    msg_type, port as ofpp, queue_op_failed, stats_type, wildcards, NO_BUFFER, OFP_VERSION,
};
use soft_openflow::layout;
use soft_protocol::TraceEvent;
use soft_smt::Term;
use soft_sym::{CoverageUniverse, Stop, SymBuf};

/// Validation outcome; OVS adds the silent-drop case.
enum Validation {
    Ok,
    Error(u16, u16),
    /// Strict validation failed: ignore the whole message silently.
    SilentDrop,
}

/// Where an action list is executed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecOrigin {
    PacketOut,
    Probe,
}

/// The Open vSwitch 1.0.0 model.
pub struct OpenVSwitch {
    flow_table: Vec<FlowEntry>,
    config: SwitchConfig,
    next_buffer_id: u32,
    /// Virtual clock and per-entry install times (time extension).
    now: u16,
    install_times: Vec<u16>,
}

impl OpenVSwitch {
    /// A pristine Open vSwitch instance.
    pub fn new() -> OpenVSwitch {
        OpenVSwitch {
            flow_table: Vec::new(),
            config: SwitchConfig::default(),
            // OVS allocates buffer ids from a different range than the
            // reference switch — the normalization target of §3.3.
            next_buffer_id: 0x100,
            now: 0,
            install_times: Vec::new(),
        }
    }

    fn c16(v: u16) -> Term {
        Term::bv_const(16, v as u64)
    }

    // ------------------------------------------------------------ handlers

    fn handle_packet_out(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("packet_out.entry");
        if msg.len() < layout::packet_out::FIXED_SIZE {
            ctx.cover("packet_out.too_short");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let buffer_id = msg.u32(layout::packet_out::BUFFER_ID);
        let in_port = msg.u16(layout::packet_out::IN_PORT);
        let actions_len = ctx.concretize(&msg.u16(layout::packet_out::ACTIONS_LEN))? as usize;
        if layout::packet_out::FIXED_SIZE + actions_len > msg.len()
            || !actions_len.is_multiple_of(layout::action::BASE_SIZE)
        {
            ctx.cover("packet_out.bad_actions_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let n_actions = actions_len / layout::action::BASE_SIZE;

        // OVS ordering: validate the action list BEFORE resolving the
        // buffer — the validation-order inconsistency of §5.1.2.
        match self.validate_actions(ctx, msg, layout::packet_out::ACTIONS, n_actions)? {
            Validation::Error(t, c) => {
                ctx.cover("packet_out.validation_error");
                emit_error(ctx, xid, t, c);
                return Ok(());
            }
            Validation::SilentDrop => {
                ctx.cover("packet_out.silent_drop");
                return Ok(());
            }
            Validation::Ok => {}
        }
        if !ctx.branch(
            "packet_out.no_buffer",
            &buffer_id.eq(Term::bv_const(32, NO_BUFFER as u64)),
        )? {
            // Unlike the reference switch, the error reaches the wire.
            ctx.cover("packet_out.buffer_unknown_error");
            emit_error(
                ctx,
                xid,
                error_type::BAD_REQUEST,
                bad_request::BUFFER_UNKNOWN,
            );
            return Ok(());
        }
        ctx.cover("packet_out.unbuffered");
        let data_off = layout::packet_out::FIXED_SIZE + actions_len;
        let data = msg.slice(data_off, msg.len() - data_off);
        let Some(mut pkt) = Packet::parse(&data) else {
            ctx.cover("packet_out.opaque_payload");
            return Ok(());
        };
        ctx.cover("packet_out.execute");
        self.execute_actions(
            ctx,
            msg,
            layout::packet_out::ACTIONS,
            n_actions,
            &mut pkt,
            &in_port,
            ExecOrigin::PacketOut,
        )
    }

    /// Validate an action list with OVS's strict checks.
    fn validate_actions(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &SymBuf,
        off: usize,
        n: usize,
    ) -> Result<Validation, Stop> {
        for i in 0..n {
            let slot = ActionSlot::at(msg, off + i * layout::action::BASE_SIZE);
            let at = slot.atype();
            if ctx.branch("val.output", &at.clone().eq(Self::c16(act::OUTPUT)))? {
                ctx.cover("val.output");
                let p = slot.output_port();
                if ctx.branch("val.port_zero", &p.clone().eq(Self::c16(0)))? {
                    ctx.cover("val.port_zero");
                    return Ok(Validation::Error(
                        error_type::BAD_ACTION,
                        bad_action::BAD_OUT_PORT,
                    ));
                }
                if ctx.branch("val.port_none", &p.clone().eq(Self::c16(ofpp::OFPP_NONE)))? {
                    ctx.cover("val.port_none");
                    return Ok(Validation::Error(
                        error_type::BAD_ACTION,
                        bad_action::BAD_OUT_PORT,
                    ));
                }
                // "Open vSwitch immediately returns an error when the
                // action defines an output port greater than a configurable
                // maximum value."
                let too_big = p
                    .clone()
                    .uge(Self::c16(ofpp::OFPP_MAX))
                    .and(p.clone().ult(Self::c16(ofpp::OFPP_IN_PORT)));
                if ctx.branch("val.port_above_max", &too_big)? {
                    ctx.cover("val.port_above_max");
                    return Ok(Validation::Error(
                        error_type::BAD_ACTION,
                        bad_action::BAD_OUT_PORT,
                    ));
                }
                // OFPP_NORMAL passes validation: OVS implements the
                // traditional forwarding path.
                continue;
            }
            if ctx.branch(
                "val.set_vlan_vid",
                &at.clone().eq(Self::c16(act::SET_VLAN_VID)),
            )? {
                ctx.cover("val.set_vlan_vid");
                // Strict 12-bit validation; failure drops the message.
                if ctx.branch(
                    "val.vlan_vid_range",
                    &slot.vlan_vid().ugt(Self::c16(0x0fff)),
                )? {
                    ctx.cover("val.vlan_vid_silent_drop");
                    return Ok(Validation::SilentDrop);
                }
                continue;
            }
            if ctx.branch(
                "val.set_vlan_pcp",
                &at.clone().eq(Self::c16(act::SET_VLAN_PCP)),
            )? {
                ctx.cover("val.set_vlan_pcp");
                // "the vlan_pcp field undergoes additional validation in
                // Open vSwitch."
                if ctx.branch(
                    "val.vlan_pcp_range",
                    &slot.vlan_pcp().ugt(Term::bv_const(8, 7)),
                )? {
                    ctx.cover("val.vlan_pcp_silent_drop");
                    return Ok(Validation::SilentDrop);
                }
                continue;
            }
            if ctx.branch("val.strip_vlan", &at.clone().eq(Self::c16(act::STRIP_VLAN)))? {
                ctx.cover("val.strip_vlan");
                continue;
            }
            if ctx.branch(
                "val.set_dl",
                &at.clone()
                    .eq(Self::c16(act::SET_DL_SRC))
                    .or(at.clone().eq(Self::c16(act::SET_DL_DST))),
            )? {
                ctx.cover("val.set_dl");
                continue;
            }
            if ctx.branch(
                "val.set_nw",
                &at.clone()
                    .eq(Self::c16(act::SET_NW_SRC))
                    .or(at.clone().eq(Self::c16(act::SET_NW_DST))),
            )? {
                ctx.cover("val.set_nw");
                continue;
            }
            if ctx.branch("val.set_nw_tos", &at.clone().eq(Self::c16(act::SET_NW_TOS)))? {
                ctx.cover("val.set_nw_tos");
                // "whether the last two bits of the TOS value are equal
                // to 0" — strict check, silent drop on failure.
                let low_bits = slot
                    .nw_tos()
                    .bvand(Term::bv_const(8, 0x03))
                    .ne(Term::bv_const(8, 0));
                if ctx.branch("val.nw_tos_low_bits", &low_bits)? {
                    ctx.cover("val.nw_tos_silent_drop");
                    return Ok(Validation::SilentDrop);
                }
                continue;
            }
            if ctx.branch(
                "val.set_tp",
                &at.clone()
                    .eq(Self::c16(act::SET_TP_SRC))
                    .or(at.clone().eq(Self::c16(act::SET_TP_DST))),
            )? {
                ctx.cover("val.set_tp");
                continue;
            }
            if ctx.branch("val.enqueue", &at.clone().eq(Self::c16(act::ENQUEUE)))? {
                ctx.cover("val.enqueue_bad_len");
                return Ok(Validation::Error(
                    error_type::BAD_ACTION,
                    bad_action::BAD_LEN,
                ));
            }
            if ctx.branch("val.vendor", &at.clone().eq(Self::c16(act::VENDOR)))? {
                ctx.cover("val.vendor");
                return Ok(Validation::Error(
                    error_type::BAD_ACTION,
                    bad_action::BAD_VENDOR,
                ));
            }
            ctx.cover("val.unknown_type");
            return Ok(Validation::Error(
                error_type::BAD_ACTION,
                bad_action::BAD_TYPE,
            ));
        }
        Ok(Validation::Ok)
    }

    /// Execute a validated action list against `pkt`.
    #[allow(clippy::too_many_arguments)]
    fn execute_actions(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &SymBuf,
        off: usize,
        n: usize,
        pkt: &mut Packet,
        in_port: &Term,
        origin: ExecOrigin,
    ) -> AgentResult {
        for i in 0..n {
            let slot = ActionSlot::at(msg, off + i * layout::action::BASE_SIZE);
            let at = slot.atype();
            if ctx.branch("exec.output", &at.clone().eq(Self::c16(act::OUTPUT)))? {
                ctx.cover("exec.output");
                self.exec_output(ctx, &slot, pkt, in_port, origin)?;
                continue;
            }
            if ctx.branch(
                "exec.set_vlan_vid",
                &at.clone().eq(Self::c16(act::SET_VLAN_VID)),
            )? {
                // Validated to fit 12 bits; applied as-is, no crash.
                ctx.cover("exec.set_vlan_vid");
                pkt.set_vlan_vid(&slot.vlan_vid(), false);
                continue;
            }
            if ctx.branch(
                "exec.set_vlan_pcp",
                &at.clone().eq(Self::c16(act::SET_VLAN_PCP)),
            )? {
                ctx.cover("exec.set_vlan_pcp");
                pkt.set_vlan_pcp(&slot.vlan_pcp(), false);
                continue;
            }
            if ctx.branch(
                "exec.strip_vlan",
                &at.clone().eq(Self::c16(act::STRIP_VLAN)),
            )? {
                ctx.cover("exec.strip_vlan");
                pkt.strip_vlan();
                continue;
            }
            if ctx.branch(
                "exec.set_dl_src",
                &at.clone().eq(Self::c16(act::SET_DL_SRC)),
            )? {
                ctx.cover("exec.set_dl_src");
                pkt.set_dl_src(&slot.dl_addr());
                continue;
            }
            if ctx.branch(
                "exec.set_dl_dst",
                &at.clone().eq(Self::c16(act::SET_DL_DST)),
            )? {
                ctx.cover("exec.set_dl_dst");
                pkt.set_dl_dst(&slot.dl_addr());
                continue;
            }
            if ctx.branch(
                "exec.set_nw_src",
                &at.clone().eq(Self::c16(act::SET_NW_SRC)),
            )? {
                ctx.cover("exec.set_nw_src");
                pkt.set_nw_src(&slot.nw_addr());
                continue;
            }
            if ctx.branch(
                "exec.set_nw_dst",
                &at.clone().eq(Self::c16(act::SET_NW_DST)),
            )? {
                ctx.cover("exec.set_nw_dst");
                pkt.set_nw_dst(&slot.nw_addr());
                continue;
            }
            if ctx.branch(
                "exec.set_nw_tos",
                &at.clone().eq(Self::c16(act::SET_NW_TOS)),
            )? {
                ctx.cover("exec.set_nw_tos");
                pkt.set_nw_tos(&slot.nw_tos(), false);
                continue;
            }
            if ctx.branch(
                "exec.set_tp_src",
                &at.clone().eq(Self::c16(act::SET_TP_SRC)),
            )? {
                ctx.cover("exec.set_tp_src");
                pkt.set_tp_src(&slot.tp_port());
                continue;
            }
            if ctx.branch(
                "exec.set_tp_dst",
                &at.clone().eq(Self::c16(act::SET_TP_DST)),
            )? {
                ctx.cover("exec.set_tp_dst");
                pkt.set_tp_dst(&slot.tp_port());
                continue;
            }
        }
        Ok(())
    }

    fn exec_output(
        &mut self,
        ctx: &mut Ctx<'_>,
        slot: &ActionSlot,
        pkt: &mut Packet,
        in_port: &Term,
        origin: ExecOrigin,
    ) -> AgentResult {
        let p = slot.output_port();
        if ctx.branch("out.in_port", &p.clone().eq(Self::c16(ofpp::OFPP_IN_PORT)))? {
            ctx.cover("out.in_port");
            ctx.emit(TraceEvent::DataPlaneTx {
                port: in_port.clone(),
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch("out.table", &p.clone().eq(Self::c16(ofpp::OFPP_TABLE)))? {
            ctx.cover("out.table");
            if origin == ExecOrigin::PacketOut {
                let pkt2 = pkt.clone();
                self.lookup_and_forward(ctx, &pkt2, in_port)?;
            }
            return Ok(());
        }
        if ctx.branch("out.normal", &p.clone().eq(Self::c16(ofpp::OFPP_NORMAL)))? {
            // Supported: hand the packet to the traditional L2/L3 pipeline.
            ctx.cover("out.normal");
            ctx.emit(TraceEvent::NormalForward {
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch("out.flood", &p.clone().eq(Self::c16(ofpp::OFPP_FLOOD)))? {
            ctx.cover("out.flood");
            ctx.emit(TraceEvent::Flood {
                exclude_ingress: true,
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch("out.all", &p.clone().eq(Self::c16(ofpp::OFPP_ALL)))? {
            ctx.cover("out.all");
            ctx.emit(TraceEvent::Flood {
                exclude_ingress: true,
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch(
            "out.controller",
            &p.clone().eq(Self::c16(ofpp::OFPP_CONTROLLER)),
        )? {
            // No crash here: OVS encapsulates and forwards to the
            // controller from both paths.
            ctx.cover("out.controller");
            // The data length is min(max_len, len): carried symbolically in
            // the event rather than forked per byte (the send path adjusts
            // a length field; it does not copy byte-by-byte).
            let max_len = slot.output_max_len();
            let plen = Term::bv_const(16, pkt.len() as u64);
            let data_len = Term::ite_bv(max_len.clone().ult(plen.clone()), max_len, plen);
            let id = self.next_buffer_id;
            self.next_buffer_id += 1;
            ctx.emit(TraceEvent::PacketIn {
                buffer_id: Term::bv_const(32, id as u64),
                in_port: in_port.clone(),
                reason: Term::bv_const(8, soft_openflow::consts::packet_in_reason::ACTION as u64),
                data_len,
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch("out.local", &p.clone().eq(Self::c16(ofpp::OFPP_LOCAL)))? {
            ctx.cover("out.local");
            ctx.emit(TraceEvent::DataPlaneTx {
                port: Self::c16(ofpp::OFPP_LOCAL),
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        // Plain port (validation capped it below OFPP_MAX). Sending back
        // out the ingress port is silently dropped — this is how an
        // accepted `in_port == out_port` rule manifests (§5.1.2).
        if ctx.branch("out.eq_ingress", &p.clone().eq(in_port.clone()))? {
            ctx.cover("out.drop_ingress");
            return Ok(());
        }
        ctx.cover("out.tx_port");
        ctx.emit(TraceEvent::DataPlaneTx {
            port: p,
            data: pkt.buf.clone(),
        });
        Ok(())
    }

    fn lookup_and_forward(
        &mut self,
        ctx: &mut Ctx<'_>,
        pkt: &Packet,
        in_port: &Term,
    ) -> AgentResult {
        ctx.cover("lookup.entry");
        let mut best: Option<usize> = None;
        let table = self.flow_table.clone();
        for (idx, entry) in table.iter().enumerate() {
            let mut all = true;
            for (label, cond) in entry.fields.conditions(in_port, pkt) {
                if !ctx.branch(label, &cond)? {
                    all = false;
                    break;
                }
            }
            if !all {
                continue;
            }
            best = match best {
                None => Some(idx),
                Some(b) => {
                    if ctx.branch(
                        "lookup.priority_gt",
                        &entry.priority.clone().ugt(table[b].priority.clone()),
                    )? {
                        Some(idx)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        match best {
            Some(idx) => {
                ctx.cover("lookup.hit");
                let entry = table[idx].clone();
                let n = entry.actions.len() / layout::action::BASE_SIZE;
                let mut p = pkt.clone();
                self.execute_actions(
                    ctx,
                    &entry.actions,
                    0,
                    n,
                    &mut p,
                    in_port,
                    ExecOrigin::Probe,
                )
            }
            None => {
                ctx.cover("lookup.miss");
                self.packet_in_miss(ctx, pkt, in_port)
            }
        }
    }

    fn packet_in_miss(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet, in_port: &Term) -> AgentResult {
        ctx.cover("packet_in.miss");
        let msl = self.config.miss_send_len.clone();
        let n = fork_truncation(ctx, "packet_in.trunc", &msl, pkt.len())?;
        let id = self.next_buffer_id;
        self.next_buffer_id += 1;
        ctx.emit(TraceEvent::PacketIn {
            buffer_id: Term::bv_const(32, id as u64),
            in_port: in_port.clone(),
            reason: Term::bv_const(8, soft_openflow::consts::packet_in_reason::NO_MATCH as u64),
            data_len: Term::bv_const(16, n as u64),
            data: pkt.truncated(n),
        });
        Ok(())
    }

    fn handle_flow_mod(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("flow_mod.entry");
        if msg.len() < layout::flow_mod::FIXED_SIZE
            || !(msg.len() - layout::flow_mod::FIXED_SIZE).is_multiple_of(layout::action::BASE_SIZE)
        {
            ctx.cover("flow_mod.bad_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let mut mf = MatchFields::parse(msg, layout::flow_mod::MATCH);
        self.normalize_match(ctx, &mut mf)?;
        let cmd = msg.u16(layout::flow_mod::COMMAND);
        if ctx.branch(
            "flow_mod.cmd_add",
            &cmd.clone().eq(Self::c16(flow_mod_cmd::ADD)),
        )? {
            ctx.cover("flow_mod.add");
            return self.flow_add(ctx, msg, xid, mf);
        }
        if ctx.branch(
            "flow_mod.cmd_modify",
            &cmd.clone()
                .eq(Self::c16(flow_mod_cmd::MODIFY))
                .or(cmd.clone().eq(Self::c16(flow_mod_cmd::MODIFY_STRICT))),
        )? {
            ctx.cover("flow_mod.modify");
            return self.flow_modify(ctx, msg, xid, mf);
        }
        if ctx.branch(
            "flow_mod.cmd_delete",
            &cmd.clone()
                .eq(Self::c16(flow_mod_cmd::DELETE))
                .or(cmd.clone().eq(Self::c16(flow_mod_cmd::DELETE_STRICT))),
        )? {
            ctx.cover("flow_mod.delete");
            return self.flow_delete(ctx, msg, mf);
        }
        ctx.cover("flow_mod.bad_command");
        emit_error(
            ctx,
            xid,
            error_type::FLOW_MOD_FAILED,
            soft_openflow::consts::flow_mod_failed::BAD_COMMAND,
        );
        Ok(())
    }

    /// OVS's `normalize_match`: fields that cannot apply given the
    /// (possibly symbolic) wildcards and dl_type are zeroed before the
    /// rule enters the classifier. Each conditional is a symbolic branch —
    /// this is why OVS partitions flow mod input spaces 3-15x more finely
    /// than the reference switch (Table 2).
    fn normalize_match(&mut self, ctx: &mut Ctx<'_>, mf: &mut MatchFields) -> AgentResult {
        // VLAN handling: a wildcarded dl_vlan makes the pcp irrelevant.
        if ctx.branch(
            "norm.vlan_wc",
            &mf.wc_bit(soft_openflow::consts::wildcards::DL_VLAN),
        )? {
            ctx.cover("norm.vlan_wildcarded");
            mf.dl_vlan_pcp = Term::bv_const(8, 0);
        } else {
            ctx.cover("norm.vlan_exact");
        }
        // L3 fields only apply to IP frames.
        if ctx.branch(
            "norm.dl_type_wc",
            &mf.wc_bit(soft_openflow::consts::wildcards::DL_TYPE),
        )? {
            ctx.cover("norm.dl_type_wildcarded");
        } else if ctx.branch(
            "norm.dl_type_ip",
            &mf.dl_type.clone().eq(Term::bv_const(
                16,
                soft_dataplane::packet::ETH_TYPE_IP as u64,
            )),
        )? {
            ctx.cover("norm.dl_type_ip");
        } else {
            ctx.cover("norm.zero_l3");
            mf.nw_src = Term::bv_const(32, 0);
            mf.nw_dst = Term::bv_const(32, 0);
            mf.nw_tos = Term::bv_const(8, 0);
            mf.nw_proto = Term::bv_const(8, 0);
            mf.tp_src = Term::bv_const(16, 0);
            mf.tp_dst = Term::bv_const(16, 0);
        }
        Ok(())
    }

    fn entry_from_msg(msg: &SymBuf, mf: MatchFields) -> FlowEntry {
        let actions = msg.slice(
            layout::flow_mod::ACTIONS,
            msg.len() - layout::flow_mod::ACTIONS,
        );
        FlowEntry {
            fields: mf,
            priority: msg.u16(layout::flow_mod::PRIORITY),
            actions,
            cookie: msg.u32(layout::flow_mod::COOKIE + 4),
            idle_timeout: msg.u16(layout::flow_mod::IDLE_TIMEOUT),
            hard_timeout: msg.u16(layout::flow_mod::HARD_TIMEOUT),
            flags: msg.u16(layout::flow_mod::FLAGS),
            emergency: false,
        }
    }

    fn flow_add(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &SymBuf,
        xid: Term,
        mf: MatchFields,
    ) -> AgentResult {
        let n = (msg.len() - layout::flow_mod::ACTIONS) / layout::action::BASE_SIZE;
        match self.validate_actions(ctx, msg, layout::flow_mod::ACTIONS, n)? {
            Validation::Error(t, c) => {
                ctx.cover("flow_mod.validation_error");
                emit_error(ctx, xid, t, c);
                return Ok(());
            }
            Validation::SilentDrop => {
                ctx.cover("flow_mod.silent_drop");
                return Ok(());
            }
            Validation::Ok => {}
        }
        let flags = msg.u16(layout::flow_mod::FLAGS);
        // "Open vSwitch does not support emergency flow entries that are
        // defined in the specifications."
        let emerg_cond = flags
            .clone()
            .bvand(Self::c16(flow_mod_flags::EMERG))
            .ne(Self::c16(0));
        if ctx.branch("flow_mod.emerg", &emerg_cond)? {
            ctx.cover("flow_mod.emerg_unsupported");
            emit_error(
                ctx,
                xid,
                error_type::FLOW_MOD_FAILED,
                soft_openflow::consts::flow_mod_failed::UNSUPPORTED,
            );
            return Ok(());
        }
        let overlap_req = flags
            .clone()
            .bvand(Self::c16(flow_mod_flags::CHECK_OVERLAP))
            .ne(Self::c16(0));
        if ctx.branch("flow_mod.check_overlap", &overlap_req)? {
            ctx.cover("flow_mod.check_overlap");
            let priority = msg.u16(layout::flow_mod::PRIORITY);
            for entry in self.flow_table.clone() {
                let cond = entry
                    .priority
                    .clone()
                    .eq(priority.clone())
                    .and(Self::overlaps(&entry.fields, &mf));
                if ctx.branch("flow_mod.overlaps", &cond)? {
                    ctx.cover("flow_mod.overlap_error");
                    emit_error(
                        ctx,
                        xid,
                        error_type::FLOW_MOD_FAILED,
                        soft_openflow::consts::flow_mod_failed::OVERLAP,
                    );
                    return Ok(());
                }
            }
        }
        // Install first; a bad buffer id is reported afterwards but does
        // not undo the installation ("Open vSwitch replies with an error
        // message, but installs the flow as well").
        self.flow_table.push(Self::entry_from_msg(msg, mf));
        self.install_times.push(self.now);
        ctx.cover("flow_mod.installed");
        let buffer_id = msg.u32(layout::flow_mod::BUFFER_ID);
        if !ctx.branch(
            "flow_mod.no_buffer",
            &buffer_id.eq(Term::bv_const(32, NO_BUFFER as u64)),
        )? {
            ctx.cover("flow_mod.buffer_unknown_error");
            emit_error(
                ctx,
                xid,
                error_type::BAD_REQUEST,
                bad_request::BUFFER_UNKNOWN,
            );
        }
        Ok(())
    }

    fn overlaps(a: &MatchFields, b: &MatchFields) -> Term {
        let f = |wa: Term, wb: Term, va: Term, vb: Term| wa.or(wb).or(va.eq(vb));
        f(
            a.wc_bit(wildcards::IN_PORT),
            b.wc_bit(wildcards::IN_PORT),
            a.in_port.clone(),
            b.in_port.clone(),
        )
        .and(f(
            a.wc_bit(wildcards::DL_TYPE),
            b.wc_bit(wildcards::DL_TYPE),
            a.dl_type.clone(),
            b.dl_type.clone(),
        ))
        .and(f(
            a.wc_bit(wildcards::DL_VLAN),
            b.wc_bit(wildcards::DL_VLAN),
            a.dl_vlan.clone(),
            b.dl_vlan.clone(),
        ))
    }

    fn same_match(a: &MatchFields, b: &MatchFields) -> Term {
        a.wildcards
            .clone()
            .eq(b.wildcards.clone())
            .and(a.in_port.clone().eq(b.in_port.clone()))
            .and(a.dl_type.clone().eq(b.dl_type.clone()))
    }

    fn flow_modify(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &SymBuf,
        xid: Term,
        mf: MatchFields,
    ) -> AgentResult {
        let n = (msg.len() - layout::flow_mod::ACTIONS) / layout::action::BASE_SIZE;
        match self.validate_actions(ctx, msg, layout::flow_mod::ACTIONS, n)? {
            Validation::Error(t, c) => {
                ctx.cover("flow_mod.validation_error");
                emit_error(ctx, xid, t, c);
                return Ok(());
            }
            Validation::SilentDrop => {
                ctx.cover("flow_mod.silent_drop");
                return Ok(());
            }
            Validation::Ok => {}
        }
        let new_actions = msg.slice(
            layout::flow_mod::ACTIONS,
            msg.len() - layout::flow_mod::ACTIONS,
        );
        let mut any = false;
        let table = self.flow_table.clone();
        for (idx, entry) in table.iter().enumerate() {
            if ctx.branch("modify.same_match", &Self::same_match(&entry.fields, &mf))? {
                ctx.cover("modify.applied");
                self.flow_table[idx].actions = new_actions.clone();
                any = true;
            }
        }
        if !any {
            ctx.cover("modify.fallback_add");
            self.flow_table.push(Self::entry_from_msg(msg, mf));
            self.install_times.push(self.now);
        }
        Ok(())
    }

    fn flow_delete(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, mf: MatchFields) -> AgentResult {
        let wc_all = mf
            .wildcards
            .clone()
            .eq(Term::bv_const(32, wildcards::ALL as u64));
        let table = self.flow_table.clone();
        let times = self.install_times.clone();
        let mut keep: Vec<FlowEntry> = Vec::new();
        let mut keep_times: Vec<u16> = Vec::new();
        for (entry, itime) in table.into_iter().zip(times) {
            let cond = wc_all.clone().or(Self::same_match(&entry.fields, &mf));
            if ctx.branch("delete.matches", &cond)? {
                ctx.cover("delete.removed");
                let notify = entry
                    .flags
                    .clone()
                    .bvand(Self::c16(flow_mod_flags::SEND_FLOW_REM))
                    .ne(Self::c16(0));
                if ctx.branch("delete.send_flow_rem", &notify)? {
                    ctx.cover("delete.flow_removed_sent");
                    ctx.emit(TraceEvent::OfReply {
                        msg_type: msg_type::FLOW_REMOVED,
                        fields: vec![
                            ("priority", entry.priority.clone()),
                            ("cookie", entry.cookie.clone()),
                        ],
                        body: SymBuf::empty(),
                    });
                }
            } else {
                keep.push(entry);
                keep_times.push(itime);
            }
        }
        let _ = msg;
        self.flow_table = keep;
        self.install_times = keep_times;
        Ok(())
    }

    /// Fire flow-expiry timers up to the virtual time `now`. Semantics
    /// match the reference switch — expiry itself is not an
    /// interoperability divergence.
    fn expire_flows(&mut self, ctx: &mut Ctx<'_>, now: u16) -> AgentResult {
        ctx.cover("timer.sweep");
        self.now = now;
        let table = self.flow_table.clone();
        let times = self.install_times.clone();
        let mut keep: Vec<FlowEntry> = Vec::new();
        let mut keep_times: Vec<u16> = Vec::new();
        for (entry, itime) in table.into_iter().zip(times) {
            let elapsed = Term::bv_const(16, now.saturating_sub(itime) as u64);
            let idle_due = entry
                .idle_timeout
                .clone()
                .ne(Self::c16(0))
                .and(entry.idle_timeout.clone().ule(elapsed.clone()));
            let hard_due = entry
                .hard_timeout
                .clone()
                .ne(Self::c16(0))
                .and(entry.hard_timeout.clone().ule(elapsed.clone()));
            let idle_fired = ctx.branch("timer.idle_due", &idle_due)?;
            let hard_fired = !idle_fired && ctx.branch("timer.hard_due", &hard_due)?;
            if idle_fired || hard_fired {
                ctx.cover("timer.flow_expired");
                let notify = entry
                    .flags
                    .clone()
                    .bvand(Self::c16(flow_mod_flags::SEND_FLOW_REM))
                    .ne(Self::c16(0));
                if ctx.branch("timer.send_flow_rem", &notify)? {
                    ctx.cover("timer.flow_removed_tx");
                    ctx.emit(TraceEvent::OfReply {
                        msg_type: msg_type::FLOW_REMOVED,
                        fields: vec![
                            ("priority", entry.priority.clone()),
                            ("cookie", entry.cookie.clone()),
                        ],
                        body: SymBuf::empty(),
                    });
                }
            } else {
                keep.push(entry);
                keep_times.push(itime);
            }
        }
        self.flow_table = keep;
        self.install_times = keep_times;
        Ok(())
    }

    fn handle_set_config(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("set_config.entry");
        if msg.len() < layout::switch_config::SIZE {
            ctx.cover("set_config.bad_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let flags = msg.u16(layout::switch_config::FLAGS);
        let frag = flags.clone().bvand(Self::c16(config_flags::FRAG_MASK));
        if ctx.branch(
            "set_config.frag_normal",
            &frag.clone().eq(Self::c16(config_flags::FRAG_NORMAL)),
        )? {
            ctx.cover("set_config.frag_normal");
        } else if ctx.branch(
            "set_config.frag_drop",
            &frag.clone().eq(Self::c16(config_flags::FRAG_DROP)),
        )? {
            ctx.cover("set_config.frag_drop");
        } else {
            ctx.cover("set_config.frag_reasm");
        }
        self.config.flags = flags;
        self.config.miss_send_len = msg.u16(layout::switch_config::MISS_SEND_LEN);
        Ok(())
    }

    fn handle_stats_request(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("stats.entry");
        if msg.len() < layout::stats_request::FIXED_SIZE {
            // OVS reports framing problems.
            ctx.cover("stats.bad_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let stype = msg.u16(layout::stats_request::TYPE);
        let reply = |ctx: &mut Ctx<'_>, st: u16, body: SymBuf| {
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::STATS_REPLY,
                fields: vec![("xid", xid.clone()), ("stats_type", Self::c16(st))],
                body,
            });
        };
        if ctx.branch("stats.desc", &stype.clone().eq(Self::c16(stats_type::DESC)))? {
            ctx.cover("stats.desc");
            reply(
                ctx,
                stats_type::DESC,
                SymBuf::concrete(b"Open vSwitch 1.0.0"),
            );
            return Ok(());
        }
        if ctx.branch("stats.flow", &stype.clone().eq(Self::c16(stats_type::FLOW)))? {
            ctx.cover("stats.flow");
            if msg.len() < layout::stats_request::FIXED_SIZE + layout::stats_request::FLOW_BODY_SIZE
            {
                ctx.cover("stats.flow_bad_len");
                emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
                return Ok(());
            }
            let tid = msg.u8(layout::stats_request::FLOW_TABLE_ID);
            if ctx.branch(
                "stats.flow_all_tables",
                &tid.clone().eq(Term::bv_const(8, 0xff)),
            )? {
                ctx.cover("stats.flow_all_tables");
            } else if ctx.branch("stats.flow_table0", &tid.eq(Term::bv_const(8, 0)))? {
                ctx.cover("stats.flow_table0");
            } else {
                ctx.cover("stats.flow_bad_table");
                reply(ctx, stats_type::FLOW, SymBuf::empty());
                return Ok(());
            }
            let mut body = SymBuf::empty();
            for entry in &self.flow_table {
                body.push(entry.priority.clone().extract(15, 8));
                body.push(entry.priority.clone().extract(7, 0));
                body.push(entry.cookie.clone().extract(7, 0));
            }
            reply(ctx, stats_type::FLOW, body);
            return Ok(());
        }
        if ctx.branch(
            "stats.aggregate",
            &stype.clone().eq(Self::c16(stats_type::AGGREGATE)),
        )? {
            ctx.cover("stats.aggregate");
            if msg.len() < layout::stats_request::FIXED_SIZE + layout::stats_request::FLOW_BODY_SIZE
            {
                ctx.cover("stats.aggregate_bad_len");
                emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
                return Ok(());
            }
            let n = self.flow_table.len() as u8;
            reply(ctx, stats_type::AGGREGATE, SymBuf::concrete(&[0, 0, 0, n]));
            return Ok(());
        }
        if ctx.branch(
            "stats.table",
            &stype.clone().eq(Self::c16(stats_type::TABLE)),
        )? {
            ctx.cover("stats.table");
            reply(ctx, stats_type::TABLE, SymBuf::concrete(b"classifier"));
            return Ok(());
        }
        if ctx.branch("stats.port", &stype.clone().eq(Self::c16(stats_type::PORT)))? {
            ctx.cover("stats.port");
            let port_no = msg.u16(layout::stats_request::BODY);
            if ctx.branch(
                "stats.port_all",
                &port_no.clone().eq(Self::c16(ofpp::OFPP_NONE)),
            )? {
                ctx.cover("stats.port_all");
                reply(ctx, stats_type::PORT, SymBuf::concrete(&[4]));
                return Ok(());
            }
            for pn in 1u16..=4 {
                if ctx.branch("stats.port_scan", &port_no.clone().eq(Self::c16(pn)))? {
                    ctx.cover("stats.port_one");
                    let mut body = SymBuf::empty();
                    body.push(port_no.clone().extract(15, 8));
                    body.push(port_no.extract(7, 0));
                    reply(ctx, stats_type::PORT, body);
                    return Ok(());
                }
            }
            ctx.cover("stats.port_unknown");
            reply(ctx, stats_type::PORT, SymBuf::empty());
            return Ok(());
        }
        if ctx.branch(
            "stats.queue",
            &stype.clone().eq(Self::c16(stats_type::QUEUE)),
        )? {
            ctx.cover("stats.queue");
            reply(ctx, stats_type::QUEUE, SymBuf::empty());
            return Ok(());
        }
        if ctx.branch(
            "stats.vendor",
            &stype.clone().eq(Self::c16(stats_type::VENDOR)),
        )? {
            // OVS answers: vendor stats unsupported -> explicit error.
            ctx.cover("stats.vendor_error");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_VENDOR);
            return Ok(());
        }
        // "Open vSwitch sends an error in response to an invalid or
        // unknown request."
        ctx.cover("stats.unknown_error");
        emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_STAT);
        Ok(())
    }

    fn handle_queue_config(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("queue_cfg.entry");
        // Proper length validation (unlike the reference switch).
        if msg.len() != layout::queue_config_request::SIZE {
            ctx.cover("queue_cfg.bad_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let port = msg.u16(layout::queue_config_request::PORT);
        if ctx.branch("queue_cfg.port_zero", &port.clone().eq(Self::c16(0)))? {
            // No crash: port 0 is simply invalid.
            ctx.cover("queue_cfg.port_zero_error");
            emit_error(
                ctx,
                xid,
                error_type::QUEUE_OP_FAILED,
                queue_op_failed::BAD_PORT,
            );
            return Ok(());
        }
        if ctx.branch(
            "queue_cfg.port_special",
            &port.clone().uge(Self::c16(ofpp::OFPP_MAX)),
        )? {
            ctx.cover("queue_cfg.bad_port");
            emit_error(
                ctx,
                xid,
                error_type::QUEUE_OP_FAILED,
                queue_op_failed::BAD_PORT,
            );
            return Ok(());
        }
        ctx.cover("queue_cfg.reply");
        ctx.emit(TraceEvent::OfReply {
            msg_type: msg_type::QUEUE_GET_CONFIG_REPLY,
            fields: vec![("xid", xid), ("port", port)],
            body: SymBuf::empty(),
        });
        Ok(())
    }

    fn handle_port_mod(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("port_mod.entry");
        if msg.len() < 32 {
            ctx.cover("port_mod.bad_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let port = msg.u16(8);
        let valid = port.clone().uge(Self::c16(1)).and(port.ule(Self::c16(4)));
        if ctx.branch("port_mod.port_valid", &valid)? {
            ctx.cover("port_mod.applied");
        } else {
            ctx.cover("port_mod.bad_port");
            emit_error(ctx, xid, error_type::PORT_MOD_FAILED, 0);
        }
        Ok(())
    }
}

impl Default for OpenVSwitch {
    fn default() -> Self {
        Self::new()
    }
}

impl OpenFlowAgent for OpenVSwitch {
    fn name(&self) -> &'static str {
        "Open vSwitch"
    }

    fn universe(&self) -> CoverageUniverse {
        universe()
    }

    fn on_connect(&mut self, ctx: &mut Ctx<'_>) -> AgentResult {
        for block in INIT_BLOCKS {
            ctx.cover(block);
        }
        let ok = ctx.branch(
            "init.version_negotiated",
            &Term::bv_const(8, 1).ule(Term::bv_const(8, OFP_VERSION as u64)),
        )?;
        debug_assert!(ok);
        for site in INIT_BRANCHES_BOTH {
            ctx.branch(site, &Term::bool_true())?;
            ctx.branch(site, &Term::bool_false())?;
        }
        for site in INIT_BRANCHES_ONE {
            ctx.branch(site, &Term::bool_true())?;
        }
        Ok(())
    }

    fn handle_message(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf) -> AgentResult {
        ctx.cover("rx.message");
        let ver = msg.u8(layout::header::VERSION);
        let xid = msg.u32(layout::header::XID);
        if !ctx.branch(
            "hdr.version_ok",
            &ver.eq(Term::bv_const(8, OFP_VERSION as u64)),
        )? {
            ctx.cover("hdr.bad_version");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_VERSION);
            return Ok(());
        }
        let len_field = msg.u16(layout::header::LENGTH);
        if ctx.branch("hdr.len_runt", &len_field.clone().ult(Self::c16(8)))? {
            ctx.cover("hdr.len_runt");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        if !ctx.branch(
            "hdr.len_matches",
            &len_field.eq(Self::c16(msg.len() as u16)),
        )? {
            ctx.cover("hdr.incomplete_frame");
            return Ok(());
        }
        let t = msg.u8(layout::header::TYPE);
        let is = |v: u8| t.clone().eq(Term::bv_const(8, v as u64));
        if ctx.branch("dispatch.hello", &is(msg_type::HELLO))? {
            ctx.cover("dispatch.hello");
            return Ok(());
        }
        if ctx.branch("dispatch.echo_request", &is(msg_type::ECHO_REQUEST))? {
            ctx.cover("dispatch.echo_request");
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::ECHO_REPLY,
                fields: vec![("xid", xid)],
                body: msg.slice(8, msg.len() - 8),
            });
            return Ok(());
        }
        if ctx.branch("dispatch.features_request", &is(msg_type::FEATURES_REQUEST))? {
            ctx.cover("dispatch.features_request");
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::FEATURES_REPLY,
                fields: vec![
                    ("xid", xid),
                    ("datapath_id", Term::bv_const(64, 0x1)),
                    ("n_buffers", Term::bv_const(32, 256)),
                    ("n_tables", Term::bv_const(8, 1)),
                ],
                body: SymBuf::empty(),
            });
            return Ok(());
        }
        if ctx.branch("dispatch.get_config", &is(msg_type::GET_CONFIG_REQUEST))? {
            ctx.cover("dispatch.get_config");
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::GET_CONFIG_REPLY,
                fields: vec![
                    ("xid", xid),
                    ("flags", self.config.flags.clone()),
                    ("miss_send_len", self.config.miss_send_len.clone()),
                ],
                body: SymBuf::empty(),
            });
            return Ok(());
        }
        if ctx.branch("dispatch.set_config", &is(msg_type::SET_CONFIG))? {
            return self.handle_set_config(ctx, msg, xid);
        }
        if ctx.branch("dispatch.packet_out", &is(msg_type::PACKET_OUT))? {
            return self.handle_packet_out(ctx, msg, xid);
        }
        if ctx.branch("dispatch.flow_mod", &is(msg_type::FLOW_MOD))? {
            return self.handle_flow_mod(ctx, msg, xid);
        }
        if ctx.branch("dispatch.stats_request", &is(msg_type::STATS_REQUEST))? {
            return self.handle_stats_request(ctx, msg, xid);
        }
        if ctx.branch("dispatch.barrier", &is(msg_type::BARRIER_REQUEST))? {
            ctx.cover("dispatch.barrier");
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::BARRIER_REPLY,
                fields: vec![("xid", xid)],
                body: SymBuf::empty(),
            });
            return Ok(());
        }
        if ctx.branch(
            "dispatch.queue_config",
            &is(msg_type::QUEUE_GET_CONFIG_REQUEST),
        )? {
            return self.handle_queue_config(ctx, msg, xid);
        }
        if ctx.branch("dispatch.port_mod", &is(msg_type::PORT_MOD))? {
            return self.handle_port_mod(ctx, msg, xid);
        }
        if ctx.branch("dispatch.vendor", &is(msg_type::VENDOR))? {
            ctx.cover("dispatch.vendor");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_VENDOR);
            return Ok(());
        }
        if ctx.branch("dispatch.echo_reply", &is(msg_type::ECHO_REPLY))? {
            ctx.cover("dispatch.echo_reply");
            return Ok(());
        }
        ctx.cover("dispatch.unknown_type");
        emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_TYPE);
        Ok(())
    }

    fn handle_packet(&mut self, ctx: &mut Ctx<'_>, in_port: u16, pkt: &Packet) -> AgentResult {
        ctx.cover("rx.packet");
        let pkt = crate::common::classify_packet(ctx, pkt)?;
        let in_port = Self::c16(in_port);
        self.lookup_and_forward(ctx, &pkt, &in_port)
    }

    fn handle_time(&mut self, ctx: &mut Ctx<'_>, now: u16) -> AgentResult {
        self.expire_flows(ctx, now)
    }
}

/// Initialization blocks covered by every connection.
const INIT_BLOCKS: [&str; 42] = [
    "init.switch_features_cache",
    "init.port_status_baseline",
    "init.dpif_recv_purge",
    "init.cfg_read",
    "init.cfg_validate",
    "init.dpif_probe",
    "init.dpif_flush",
    "init.port_enumerate",
    "init.port_flags",
    "init.dp_id_derive",
    "init.listener_bind",
    "init.backoff_reset",
    "init.epoll_register",
    "init.time_init",
    "init.vconn_open",
    "init.vconn_negotiate",
    "init.flow_cache_init",
    "init.datapath_features",
    "init.status_init",
    "init.secchan_setup",
    "init.in_band_rules",
    "init.discovery_skip",
    "init.switch_status_register",
    "init.wdp_open",
    "init.bridge_create",
    "init.dpif_open",
    "init.ports_attach",
    "init.classifier_init",
    "init.rconn_create",
    "init.rconn_connect",
    "init.hello_tx",
    "init.hello_rx",
    "init.version_negotiation",
    "init.features_prepare",
    "init.config_defaults",
    "init.buffers_init",
    "init.poll_loop",
    "init.stream_open",
    "init.ofproto_create",
    "init.netflow_defaults",
    "init.mac_learning_init",
    "init.mirror_defaults",
];

/// Init-time branch sites whose both directions are exercised during
/// connection setup.
const INIT_BRANCHES_BOTH: [&str; 15] = [
    "init.port_feature_probe",
    "init.more_ports",
    "init.retry_connect",
    "init.rx_pending",
    "init.tx_pending",
    "init.poll_again",
    "init.buffer_scan",
    "init.port_is_last",
    "init.cfg_has_next",
    "init.dpif_more_flows",
    "init.vconn_backlog",
    "init.status_more",
    "init.in_band_active",
    "init.cache_scan",
    "init.feature_probe",
];

/// Init-time branch sites exercised in one direction only.
const INIT_BRANCHES_ONE: [&str; 6] = [
    "init.rx_queue_nonempty",
    "init.hello_is_first",
    "init.socket_ok",
    "init.table_empty",
    "init.discovery_disabled",
    "init.secchan_ready",
];

/// Blocks present in the binary but unreachable from OpenFlow processing.
/// OVS carries noticeably more such code than the reference switch
/// (management protocols, database bindings, bonding, mirroring), which is
/// why its per-test percentages in Table 4 sit lower.
const UNREACHABLE_BLOCKS: [&str; 52] = [
    "cli.parse_args",
    "cli.usage",
    "cli.version_banner",
    "cli.db_path_arg",
    "cli.fail_mode_arg",
    "cli.listen_arg",
    "cli.monitor_arg",
    "cli.daemonize",
    "cli.pidfile",
    "vlog.init",
    "vlog.set_levels",
    "vlog.rotate",
    "vlog.facility_parse",
    "cleanup.bridge_destroy",
    "cleanup.dpif_close",
    "cleanup.ports_detach",
    "cleanup.rconn_destroy",
    "cleanup.buffers_free",
    "cleanup.signal_handler",
    "ovsdb.connect",
    "ovsdb.monitor",
    "ovsdb.transact",
    "ovsdb.reconnect",
    "bond.rebalance",
    "bond.lacp_rx",
    "bond.slave_enable",
    "mirror.configure",
    "mirror.output",
    "netflow.export",
    "netflow.expire",
    "sflow.sample",
    "sflow.poll",
    "qos.configure",
    "qos.stats",
    "stp.tick",
    "stp.bpdu_rx",
    "mgmt.snoop_open",
    "mgmt.controller_discovery",
    "fail.open_mode",
    "fail.closed_mode",
    "timer.idle_expire",
    "timer.hard_expire",
    "timer.flow_removed_tx",
    "timer.echo_keepalive",
    "timer.mac_aging",
    "unixctl.server_init",
    "unixctl.command_register",
    "netdev.ethtool_ioctl",
    "netdev.carrier_watch",
    "netdev.mtu_config",
    "dead.compat_odp",
    "dead.tun_header",
];

/// Branch sites unreachable from OpenFlow-driven tests.
const UNREACHABLE_BRANCH_SITES: [&str; 16] = [
    "cli.has_args",
    "cli.arg_is_flag",
    "vlog.level_gate",
    "ovsdb.is_connected",
    "bond.is_active",
    "mirror.is_configured",
    "netflow.is_enabled",
    "sflow.is_enabled",
    "timer.idle_due",
    "timer.hard_due",
    "timer.echo_due",
    "timer.mac_age_due",
    "fail.mode_is_open",
    "cleanup.has_pending",
    "netdev.is_up",
    "unixctl.has_client",
];

/// The coverage universe of the Open vSwitch model.
pub fn universe() -> CoverageUniverse {
    let mut blocks: Vec<&'static str> = crate::universe_data::OVS_BLOCKS.to_vec();
    blocks.extend(INIT_BLOCKS);
    blocks.extend(UNREACHABLE_BLOCKS);
    blocks.sort_unstable();
    blocks.dedup();
    let mut sites: Vec<&'static str> = crate::universe_data::OVS_BRANCH_SITES.to_vec();
    sites.extend(INIT_BRANCHES_BOTH);
    sites.extend(INIT_BRANCHES_ONE);
    sites.extend(UNREACHABLE_BRANCH_SITES);
    sites.sort_unstable();
    sites.dedup();
    CoverageUniverse {
        blocks,
        branch_sites: sites,
    }
}
