//! The "Modified Switch" of §5.1.1.
//!
//! Two team members injected seven behaviour changes into the Reference
//! Switch; SOFT pinpointed five, missing the Hello-handshake change (the
//! harness completes a correct handshake before testing begins) and the
//! timeout-driven change (the engine cannot trigger timers). The
//! modifications themselves live in [`crate::reference::Mutations`]; this
//! module just instantiates the reference model with all of them enabled.

use crate::reference::{Mutations, ReferenceSwitch};

/// The reference switch with all seven §5.1.1 modifications enabled.
pub fn modified_switch() -> ReferenceSwitch {
    ReferenceSwitch::with_mutations(Mutations::all_injected())
}

/// The reference switch with a single injected Rust *panic* on the
/// unbuffered branch of the Packet Out handler — a fault-injection
/// subject for SOFT's failure containment: one branch of one symbolic
/// path unwinds instead of returning, and the engine must record a crash
/// output and finish the exploration (deterministically, at any worker
/// count) rather than aborting.
pub fn panicky_switch() -> ReferenceSwitch {
    ReferenceSwitch::with_mutations(Mutations {
        panic_on_unbuffered_packet_out: true,
        ..Mutations::default()
    })
}

/// How many of the injected modifications SOFT can observe at the OpenFlow
/// interface (used by the `injected_faults` example and its tests).
pub const DETECTABLE_MUTATIONS: usize = 5;

/// Total number of injected modifications.
pub const TOTAL_MUTATIONS: usize = 7;
