//! Behavioural model of the OpenFlow 1.0 *Reference Switch* (the userspace
//! switch released with spec v1.0.0; 55K LoC of C in the paper).
//!
//! The model reproduces the interface-level behaviour SOFT observed,
//! including the defects §5.1.2 documents:
//!
//! - **Crashes**: Packet Out with output port `OFPP_CONTROLLER`; executing a
//!   `SET_VLAN_VID` action in the Packet Out path; a queue-config request
//!   for port 0.
//! - **Swallowed errors**: a nonexistent `buffer_id` and unknown/unsupported
//!   statistics requests produce an error in the handler that is never
//!   propagated as an OpenFlow message.
//! - **No strict field validation**: VLAN id / ToS / vlan_pcp arguments are
//!   auto-masked to their field widths rather than validated.
//! - **No max-port validation**; instead an `in_port == out_port` check on
//!   flow installation.
//! - **Emergency flow entries supported**; `OFPP_NORMAL` unsupported.
//!
//! The same code also hosts the *Modified Switch* of §5.1.1: seven injected
//! behaviour changes behind [`Mutations`] flags, five observable through the
//! OpenFlow interface and two structurally invisible to SOFT (a Hello-
//! handshake change and a timer-dependent change).

use crate::agent::OpenFlowAgent;
use crate::common::{emit_error, fork_truncation, ActionSlot, AgentResult, Ctx, SwitchConfig};
use soft_dataplane::{FlowEntry, MatchFields, Packet};
use soft_openflow::consts::{
    action as act, bad_action, bad_request, config_flags, error_type, flow_mod_cmd, flow_mod_flags,
    msg_type, port as ofpp, queue_op_failed, stats_type, wildcards, NO_BUFFER, OFP_VERSION,
};
use soft_openflow::layout;
use soft_protocol::TraceEvent;
use soft_smt::Term;
use soft_sym::{CoverageUniverse, Stop, SymBuf};

/// The §5.1.1 injected behaviour changes ("Modified Switch").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mutations {
    /// M1 — during connection setup, reply Hello with a tweaked version.
    /// SOFT misses this: the harness completes a correct handshake before
    /// testing ("it establishes a correct connection first and then
    /// performs the tests").
    pub hello_version_quirk: bool,
    /// M2 — do not send Flow Removed when an *idle timeout* fires. SOFT
    /// misses this: the engine cannot trigger timers.
    pub no_flow_removed_on_idle_timeout: bool,
    /// M3 — flood includes the ingress port.
    pub flood_includes_ingress: bool,
    /// M4 — reject output ports greater than 1024 with an error.
    pub max_port_1024: bool,
    /// M5 — report unknown action types as `OFPBAC_BAD_LEN` instead of
    /// `OFPBAC_BAD_TYPE`.
    pub unknown_action_bad_len: bool,
    /// M6 — silently ignore TABLE statistics requests.
    pub ignore_table_stats: bool,
    /// M7 — a MODIFY that matches nothing does *not* fall back to ADD.
    pub modify_without_add: bool,
    /// Fault injection for the failure-containment tests (not one of the
    /// §5.1.1 modifications): `panic!` on the unbuffered branch of Packet
    /// Out, modeling an agent bug that unwinds in Rust instead of
    /// returning [`Stop::Crash`]. Exactly one branch of one symbolic path
    /// blows up; the engine must record it as a crash output and keep
    /// exploring.
    pub panic_on_unbuffered_packet_out: bool,
}

impl Mutations {
    /// All seven §5.1.1 modifications enabled.
    pub fn all_injected() -> Mutations {
        Mutations {
            hello_version_quirk: true,
            no_flow_removed_on_idle_timeout: true,
            flood_includes_ingress: true,
            max_port_1024: true,
            unknown_action_bad_len: true,
            ignore_table_stats: true,
            modify_without_add: true,
            panic_on_unbuffered_packet_out: false,
        }
    }
}

/// Where an action list is being executed from; the Reference Switch's
/// crash bugs live only in the Packet Out execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecOrigin {
    PacketOut,
    Probe,
}

/// Outcome of action-list validation.
enum Validation {
    Ok,
    Error(u16, u16),
}

/// The Reference Switch model.
pub struct ReferenceSwitch {
    muts: Mutations,
    flow_table: Vec<FlowEntry>,
    emerg_table: Vec<FlowEntry>,
    config: SwitchConfig,
    next_buffer_id: u32,
    name: &'static str,
    /// Virtual clock (seconds since connect) and per-entry install times,
    /// index-aligned with `flow_table`. Used by the time extension.
    now: u16,
    install_times: Vec<u16>,
}

impl ReferenceSwitch {
    /// A pristine reference switch.
    pub fn new() -> ReferenceSwitch {
        ReferenceSwitch {
            muts: Mutations::default(),
            flow_table: Vec::new(),
            emerg_table: Vec::new(),
            config: SwitchConfig::default(),
            next_buffer_id: 1,
            name: "Reference Switch",
            now: 0,
            install_times: Vec::new(),
        }
    }

    /// The reference switch with injected modifications (§5.1.1).
    pub fn with_mutations(muts: Mutations) -> ReferenceSwitch {
        ReferenceSwitch {
            muts,
            name: "Modified Switch",
            ..ReferenceSwitch::new()
        }
    }

    fn c16(v: u16) -> Term {
        Term::bv_const(16, v as u64)
    }

    // ------------------------------------------------------------ handlers

    fn handle_packet_out(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("packet_out.entry");
        if msg.len() < layout::packet_out::FIXED_SIZE {
            ctx.cover("packet_out.too_short");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let buffer_id = msg.u32(layout::packet_out::BUFFER_ID);
        let in_port = msg.u16(layout::packet_out::IN_PORT);
        let actions_len = ctx.concretize(&msg.u16(layout::packet_out::ACTIONS_LEN))? as usize;
        if layout::packet_out::FIXED_SIZE + actions_len > msg.len()
            || !actions_len.is_multiple_of(layout::action::BASE_SIZE)
        {
            ctx.cover("packet_out.bad_actions_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let n_actions = actions_len / layout::action::BASE_SIZE;

        // Reference ordering: resolve the buffer BEFORE validating actions.
        // The buffer-unknown error is generated internally but never
        // propagated as an OpenFlow message (§5.1.2 "Lack of error
        // messages"), so the whole message is silently dropped.
        if !ctx.branch(
            "packet_out.no_buffer",
            &buffer_id.eq(Term::bv_const(32, NO_BUFFER as u64)),
        )? {
            ctx.cover("packet_out.buffer_unknown_swallowed");
            return Ok(());
        }
        ctx.cover("packet_out.unbuffered");
        if self.muts.panic_on_unbuffered_packet_out {
            panic!("injected fault: unbuffered Packet Out");
        }

        match self.validate_actions(ctx, msg, layout::packet_out::ACTIONS, n_actions, None)? {
            Validation::Error(t, c) => {
                ctx.cover("packet_out.validation_error");
                emit_error(ctx, xid, t, c);
                return Ok(());
            }
            Validation::Ok => {}
        }

        let data_off = layout::packet_out::FIXED_SIZE + actions_len;
        let data = msg.slice(data_off, msg.len() - data_off);
        let Some(mut pkt) = Packet::parse(&data) else {
            ctx.cover("packet_out.opaque_payload");
            return Ok(());
        };
        ctx.cover("packet_out.execute");
        self.execute_actions(
            ctx,
            msg,
            layout::packet_out::ACTIONS,
            n_actions,
            &mut pkt,
            &in_port,
            ExecOrigin::PacketOut,
        )
    }

    /// Validate an action list; `flow_ctx` carries the match when the list
    /// belongs to a Flow Mod (enables the in_port == out_port check).
    fn validate_actions(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &SymBuf,
        off: usize,
        n: usize,
        flow_ctx: Option<&MatchFields>,
    ) -> Result<Validation, Stop> {
        for i in 0..n {
            let slot = ActionSlot::at(msg, off + i * layout::action::BASE_SIZE);
            let at = slot.atype();
            if ctx.branch("val.output", &at.clone().eq(Self::c16(act::OUTPUT)))? {
                ctx.cover("val.output");
                let p = slot.output_port();
                if ctx.branch("val.port_zero", &p.clone().eq(Self::c16(0)))? {
                    ctx.cover("val.port_zero");
                    return Ok(Validation::Error(
                        error_type::BAD_ACTION,
                        bad_action::BAD_OUT_PORT,
                    ));
                }
                if ctx.branch("val.port_none", &p.clone().eq(Self::c16(ofpp::OFPP_NONE)))? {
                    ctx.cover("val.port_none");
                    return Ok(Validation::Error(
                        error_type::BAD_ACTION,
                        bad_action::BAD_OUT_PORT,
                    ));
                }
                // Purely an OpenFlow switch: the traditional forwarding
                // path is not implemented (§5.1.2 "Missing features").
                if ctx.branch(
                    "val.port_normal",
                    &p.clone().eq(Self::c16(ofpp::OFPP_NORMAL)),
                )? {
                    ctx.cover("val.port_normal_unsupported");
                    return Ok(Validation::Error(
                        error_type::BAD_ACTION,
                        bad_action::BAD_OUT_PORT,
                    ));
                }
                if let Some(mf) = flow_ctx {
                    // OFPP_TABLE is only legal in Packet Out messages.
                    if ctx.branch(
                        "val.port_table_in_flow",
                        &p.clone().eq(Self::c16(ofpp::OFPP_TABLE)),
                    )? {
                        ctx.cover("val.port_table_in_flow");
                        return Ok(Validation::Error(
                            error_type::BAD_ACTION,
                            bad_action::BAD_OUT_PORT,
                        ));
                    }
                    // "when the ingress port in the match is equal to the
                    // output port, the Reference Switch returns an error, as
                    // no packets will ever be forwarded to this port."
                    let cond = mf
                        .wc_bit(wildcards::IN_PORT)
                        .not()
                        .and(p.clone().eq(mf.in_port.clone()));
                    if ctx.branch("val.out_eq_match_in_port", &cond)? {
                        ctx.cover("val.out_eq_match_in_port");
                        return Ok(Validation::Error(
                            error_type::BAD_ACTION,
                            bad_action::BAD_OUT_PORT,
                        ));
                    }
                }
                // M4: injected max-port validation.
                if self.muts.max_port_1024 {
                    let cond = p
                        .clone()
                        .ugt(Self::c16(1024))
                        .and(p.clone().ult(Self::c16(ofpp::OFPP_IN_PORT)));
                    if ctx.branch("val.mut_max_port", &cond)? {
                        ctx.cover("val.mut_max_port");
                        return Ok(Validation::Error(
                            error_type::BAD_ACTION,
                            bad_action::BAD_OUT_PORT,
                        ));
                    }
                }
                // No validation of the maximum physical port number
                // ("Reference Switch does not validate ports this way").
                continue;
            }
            // The set-field actions pass validation unconditionally: the
            // Reference Switch "does not validate values of the
            // aforementioned fields, but automatically modifies them to fit
            // the expected format."
            if ctx.branch(
                "val.set_vlan_vid",
                &at.clone().eq(Self::c16(act::SET_VLAN_VID)),
            )? {
                ctx.cover("val.set_vlan_vid");
                continue;
            }
            if ctx.branch(
                "val.set_vlan_pcp",
                &at.clone().eq(Self::c16(act::SET_VLAN_PCP)),
            )? {
                ctx.cover("val.set_vlan_pcp");
                continue;
            }
            if ctx.branch("val.strip_vlan", &at.clone().eq(Self::c16(act::STRIP_VLAN)))? {
                ctx.cover("val.strip_vlan");
                continue;
            }
            if ctx.branch(
                "val.set_dl",
                &at.clone()
                    .eq(Self::c16(act::SET_DL_SRC))
                    .or(at.clone().eq(Self::c16(act::SET_DL_DST))),
            )? {
                ctx.cover("val.set_dl");
                continue;
            }
            if ctx.branch(
                "val.set_nw",
                &at.clone()
                    .eq(Self::c16(act::SET_NW_SRC))
                    .or(at.clone().eq(Self::c16(act::SET_NW_DST))),
            )? {
                ctx.cover("val.set_nw");
                continue;
            }
            if ctx.branch("val.set_nw_tos", &at.clone().eq(Self::c16(act::SET_NW_TOS)))? {
                ctx.cover("val.set_nw_tos");
                continue;
            }
            if ctx.branch(
                "val.set_tp",
                &at.clone()
                    .eq(Self::c16(act::SET_TP_SRC))
                    .or(at.clone().eq(Self::c16(act::SET_TP_DST))),
            )? {
                ctx.cover("val.set_tp");
                continue;
            }
            if ctx.branch("val.enqueue", &at.clone().eq(Self::c16(act::ENQUEUE)))? {
                // An enqueue action needs a 16-byte body; our 8-byte slot
                // has the wrong length.
                ctx.cover("val.enqueue_bad_len");
                return Ok(Validation::Error(
                    error_type::BAD_ACTION,
                    bad_action::BAD_LEN,
                ));
            }
            if ctx.branch("val.vendor", &at.clone().eq(Self::c16(act::VENDOR)))? {
                ctx.cover("val.vendor");
                return Ok(Validation::Error(
                    error_type::BAD_ACTION,
                    bad_action::BAD_VENDOR,
                ));
            }
            ctx.cover("val.unknown_type");
            let code = if self.muts.unknown_action_bad_len {
                bad_action::BAD_LEN // M5
            } else {
                bad_action::BAD_TYPE
            };
            return Ok(Validation::Error(error_type::BAD_ACTION, code));
        }
        Ok(Validation::Ok)
    }

    /// Execute a validated action list against `pkt`.
    #[allow(clippy::too_many_arguments)]
    fn execute_actions(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &SymBuf,
        off: usize,
        n: usize,
        pkt: &mut Packet,
        in_port: &Term,
        origin: ExecOrigin,
    ) -> AgentResult {
        for i in 0..n {
            let slot = ActionSlot::at(msg, off + i * layout::action::BASE_SIZE);
            let at = slot.atype();
            if ctx.branch("exec.output", &at.clone().eq(Self::c16(act::OUTPUT)))? {
                ctx.cover("exec.output");
                self.exec_output(ctx, &slot, pkt, in_port, origin)?;
                continue;
            }
            if ctx.branch(
                "exec.set_vlan_vid",
                &at.clone().eq(Self::c16(act::SET_VLAN_VID)),
            )? {
                if origin == ExecOrigin::PacketOut {
                    // Crash #2 of §5.1.2: "when the agent executes an action
                    // setting the vlan field in a Packet Out message ... the
                    // agent crashes."
                    ctx.cover("exec.set_vlan_vid_crash");
                    return Err(Stop::crash(
                        "reference: segfault executing SET_VLAN_VID in packet-out path",
                    ));
                }
                ctx.cover("exec.set_vlan_vid");
                pkt.set_vlan_vid(&slot.vlan_vid(), true);
                continue;
            }
            if ctx.branch(
                "exec.set_vlan_pcp",
                &at.clone().eq(Self::c16(act::SET_VLAN_PCP)),
            )? {
                ctx.cover("exec.set_vlan_pcp");
                pkt.set_vlan_pcp(&slot.vlan_pcp(), true);
                continue;
            }
            if ctx.branch(
                "exec.strip_vlan",
                &at.clone().eq(Self::c16(act::STRIP_VLAN)),
            )? {
                ctx.cover("exec.strip_vlan");
                pkt.strip_vlan();
                continue;
            }
            if ctx.branch(
                "exec.set_dl_src",
                &at.clone().eq(Self::c16(act::SET_DL_SRC)),
            )? {
                ctx.cover("exec.set_dl_src");
                pkt.set_dl_src(&slot.dl_addr());
                continue;
            }
            if ctx.branch(
                "exec.set_dl_dst",
                &at.clone().eq(Self::c16(act::SET_DL_DST)),
            )? {
                ctx.cover("exec.set_dl_dst");
                pkt.set_dl_dst(&slot.dl_addr());
                continue;
            }
            if ctx.branch(
                "exec.set_nw_src",
                &at.clone().eq(Self::c16(act::SET_NW_SRC)),
            )? {
                ctx.cover("exec.set_nw_src");
                pkt.set_nw_src(&slot.nw_addr());
                continue;
            }
            if ctx.branch(
                "exec.set_nw_dst",
                &at.clone().eq(Self::c16(act::SET_NW_DST)),
            )? {
                ctx.cover("exec.set_nw_dst");
                pkt.set_nw_dst(&slot.nw_addr());
                continue;
            }
            if ctx.branch(
                "exec.set_nw_tos",
                &at.clone().eq(Self::c16(act::SET_NW_TOS)),
            )? {
                // Auto-masked to the DSCP bits, never validated.
                ctx.cover("exec.set_nw_tos");
                pkt.set_nw_tos(&slot.nw_tos(), true);
                continue;
            }
            if ctx.branch(
                "exec.set_tp_src",
                &at.clone().eq(Self::c16(act::SET_TP_SRC)),
            )? {
                ctx.cover("exec.set_tp_src");
                pkt.set_tp_src(&slot.tp_port());
                continue;
            }
            if ctx.branch(
                "exec.set_tp_dst",
                &at.clone().eq(Self::c16(act::SET_TP_DST)),
            )? {
                ctx.cover("exec.set_tp_dst");
                pkt.set_tp_dst(&slot.tp_port());
                continue;
            }
            // Validation guarantees no other type reaches execution; the
            // final feasibility checks above prune everything else.
        }
        Ok(())
    }

    fn exec_output(
        &mut self,
        ctx: &mut Ctx<'_>,
        slot: &ActionSlot,
        pkt: &mut Packet,
        in_port: &Term,
        origin: ExecOrigin,
    ) -> AgentResult {
        let p = slot.output_port();
        if ctx.branch("out.in_port", &p.clone().eq(Self::c16(ofpp::OFPP_IN_PORT)))? {
            ctx.cover("out.in_port");
            ctx.emit(TraceEvent::DataPlaneTx {
                port: in_port.clone(),
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch("out.table", &p.clone().eq(Self::c16(ofpp::OFPP_TABLE)))? {
            ctx.cover("out.table");
            if origin == ExecOrigin::PacketOut {
                let pkt2 = pkt.clone();
                self.lookup_and_forward(ctx, &pkt2, in_port)?;
            }
            return Ok(());
        }
        if ctx.branch("out.flood", &p.clone().eq(Self::c16(ofpp::OFPP_FLOOD)))? {
            ctx.cover("out.flood");
            ctx.emit(TraceEvent::Flood {
                exclude_ingress: !self.muts.flood_includes_ingress, // M3
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch("out.all", &p.clone().eq(Self::c16(ofpp::OFPP_ALL)))? {
            ctx.cover("out.all");
            ctx.emit(TraceEvent::Flood {
                exclude_ingress: true,
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch(
            "out.controller",
            &p.clone().eq(Self::c16(ofpp::OFPP_CONTROLLER)),
        )? {
            if origin == ExecOrigin::PacketOut {
                // Crash #1 of §5.1.2: Packet Out with output port
                // OFPP_CONTROLLER terminates the agent.
                ctx.cover("out.controller_crash");
                return Err(Stop::crash(
                    "reference: crash on Packet Out to OFPP_CONTROLLER",
                ));
            }
            ctx.cover("out.controller");
            // The data length is min(max_len, len): carried symbolically in
            // the event rather than forked per byte (the send path adjusts
            // a length field; it does not copy byte-by-byte).
            let max_len = slot.output_max_len();
            let plen = Term::bv_const(16, pkt.len() as u64);
            let data_len = Term::ite_bv(max_len.clone().ult(plen.clone()), max_len, plen);
            let id = self.next_buffer_id;
            self.next_buffer_id += 1;
            ctx.emit(TraceEvent::PacketIn {
                buffer_id: Term::bv_const(32, id as u64),
                in_port: in_port.clone(),
                reason: Term::bv_const(8, soft_openflow::consts::packet_in_reason::ACTION as u64),
                data_len,
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        if ctx.branch("out.local", &p.clone().eq(Self::c16(ofpp::OFPP_LOCAL)))? {
            ctx.cover("out.local");
            ctx.emit(TraceEvent::DataPlaneTx {
                port: Self::c16(ofpp::OFPP_LOCAL),
                data: pkt.buf.clone(),
            });
            return Ok(());
        }
        // A plain port number. No maximum-port validation: anything that is
        // not a special constant is forwarded — except back out the ingress
        // port, which the datapath silently skips.
        if ctx.branch("out.eq_ingress", &p.clone().eq(in_port.clone()))? {
            ctx.cover("out.drop_ingress");
            return Ok(());
        }
        ctx.cover("out.tx_port");
        ctx.emit(TraceEvent::DataPlaneTx {
            port: p,
            data: pkt.buf.clone(),
        });
        Ok(())
    }

    fn lookup_and_forward(
        &mut self,
        ctx: &mut Ctx<'_>,
        pkt: &Packet,
        in_port: &Term,
    ) -> AgentResult {
        ctx.cover("lookup.entry");
        let mut best: Option<usize> = None;
        let table = self.flow_table.clone();
        for (idx, entry) in table.iter().enumerate() {
            let mut all = true;
            for (label, cond) in entry.fields.conditions(in_port, pkt) {
                if !ctx.branch(label, &cond)? {
                    all = false;
                    break;
                }
            }
            if !all {
                continue;
            }
            best = match best {
                None => Some(idx),
                Some(b) => {
                    if ctx.branch(
                        "lookup.priority_gt",
                        &entry.priority.clone().ugt(table[b].priority.clone()),
                    )? {
                        Some(idx)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        match best {
            Some(idx) => {
                ctx.cover("lookup.hit");
                let entry = table[idx].clone();
                let n = entry.actions.len() / layout::action::BASE_SIZE;
                let mut p = pkt.clone();
                self.execute_actions(
                    ctx,
                    &entry.actions,
                    0,
                    n,
                    &mut p,
                    in_port,
                    ExecOrigin::Probe,
                )
            }
            None => {
                ctx.cover("lookup.miss");
                self.packet_in_miss(ctx, pkt, in_port)
            }
        }
    }

    fn packet_in_miss(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet, in_port: &Term) -> AgentResult {
        ctx.cover("packet_in.miss");
        let msl = self.config.miss_send_len.clone();
        let n = fork_truncation(ctx, "packet_in.trunc", &msl, pkt.len())?;
        let id = self.next_buffer_id;
        self.next_buffer_id += 1;
        ctx.emit(TraceEvent::PacketIn {
            buffer_id: Term::bv_const(32, id as u64),
            in_port: in_port.clone(),
            reason: Term::bv_const(8, soft_openflow::consts::packet_in_reason::NO_MATCH as u64),
            data_len: Term::bv_const(16, n as u64),
            data: pkt.truncated(n),
        });
        Ok(())
    }

    fn handle_flow_mod(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("flow_mod.entry");
        if msg.len() < layout::flow_mod::FIXED_SIZE
            || !(msg.len() - layout::flow_mod::FIXED_SIZE).is_multiple_of(layout::action::BASE_SIZE)
        {
            ctx.cover("flow_mod.bad_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let mf = MatchFields::parse(msg, layout::flow_mod::MATCH);
        let cmd = msg.u16(layout::flow_mod::COMMAND);
        if ctx.branch(
            "flow_mod.cmd_add",
            &cmd.clone().eq(Self::c16(flow_mod_cmd::ADD)),
        )? {
            ctx.cover("flow_mod.add");
            return self.flow_add(ctx, msg, xid, mf);
        }
        if ctx.branch(
            "flow_mod.cmd_modify",
            &cmd.clone()
                .eq(Self::c16(flow_mod_cmd::MODIFY))
                .or(cmd.clone().eq(Self::c16(flow_mod_cmd::MODIFY_STRICT))),
        )? {
            ctx.cover("flow_mod.modify");
            return self.flow_modify(ctx, msg, xid, mf);
        }
        if ctx.branch(
            "flow_mod.cmd_delete",
            &cmd.clone()
                .eq(Self::c16(flow_mod_cmd::DELETE))
                .or(cmd.clone().eq(Self::c16(flow_mod_cmd::DELETE_STRICT))),
        )? {
            ctx.cover("flow_mod.delete");
            return self.flow_delete(ctx, msg, mf);
        }
        ctx.cover("flow_mod.bad_command");
        emit_error(
            ctx,
            xid,
            error_type::FLOW_MOD_FAILED,
            soft_openflow::consts::flow_mod_failed::BAD_COMMAND,
        );
        Ok(())
    }

    fn entry_from_msg(msg: &SymBuf, mf: MatchFields, emergency: bool) -> FlowEntry {
        let actions = msg.slice(
            layout::flow_mod::ACTIONS,
            msg.len() - layout::flow_mod::ACTIONS,
        );
        FlowEntry {
            fields: mf,
            priority: msg.u16(layout::flow_mod::PRIORITY),
            actions,
            cookie: msg.u32(layout::flow_mod::COOKIE + 4),
            idle_timeout: msg.u16(layout::flow_mod::IDLE_TIMEOUT),
            hard_timeout: msg.u16(layout::flow_mod::HARD_TIMEOUT),
            flags: msg.u16(layout::flow_mod::FLAGS),
            emergency,
        }
    }

    fn flow_add(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &SymBuf,
        xid: Term,
        mf: MatchFields,
    ) -> AgentResult {
        let n = (msg.len() - layout::flow_mod::ACTIONS) / layout::action::BASE_SIZE;
        match self.validate_actions(ctx, msg, layout::flow_mod::ACTIONS, n, Some(&mf))? {
            Validation::Error(t, c) => {
                ctx.cover("flow_mod.validation_error");
                emit_error(ctx, xid, t, c);
                return Ok(());
            }
            Validation::Ok => {}
        }
        let flags = msg.u16(layout::flow_mod::FLAGS);
        // Emergency entries: supported by the reference switch (§5.1.2
        // "Missing features" — it is Open vSwitch that lacks them).
        let emerg_cond = flags
            .clone()
            .bvand(Self::c16(flow_mod_flags::EMERG))
            .ne(Self::c16(0));
        if ctx.branch("flow_mod.emerg", &emerg_cond)? {
            ctx.cover("flow_mod.emerg");
            let idle = msg.u16(layout::flow_mod::IDLE_TIMEOUT);
            let hard = msg.u16(layout::flow_mod::HARD_TIMEOUT);
            let nonzero = idle.ne(Self::c16(0)).or(hard.ne(Self::c16(0)));
            if ctx.branch("flow_mod.emerg_timeout", &nonzero)? {
                ctx.cover("flow_mod.emerg_bad_timeout");
                emit_error(
                    ctx,
                    xid,
                    error_type::FLOW_MOD_FAILED,
                    soft_openflow::consts::flow_mod_failed::BAD_EMERG_TIMEOUT,
                );
                return Ok(());
            }
            self.emerg_table.push(Self::entry_from_msg(msg, mf, true));
            return Ok(());
        }
        // Overlap check when requested.
        let overlap_req = flags
            .clone()
            .bvand(Self::c16(flow_mod_flags::CHECK_OVERLAP))
            .ne(Self::c16(0));
        if ctx.branch("flow_mod.check_overlap", &overlap_req)? {
            ctx.cover("flow_mod.check_overlap");
            let priority = msg.u16(layout::flow_mod::PRIORITY);
            for entry in self.flow_table.clone() {
                let cond = entry
                    .priority
                    .clone()
                    .eq(priority.clone())
                    .and(Self::overlaps(&entry.fields, &mf));
                if ctx.branch("flow_mod.overlaps", &cond)? {
                    ctx.cover("flow_mod.overlap_error");
                    emit_error(
                        ctx,
                        xid,
                        error_type::FLOW_MOD_FAILED,
                        soft_openflow::consts::flow_mod_failed::OVERLAP,
                    );
                    return Ok(());
                }
            }
        }
        // A nonexistent buffer id produces an internal error that is never
        // sent to the controller; the flow is installed and the buffered
        // packet is simply not processed (§5.1.2 "Lack of error messages").
        let buffer_id = msg.u32(layout::flow_mod::BUFFER_ID);
        if !ctx.branch(
            "flow_mod.no_buffer",
            &buffer_id.eq(Term::bv_const(32, NO_BUFFER as u64)),
        )? {
            ctx.cover("flow_mod.buffer_unknown_swallowed");
        }
        self.flow_table.push(Self::entry_from_msg(msg, mf, false));
        self.install_times.push(self.now);
        ctx.cover("flow_mod.installed");
        Ok(())
    }

    /// Conservative overlap condition: both entries could match one packet.
    fn overlaps(a: &MatchFields, b: &MatchFields) -> Term {
        // Two matches overlap if, for every field, at least one side
        // wildcards it or the values agree. We use the headline fields; the
        // full 12-tuple check only adds more conjuncts of the same shape.
        let f = |wa: Term, wb: Term, va: Term, vb: Term| wa.or(wb).or(va.eq(vb));
        f(
            a.wc_bit(wildcards::IN_PORT),
            b.wc_bit(wildcards::IN_PORT),
            a.in_port.clone(),
            b.in_port.clone(),
        )
        .and(f(
            a.wc_bit(wildcards::DL_TYPE),
            b.wc_bit(wildcards::DL_TYPE),
            a.dl_type.clone(),
            b.dl_type.clone(),
        ))
        .and(f(
            a.wc_bit(wildcards::DL_VLAN),
            b.wc_bit(wildcards::DL_VLAN),
            a.dl_vlan.clone(),
            b.dl_vlan.clone(),
        ))
    }

    /// Loose "same rule" condition used by MODIFY/DELETE.
    fn same_match(a: &MatchFields, b: &MatchFields) -> Term {
        a.wildcards
            .clone()
            .eq(b.wildcards.clone())
            .and(a.in_port.clone().eq(b.in_port.clone()))
            .and(a.dl_type.clone().eq(b.dl_type.clone()))
    }

    fn flow_modify(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &SymBuf,
        xid: Term,
        mf: MatchFields,
    ) -> AgentResult {
        let n = (msg.len() - layout::flow_mod::ACTIONS) / layout::action::BASE_SIZE;
        match self.validate_actions(ctx, msg, layout::flow_mod::ACTIONS, n, Some(&mf))? {
            Validation::Error(t, c) => {
                ctx.cover("flow_mod.validation_error");
                emit_error(ctx, xid, t, c);
                return Ok(());
            }
            Validation::Ok => {}
        }
        let new_actions = msg.slice(
            layout::flow_mod::ACTIONS,
            msg.len() - layout::flow_mod::ACTIONS,
        );
        let mut any = false;
        let table = self.flow_table.clone();
        for (idx, entry) in table.iter().enumerate() {
            if ctx.branch("modify.same_match", &Self::same_match(&entry.fields, &mf))? {
                ctx.cover("modify.applied");
                self.flow_table[idx].actions = new_actions.clone();
                any = true;
            }
        }
        if !any {
            if self.muts.modify_without_add {
                // M7: modify without fallback-to-add.
                ctx.cover("modify.mut_no_add");
                return Ok(());
            }
            // Per spec, MODIFY with no matching entry behaves like ADD.
            ctx.cover("modify.fallback_add");
            self.flow_table.push(Self::entry_from_msg(msg, mf, false));
            self.install_times.push(self.now);
        }
        Ok(())
    }

    fn flow_delete(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, mf: MatchFields) -> AgentResult {
        let wc_all = mf
            .wildcards
            .clone()
            .eq(Term::bv_const(32, wildcards::ALL as u64));
        let table = self.flow_table.clone();
        let times = self.install_times.clone();
        let mut keep: Vec<FlowEntry> = Vec::new();
        let mut keep_times: Vec<u16> = Vec::new();
        for (entry, itime) in table.into_iter().zip(times) {
            let cond = wc_all.clone().or(Self::same_match(&entry.fields, &mf));
            if ctx.branch("delete.matches", &cond)? {
                ctx.cover("delete.removed");
                let notify = entry
                    .flags
                    .clone()
                    .bvand(Self::c16(flow_mod_flags::SEND_FLOW_REM))
                    .ne(Self::c16(0));
                if ctx.branch("delete.send_flow_rem", &notify)? {
                    ctx.cover("delete.flow_removed_sent");
                    ctx.emit(TraceEvent::OfReply {
                        msg_type: msg_type::FLOW_REMOVED,
                        fields: vec![
                            ("priority", entry.priority.clone()),
                            ("cookie", entry.cookie.clone()),
                        ],
                        body: SymBuf::empty(),
                    });
                }
            } else {
                keep.push(entry);
                keep_times.push(itime);
            }
        }
        let _ = msg;
        self.flow_table = keep;
        self.install_times = keep_times;
        Ok(())
    }

    /// Fire flow-expiry timers up to the (virtual) time `now`.
    fn expire_flows(&mut self, ctx: &mut Ctx<'_>, now: u16) -> AgentResult {
        ctx.cover("timer.sweep");
        self.now = now;
        let table = self.flow_table.clone();
        let times = self.install_times.clone();
        let mut keep: Vec<FlowEntry> = Vec::new();
        let mut keep_times: Vec<u16> = Vec::new();
        for (entry, itime) in table.into_iter().zip(times) {
            let elapsed = Term::bv_const(16, now.saturating_sub(itime) as u64);
            // The model treats the idle timer as started at installation
            // (no data-plane traffic refreshes it in these tests).
            let idle_due = entry
                .idle_timeout
                .clone()
                .ne(Self::c16(0))
                .and(entry.idle_timeout.clone().ule(elapsed.clone()));
            let hard_due = entry
                .hard_timeout
                .clone()
                .ne(Self::c16(0))
                .and(entry.hard_timeout.clone().ule(elapsed.clone()));
            let idle_fired = ctx.branch("timer.idle_due", &idle_due)?;
            let hard_fired = !idle_fired && ctx.branch("timer.hard_due", &hard_due)?;
            if idle_fired || hard_fired {
                ctx.cover("timer.flow_expired");
                let notify = entry
                    .flags
                    .clone()
                    .bvand(Self::c16(flow_mod_flags::SEND_FLOW_REM))
                    .ne(Self::c16(0));
                if ctx.branch("timer.send_flow_rem", &notify)? {
                    // M2: the modified switch drops the notification when
                    // the *idle* timer fired.
                    if idle_fired && self.muts.no_flow_removed_on_idle_timeout {
                        ctx.cover("timer.mut_flow_removed_suppressed");
                    } else {
                        ctx.cover("timer.flow_removed_tx");
                        ctx.emit(TraceEvent::OfReply {
                            msg_type: msg_type::FLOW_REMOVED,
                            fields: vec![
                                ("priority", entry.priority.clone()),
                                ("cookie", entry.cookie.clone()),
                            ],
                            body: SymBuf::empty(),
                        });
                    }
                }
            } else {
                keep.push(entry);
                keep_times.push(itime);
            }
        }
        self.flow_table = keep;
        self.install_times = keep_times;
        Ok(())
    }

    fn handle_set_config(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("set_config.entry");
        if msg.len() < layout::switch_config::SIZE {
            ctx.cover("set_config.bad_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let flags = msg.u16(layout::switch_config::FLAGS);
        let frag = flags.clone().bvand(Self::c16(config_flags::FRAG_MASK));
        if ctx.branch(
            "set_config.frag_normal",
            &frag.clone().eq(Self::c16(config_flags::FRAG_NORMAL)),
        )? {
            ctx.cover("set_config.frag_normal");
        } else if ctx.branch(
            "set_config.frag_drop",
            &frag.clone().eq(Self::c16(config_flags::FRAG_DROP)),
        )? {
            ctx.cover("set_config.frag_drop");
        } else {
            ctx.cover("set_config.frag_reasm");
        }
        self.config.flags = flags;
        self.config.miss_send_len = msg.u16(layout::switch_config::MISS_SEND_LEN);
        Ok(())
    }

    fn handle_stats_request(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("stats.entry");
        if msg.len() < layout::stats_request::FIXED_SIZE {
            // The handler produces an error that is never converted into an
            // OpenFlow message — the request is silently ignored (§5.1.2
            // "Statistics requests silently ignored").
            ctx.cover("stats.short_swallowed");
            return Ok(());
        }
        let stype = msg.u16(layout::stats_request::TYPE);
        let reply = |ctx: &mut Ctx<'_>, st: u16, body: SymBuf| {
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::STATS_REPLY,
                fields: vec![("xid", xid.clone()), ("stats_type", Self::c16(st))],
                body,
            });
        };
        if ctx.branch("stats.desc", &stype.clone().eq(Self::c16(stats_type::DESC)))? {
            ctx.cover("stats.desc");
            reply(
                ctx,
                stats_type::DESC,
                SymBuf::concrete(b"OpenFlow reference switch"),
            );
            return Ok(());
        }
        if ctx.branch("stats.flow", &stype.clone().eq(Self::c16(stats_type::FLOW)))? {
            ctx.cover("stats.flow");
            if msg.len() < layout::stats_request::FIXED_SIZE + layout::stats_request::FLOW_BODY_SIZE
            {
                ctx.cover("stats.flow_short_swallowed");
                return Ok(());
            }
            // Table id selects flow table(s); with an empty table every
            // selection yields an empty body, but the paths differ.
            let tid = msg.u8(layout::stats_request::FLOW_TABLE_ID);
            if ctx.branch(
                "stats.flow_all_tables",
                &tid.clone().eq(Term::bv_const(8, 0xff)),
            )? {
                ctx.cover("stats.flow_all_tables");
            } else if ctx.branch("stats.flow_table0", &tid.eq(Term::bv_const(8, 0)))? {
                ctx.cover("stats.flow_table0");
            } else {
                ctx.cover("stats.flow_bad_table");
                reply(ctx, stats_type::FLOW, SymBuf::empty());
                return Ok(());
            }
            // The reference switch converts the request's ofp_match into
            // its internal sw_flow_key with one conditional per wildcard
            // flag — each is a symbolic branch, which is where the large
            // path counts of Table 2's Stats Request row come from.
            let req_match = MatchFields::parse(msg, layout::stats_request::BODY);
            for (label, bit) in [
                ("stats.wc_in_port", wildcards::IN_PORT),
                ("stats.wc_dl_vlan", wildcards::DL_VLAN),
                ("stats.wc_dl_src", wildcards::DL_SRC),
                ("stats.wc_dl_dst", wildcards::DL_DST),
                ("stats.wc_dl_type", wildcards::DL_TYPE),
            ] {
                if ctx.branch(label, &req_match.wc_bit(bit))? {
                    ctx.cover("stats.flow_key_wildcarded");
                } else {
                    ctx.cover("stats.flow_key_exact");
                }
            }
            let out_port = msg.u16(layout::stats_request::FLOW_OUT_PORT);
            if ctx.branch(
                "stats.flow_out_port_filter",
                &out_port.eq(Self::c16(ofpp::OFPP_NONE)),
            )? {
                ctx.cover("stats.flow_no_out_filter");
            } else {
                ctx.cover("stats.flow_out_filter");
            }
            let mut body = SymBuf::empty();
            for entry in &self.flow_table {
                // One row per entry: priority and cookie summarize it.
                body.push(entry.priority.clone().extract(15, 8));
                body.push(entry.priority.clone().extract(7, 0));
                body.push(entry.cookie.clone().extract(7, 0));
            }
            reply(ctx, stats_type::FLOW, body);
            return Ok(());
        }
        if ctx.branch(
            "stats.aggregate",
            &stype.clone().eq(Self::c16(stats_type::AGGREGATE)),
        )? {
            ctx.cover("stats.aggregate");
            if msg.len() < layout::stats_request::FIXED_SIZE + layout::stats_request::FLOW_BODY_SIZE
            {
                ctx.cover("stats.aggregate_short_swallowed");
                return Ok(());
            }
            let n = self.flow_table.len() as u8;
            reply(ctx, stats_type::AGGREGATE, SymBuf::concrete(&[0, 0, 0, n]));
            return Ok(());
        }
        if ctx.branch(
            "stats.table",
            &stype.clone().eq(Self::c16(stats_type::TABLE)),
        )? {
            if self.muts.ignore_table_stats {
                // M6: table statistics silently ignored.
                ctx.cover("stats.mut_table_ignored");
                return Ok(());
            }
            ctx.cover("stats.table");
            reply(ctx, stats_type::TABLE, SymBuf::concrete(b"classifier"));
            return Ok(());
        }
        if ctx.branch("stats.port", &stype.clone().eq(Self::c16(stats_type::PORT)))? {
            ctx.cover("stats.port");
            // Body: ofp_port_stats_request { port_no, pad[6] }. The port
            // lookup walks the port list comparing numbers one by one.
            let port_no = msg.u16(layout::stats_request::BODY);
            if ctx.branch(
                "stats.port_all",
                &port_no.clone().eq(Self::c16(ofpp::OFPP_NONE)),
            )? {
                ctx.cover("stats.port_all");
                reply(ctx, stats_type::PORT, SymBuf::concrete(&[4])); // 4 ports
                return Ok(());
            }
            for pn in 1u16..=4 {
                if ctx.branch("stats.port_scan", &port_no.clone().eq(Self::c16(pn)))? {
                    ctx.cover("stats.port_one");
                    let mut body = SymBuf::empty();
                    body.push(port_no.clone().extract(15, 8));
                    body.push(port_no.extract(7, 0));
                    reply(ctx, stats_type::PORT, body);
                    return Ok(());
                }
            }
            // Unknown port: empty reply rather than an error.
            ctx.cover("stats.port_unknown");
            reply(ctx, stats_type::PORT, SymBuf::empty());
            return Ok(());
        }
        if ctx.branch(
            "stats.queue",
            &stype.clone().eq(Self::c16(stats_type::QUEUE)),
        )? {
            ctx.cover("stats.queue");
            // ofp_queue_stats_request { port_no, pad[2], queue_id }.
            let port_no = msg.u16(layout::stats_request::BODY);
            if ctx.branch(
                "stats.queue_port_all",
                &port_no.clone().eq(Self::c16(0xfffc)),
            )? {
                ctx.cover("stats.queue_all_ports");
            } else {
                for pn in 1u16..=4 {
                    if ctx.branch("stats.queue_port_scan", &port_no.clone().eq(Self::c16(pn)))? {
                        ctx.cover("stats.queue_one_port");
                        break;
                    }
                }
            }
            reply(ctx, stats_type::QUEUE, SymBuf::empty());
            return Ok(());
        }
        if ctx.branch(
            "stats.vendor",
            &stype.clone().eq(Self::c16(stats_type::VENDOR)),
        )? {
            // Handler returns an error that is never propagated (§5.1.2).
            ctx.cover("stats.vendor_swallowed");
            return Ok(());
        }
        // Unknown statistics type: same swallowed-error defect.
        ctx.cover("stats.unknown_swallowed");
        Ok(())
    }

    fn handle_queue_config(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("queue_cfg.entry");
        // NOTE: no length validation — the reference switch reads the port
        // field unconditionally.
        let port = msg.u16(layout::queue_config_request::PORT);
        if ctx.branch("queue_cfg.port_zero", &port.clone().eq(Self::c16(0)))? {
            // Crash #3 of §5.1.2: "when the agent receives a queue
            // configuration request for port number 0, it encounters a
            // memory error."
            ctx.cover("queue_cfg.port_zero_crash");
            return Err(Stop::crash(
                "reference: memory error on queue config request for port 0",
            ));
        }
        if ctx.branch(
            "queue_cfg.port_special",
            &port.clone().uge(Self::c16(ofpp::OFPP_MAX)),
        )? {
            ctx.cover("queue_cfg.bad_port");
            emit_error(
                ctx,
                xid,
                error_type::QUEUE_OP_FAILED,
                queue_op_failed::BAD_PORT,
            );
            return Ok(());
        }
        ctx.cover("queue_cfg.reply");
        ctx.emit(TraceEvent::OfReply {
            msg_type: msg_type::QUEUE_GET_CONFIG_REPLY,
            fields: vec![("xid", xid), ("port", port)],
            body: SymBuf::empty(),
        });
        Ok(())
    }

    fn handle_port_mod(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf, xid: Term) -> AgentResult {
        ctx.cover("port_mod.entry");
        if msg.len() < 32 {
            ctx.cover("port_mod.bad_len");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        let port = msg.u16(8);
        let valid = port.clone().uge(Self::c16(1)).and(port.ule(Self::c16(4)));
        if ctx.branch("port_mod.port_valid", &valid)? {
            ctx.cover("port_mod.applied");
        } else {
            ctx.cover("port_mod.bad_port");
            emit_error(ctx, xid, error_type::PORT_MOD_FAILED, 0);
        }
        Ok(())
    }
}

impl Default for ReferenceSwitch {
    fn default() -> Self {
        Self::new()
    }
}

impl OpenFlowAgent for ReferenceSwitch {
    fn name(&self) -> &'static str {
        self.name
    }

    fn universe(&self) -> CoverageUniverse {
        universe()
    }

    fn on_connect(&mut self, ctx: &mut Ctx<'_>) -> AgentResult {
        // Connection-establishment code: covered by every run, symbolic in
        // nothing (the handshake is concrete), and the host of mutation M1
        // which SOFT therefore never observes.
        for block in INIT_BLOCKS {
            ctx.cover(block);
        }
        // Concrete init-time branches: connection setup exercises both
        // directions of its loop/retry conditions and one direction of a
        // few checks. (M1's Hello-version quirk lives here, invisible to
        // SOFT because the handshake is already complete and concrete.)
        let neg_version = if self.muts.hello_version_quirk {
            2
        } else {
            OFP_VERSION
        };
        let ok = ctx.branch(
            "init.version_negotiated",
            &Term::bv_const(8, neg_version as u64).ule(Term::bv_const(8, OFP_VERSION as u64 + 1)),
        )?;
        debug_assert!(ok);
        for site in INIT_BRANCHES_BOTH {
            ctx.branch(site, &Term::bool_true())?;
            ctx.branch(site, &Term::bool_false())?;
        }
        for site in INIT_BRANCHES_ONE {
            ctx.branch(site, &Term::bool_true())?;
        }
        Ok(())
    }

    fn handle_message(&mut self, ctx: &mut Ctx<'_>, msg: &SymBuf) -> AgentResult {
        ctx.cover("rx.message");
        let ver = msg.u8(layout::header::VERSION);
        let xid = msg.u32(layout::header::XID);
        if !ctx.branch(
            "hdr.version_ok",
            &ver.eq(Term::bv_const(8, OFP_VERSION as u64)),
        )? {
            ctx.cover("hdr.bad_version");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_VERSION);
            return Ok(());
        }
        let len_field = msg.u16(layout::header::LENGTH);
        if ctx.branch("hdr.len_runt", &len_field.clone().ult(Self::c16(8)))? {
            ctx.cover("hdr.len_runt");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_LEN);
            return Ok(());
        }
        if !ctx.branch(
            "hdr.len_matches",
            &len_field.eq(Self::c16(msg.len() as u16)),
        )? {
            // Framing mismatch: the connection layer keeps waiting for the
            // rest of the declared frame; nothing observable happens.
            ctx.cover("hdr.incomplete_frame");
            return Ok(());
        }
        let t = msg.u8(layout::header::TYPE);
        let is = |v: u8| t.clone().eq(Term::bv_const(8, v as u64));
        if ctx.branch("dispatch.hello", &is(msg_type::HELLO))? {
            ctx.cover("dispatch.hello");
            return Ok(());
        }
        if ctx.branch("dispatch.echo_request", &is(msg_type::ECHO_REQUEST))? {
            ctx.cover("dispatch.echo_request");
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::ECHO_REPLY,
                fields: vec![("xid", xid)],
                body: msg.slice(8, msg.len() - 8),
            });
            return Ok(());
        }
        if ctx.branch("dispatch.features_request", &is(msg_type::FEATURES_REQUEST))? {
            ctx.cover("dispatch.features_request");
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::FEATURES_REPLY,
                fields: vec![
                    ("xid", xid),
                    ("datapath_id", Term::bv_const(64, 0x1)),
                    ("n_buffers", Term::bv_const(32, 256)),
                    ("n_tables", Term::bv_const(8, 1)),
                ],
                body: SymBuf::empty(),
            });
            return Ok(());
        }
        if ctx.branch("dispatch.get_config", &is(msg_type::GET_CONFIG_REQUEST))? {
            ctx.cover("dispatch.get_config");
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::GET_CONFIG_REPLY,
                fields: vec![
                    ("xid", xid),
                    ("flags", self.config.flags.clone()),
                    ("miss_send_len", self.config.miss_send_len.clone()),
                ],
                body: SymBuf::empty(),
            });
            return Ok(());
        }
        if ctx.branch("dispatch.set_config", &is(msg_type::SET_CONFIG))? {
            return self.handle_set_config(ctx, msg, xid);
        }
        if ctx.branch("dispatch.packet_out", &is(msg_type::PACKET_OUT))? {
            return self.handle_packet_out(ctx, msg, xid);
        }
        if ctx.branch("dispatch.flow_mod", &is(msg_type::FLOW_MOD))? {
            return self.handle_flow_mod(ctx, msg, xid);
        }
        if ctx.branch("dispatch.stats_request", &is(msg_type::STATS_REQUEST))? {
            return self.handle_stats_request(ctx, msg, xid);
        }
        if ctx.branch("dispatch.barrier", &is(msg_type::BARRIER_REQUEST))? {
            ctx.cover("dispatch.barrier");
            ctx.emit(TraceEvent::OfReply {
                msg_type: msg_type::BARRIER_REPLY,
                fields: vec![("xid", xid)],
                body: SymBuf::empty(),
            });
            return Ok(());
        }
        if ctx.branch(
            "dispatch.queue_config",
            &is(msg_type::QUEUE_GET_CONFIG_REQUEST),
        )? {
            return self.handle_queue_config(ctx, msg, xid);
        }
        if ctx.branch("dispatch.port_mod", &is(msg_type::PORT_MOD))? {
            return self.handle_port_mod(ctx, msg, xid);
        }
        if ctx.branch("dispatch.vendor", &is(msg_type::VENDOR))? {
            ctx.cover("dispatch.vendor");
            emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_VENDOR);
            return Ok(());
        }
        if ctx.branch("dispatch.echo_reply", &is(msg_type::ECHO_REPLY))? {
            ctx.cover("dispatch.echo_reply");
            return Ok(());
        }
        ctx.cover("dispatch.unknown_type");
        emit_error(ctx, xid, error_type::BAD_REQUEST, bad_request::BAD_TYPE);
        Ok(())
    }

    fn handle_packet(&mut self, ctx: &mut Ctx<'_>, in_port: u16, pkt: &Packet) -> AgentResult {
        ctx.cover("rx.packet");
        let pkt = crate::common::classify_packet(ctx, pkt)?;
        let in_port = Self::c16(in_port);
        self.lookup_and_forward(ctx, &pkt, &in_port)
    }

    fn handle_time(&mut self, ctx: &mut Ctx<'_>, now: u16) -> AgentResult {
        self.expire_flows(ctx, now)
    }
}

/// Initialization blocks covered by every connection (the Table 4
/// "No Message" baseline).
const INIT_BLOCKS: [&str; 23] = [
    "init.switch_features_cache",
    "init.port_status_baseline",
    "init.datapath_create",
    "init.ports_attach",
    "init.table_create",
    "init.rconn_create",
    "init.rconn_connect",
    "init.hello_tx",
    "init.hello_rx",
    "init.version_negotiation",
    "init.features_prepare",
    "init.config_defaults",
    "init.buffers_init",
    "init.poll_loop",
    "init.stream_open",
    "init.chain_init",
    "init.port_enumerate",
    "init.port_flags",
    "init.dp_id_derive",
    "init.listener_bind",
    "init.backoff_reset",
    "init.epoll_register",
    "init.time_init",
];

/// Init-time branch sites whose both directions are exercised during
/// connection setup (retry loops, per-port loops).
const INIT_BRANCHES_BOTH: [&str; 9] = [
    "init.port_feature_probe",
    "init.rx_queue_drain",
    "init.more_ports",
    "init.retry_connect",
    "init.rx_pending",
    "init.tx_pending",
    "init.poll_again",
    "init.buffer_scan",
    "init.port_is_last",
];

/// Init-time branch sites exercised in one direction only.
const INIT_BRANCHES_ONE: [&str; 3] = ["init.hello_is_first", "init.socket_ok", "init.table_empty"];

/// Blocks present in the binary but unreachable from OpenFlow processing
/// (command-line configuration, dead code, cleanup and logging paths) —
/// the paper measures these as the ~25% of instructions no test covers.
const UNREACHABLE_BLOCKS: [&str; 34] = [
    "cli.parse_args",
    "cli.usage",
    "cli.version_banner",
    "cli.datapath_id_arg",
    "cli.fail_mode_arg",
    "cli.listen_arg",
    "cli.monitor_arg",
    "cli.daemonize",
    "cli.pidfile",
    "vlog.init",
    "vlog.set_levels",
    "vlog.rotate",
    "vlog.facility_parse",
    "cleanup.table_destroy",
    "cleanup.ports_detach",
    "cleanup.rconn_destroy",
    "cleanup.buffers_free",
    "cleanup.signal_handler",
    "dead.honey_pot",
    "dead.legacy_stp",
    "dead.netflow_stub",
    "fail.open_mode",
    "fail.closed_mode",
    "mgmt.snat_config",
    "mgmt.port_watchdog",
    "timer.idle_expire",
    "timer.hard_expire",
    "timer.flow_removed_tx",
    "timer.echo_keepalive",
    "unixctl.server_init",
    "unixctl.command_register",
    "netdev.ethtool_ioctl",
    "netdev.carrier_watch",
    "netdev.mtu_config",
];

/// Branch sites that exist in the binary but no OpenFlow-driven test
/// reaches (timer arms, CLI switches, failure recovery).
const UNREACHABLE_BRANCH_SITES: [&str; 12] = [
    "cli.has_args",
    "cli.arg_is_flag",
    "vlog.level_gate",
    "timer.idle_due",
    "timer.hard_due",
    "timer.echo_due",
    "fail.mode_is_open",
    "cleanup.has_pending",
    "netdev.is_up",
    "unixctl.has_client",
    "mgmt.watchdog_due",
    "dead.stp_enabled",
];

/// The coverage universe of the reference switch model. Generated from the
/// instrumentation labels in this file plus the unreachable inventory; a
/// unit test asserts no covered label falls outside it.
pub fn universe() -> CoverageUniverse {
    let mut blocks: Vec<&'static str> = crate::universe_data::REFERENCE_BLOCKS.to_vec();
    blocks.extend(INIT_BLOCKS);
    blocks.extend(UNREACHABLE_BLOCKS);
    blocks.sort_unstable();
    blocks.dedup();
    let mut sites: Vec<&'static str> = crate::universe_data::REFERENCE_BRANCH_SITES.to_vec();
    sites.extend(INIT_BRANCHES_BOTH);
    sites.extend(INIT_BRANCHES_ONE);
    sites.extend(UNREACHABLE_BRANCH_SITES);
    sites.sort_unstable();
    sites.dedup();
    CoverageUniverse {
        blocks,
        branch_sites: sites,
    }
}
