//! # soft-agents — the OpenFlow agents under test
//!
//! Behavioural models of the paper's three evaluation subjects: the
//! OpenFlow 1.0 Reference Switch, Open vSwitch 1.0.0, and the "Modified
//! Switch" with seven injected behaviour changes (§5.1.1). Each agent is a
//! deterministic program over the `soft-sym` execution context; all the
//! §5.1.2 divergences — crashes, swallowed errors, strict-vs-masked field
//! validation, max-port checks, validation ordering, missing features —
//! are reproduced at the OpenFlow interface level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
pub mod common;
pub mod modified;
pub mod of10;
pub mod ovs;
pub mod reference;
pub mod suite;
pub mod universe_data;

pub use agent::{AgentKind, OpenFlowAgent};
pub use common::Ctx;
pub use of10::{Of10, OF10};
pub use ovs::OpenVSwitch;
pub use reference::{Mutations, ReferenceSwitch};

/// Build-time FNV-1a hash of the model-defining sources (this crate
/// plus the wire-format, data-plane, and symbolic-context crates it
/// builds on), computed by `build.rs`. `soft serve` folds it into every
/// agent fingerprint: a code change that alters behaviour without
/// adding or removing coverage labels still invalidates stored results.
pub const BUILD_FINGERPRINT: &str = env!("SOFT_AGENTS_BUILD_FP");
