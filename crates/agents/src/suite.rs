//! The evaluation test suite.
//!
//! [`table1_suite`] defines exactly the eight tests of Table 1;
//! [`ablation`] defines the five concretization variants of Table 5; and
//! [`fig4_message_sequences`] the 1/2/3-symbolic-message workloads behind
//! Figure 4. One extra test (`queue_config`) exercises the queue-config
//! handler the paper's §5.1.2 crash catalogue reaches through its broader
//! runs.

use soft_dataplane::{eth_probe, tcp_probe, Packet};
use soft_openflow::builder::{self, ActionSpec, FlowModSpec, MatchMode};
use soft_protocol::{Input, TestCase};

fn tcp_probe_input() -> Input {
    Input::Probe {
        in_port: 1,
        packet: tcp_probe(),
    }
}

fn payload() -> Vec<u8> {
    tcp_probe().buf.as_concrete().expect("probe is concrete")
}

/// Table 1 "Packet Out": a single Packet Out with a symbolic action and a
/// symbolic output action.
pub fn packet_out() -> TestCase {
    TestCase::new(
        "packet_out",
        "Packet Out",
        "A single Packet Out message containing a symbolic action and a \
         symbolic output action.",
        vec![Input::Message(builder::packet_out(
            "m0",
            &[ActionSpec::Symbolic, ActionSpec::SymbolicOutput],
            &payload(),
        ))],
    )
}

/// Table 1 "Stats Request": a single symbolic Stats Request covering all
/// possible statistics requests.
pub fn stats_request() -> TestCase {
    TestCase::new(
        "stats_request",
        "Stats Request",
        "A single symbolic Stats Req. It covers all possible statistics \
         requests.",
        vec![Input::Message(builder::stats_request("m0"))],
    )
}

/// Table 1 "Set Config": a symbolic Set Config followed by a probing TCP
/// packet.
pub fn set_config() -> TestCase {
    TestCase::new(
        "set_config",
        "Set Config",
        "A symbolic Set Config message followed by a probing TCP packet.",
        vec![Input::Message(builder::set_config("m0")), tcp_probe_input()],
    )
}

/// Table 1 "FlowMod": a symbolic Flow Mod with 1 symbolic action and a
/// symbolic output action, followed by a probing TCP packet.
pub fn flow_mod() -> TestCase {
    TestCase::new(
        "flow_mod",
        "FlowMod",
        "A symbolic Flow Mod with 1 symbolic action and a symbolic output \
         action followed by a probing TCP packet.",
        vec![
            Input::Message(builder::flow_mod("m0", &FlowModSpec::symbolic_default())),
            tcp_probe_input(),
        ],
    )
}

/// Table 1 "Eth FlowMod": like FlowMod but non-Ethernet fields
/// concretized; probed with an Ethernet packet.
pub fn eth_flow_mod() -> TestCase {
    TestCase::new(
        "eth_flow_mod",
        "Eth FlowMod",
        "Symbolic Flow Mod with 1 symbolic action and a symbolic output \
         action. Fields not related to Ethernet are concretized. The \
         message is followed by a probing Ethernet packet.",
        vec![
            Input::Message(builder::flow_mod("m0", &FlowModSpec::eth_default())),
            Input::Probe {
                in_port: 1,
                packet: eth_probe(),
            },
        ],
    )
}

/// Table 1 "CS FlowMods": two Flow Mods, the first concrete and the
/// second symbolic.
pub fn cs_flow_mods() -> TestCase {
    TestCase::new(
        "cs_flow_mods",
        "CS FlowMods",
        "2 Flow Mod. The first one is concrete, the second is symbolic.",
        vec![
            Input::Message(builder::flow_mod("m0", &FlowModSpec::concrete_add(2))),
            Input::Message(builder::flow_mod("m1", &FlowModSpec::symbolic_default())),
        ],
    )
}

/// Table 1 "Concrete": the four concrete 8-byte messages with no variable
/// fields.
pub fn concrete() -> TestCase {
    TestCase::new(
        "concrete",
        "Concrete",
        "4 concrete 8-byte messages. These are the messages that do not \
         have variable fields.",
        builder::concrete_suite(0x10)
            .into_iter()
            .map(Input::Message)
            .collect(),
    )
}

/// Table 1 "Short Symb": a 10-byte symbolic message; only the version
/// byte is concrete.
pub fn short_symb() -> TestCase {
    TestCase::new(
        "short_symb",
        "Short Symb",
        "A 10-byte symbolic message. Only the OpenFlow version field is \
         concrete.",
        vec![Input::Message(builder::short_symbolic("m0"))],
    )
}

/// Extra test beyond Table 1: a symbolic Queue Get Config Request,
/// reaching the §5.1.2 port-0 memory error in the Reference Switch.
pub fn queue_config() -> TestCase {
    TestCase::new(
        "queue_config",
        "Queue Config",
        "A symbolic Queue Get Config Request (reaches the reference \
         switch's port-0 memory error).",
        vec![Input::Message(builder::queue_config_request("m0"))],
    )
}

/// Extension beyond the paper (its declared future work): a Flow Mod with
/// symbolic timeouts and flags, then a virtual-clock advance, then a probe.
/// With the time extension the engine *can* trigger flow expiry, making
/// the §5.1.1 timeout modification (M2) observable.
pub fn timeout_flow_mod() -> TestCase {
    let spec = builder::FlowModSpec {
        match_mode: MatchMode::WildcardAll,
        actions: vec![ActionSpec::Output(2)],
        command: Some(soft_openflow::consts::flow_mod_cmd::ADD),
        buffer_id: Some(soft_openflow::consts::NO_BUFFER),
        timeouts: None, // symbolic idle/hard timeouts
        flags: None,    // symbolic flags (SEND_FLOW_REM reachable)
        ..builder::FlowModSpec::symbolic_default()
    };
    TestCase::new(
        "timeout_flow_mod",
        "Timeout FlowMod",
        "A Flow Mod with symbolic timeouts and flags, a 60s virtual-clock \
         advance, and a probing TCP packet (time extension).",
        vec![
            Input::Message(builder::flow_mod("m0", &spec)),
            Input::AdvanceTime { now: 60 },
            tcp_probe_input(),
        ],
    )
}

/// The eight tests of Table 1, in table order.
pub fn table1_suite() -> Vec<TestCase> {
    vec![
        packet_out(),
        stats_request(),
        set_config(),
        flow_mod(),
        eth_flow_mod(),
        cs_flow_mods(),
        concrete(),
        short_symb(),
    ]
}

/// The crosscheckable subset used by Table 3 (the paper's Table 3 lists
/// Packet Out, Stats Request, Set Config, Eth FlowMod, CS FlowMods, and
/// Short Symb).
pub fn table3_suite() -> Vec<TestCase> {
    vec![
        packet_out(),
        stats_request(),
        set_config(),
        eth_flow_mod(),
        cs_flow_mods(),
        short_symb(),
    ]
}

/// Table 5 ablation variants.
pub mod ablation {
    use super::*;

    fn flow_mod_spec(match_mode: MatchMode, actions: Vec<ActionSpec>) -> FlowModSpec {
        FlowModSpec {
            match_mode,
            actions,
            ..FlowModSpec::symbolic_default()
        }
    }

    /// Baseline: a single symbolic Flow Mod containing 2 symbolic actions
    /// and 2 symbolic output actions, followed by a TCP probe.
    pub fn fully_symbolic() -> TestCase {
        TestCase::new(
            "abl_fully_symbolic",
            "Fully Symbolic",
            "Symbolic Flow Mod with 2 symbolic actions and 2 symbolic \
             output actions, followed by a TCP probe.",
            vec![
                Input::Message(builder::flow_mod(
                    "m0",
                    &flow_mod_spec(
                        MatchMode::Symbolic,
                        vec![
                            ActionSpec::Symbolic,
                            ActionSpec::Symbolic,
                            ActionSpec::SymbolicOutput,
                            ActionSpec::SymbolicOutput,
                        ],
                    ),
                )),
                tcp_probe_input(),
            ],
        )
    }

    /// Baseline with a concrete (wildcard-all) match.
    pub fn concrete_match() -> TestCase {
        TestCase::new(
            "abl_concrete_match",
            "Concrete Match",
            "The baseline with the match concretized to wildcard-all.",
            vec![
                Input::Message(builder::flow_mod(
                    "m0",
                    &flow_mod_spec(
                        MatchMode::WildcardAll,
                        vec![
                            ActionSpec::Symbolic,
                            ActionSpec::Symbolic,
                            ActionSpec::SymbolicOutput,
                            ActionSpec::SymbolicOutput,
                        ],
                    ),
                )),
                tcp_probe_input(),
            ],
        )
    }

    /// Baseline with one concrete action instead of four symbolic ones.
    pub fn concrete_action() -> TestCase {
        TestCase::new(
            "abl_concrete_action",
            "Concrete Action",
            "The baseline with a single concrete output action instead of \
             4 symbolic ones.",
            vec![
                Input::Message(builder::flow_mod(
                    "m0",
                    &flow_mod_spec(MatchMode::Symbolic, vec![ActionSpec::Output(2)]),
                )),
                tcp_probe_input(),
            ],
        )
    }

    /// Partially symbolic Eth Flow Mod followed by a short *concrete*
    /// probe.
    pub fn concrete_probe() -> TestCase {
        TestCase::new(
            "abl_concrete_probe",
            "Concrete Probe",
            "Partially symbolic Flow Mod applying to Ethernet packets, \
             followed by a short concrete probe.",
            vec![
                Input::Message(builder::flow_mod("m0", &FlowModSpec::eth_default())),
                Input::Probe {
                    in_port: 1,
                    packet: eth_probe(),
                },
            ],
        )
    }

    /// The same Flow Mod followed by a short *symbolic* probe.
    pub fn symbolic_probe() -> TestCase {
        TestCase::new(
            "abl_symbolic_probe",
            "Symbolic Probe",
            "Partially symbolic Flow Mod applying to Ethernet packets, \
             followed by a short symbolic probe.",
            vec![
                Input::Message(builder::flow_mod("m0", &FlowModSpec::eth_default())),
                Input::Probe {
                    in_port: 1,
                    packet: Packet::symbolic("p0", 20),
                },
            ],
        )
    }

    /// The five rows of Table 5, in order.
    pub fn table5_suite() -> Vec<TestCase> {
        vec![
            fully_symbolic(),
            concrete_match(),
            concrete_action(),
            concrete_probe(),
            symbolic_probe(),
        ]
    }
}

/// The Figure 4 workloads: 1, 2 and 3 symbolic Flow Mod messages (the
/// coverage-vs-message-count study of §3.2.2).
pub fn fig4_message_sequences() -> Vec<TestCase> {
    let fm = |tag: &str| {
        Input::Message(builder::flow_mod(
            tag,
            &FlowModSpec {
                // Keep the Figure 4 workloads tractable: Eth-scoped match,
                // one symbolic action.
                match_mode: MatchMode::EthOnly,
                actions: vec![ActionSpec::SymbolicOutput],
                ..FlowModSpec::symbolic_default()
            },
        ))
    };
    vec![
        TestCase::new(
            "fig4_one",
            "1 symbolic message",
            "One symbolic Flow Mod.",
            vec![fm("m0")],
        ),
        TestCase::new(
            "fig4_two",
            "2 symbolic messages",
            "Two symbolic Flow Mods (cross-interactions of message pairs).",
            vec![fm("m0"), fm("m1")],
        ),
        TestCase::new(
            "fig4_three",
            "3 symbolic messages",
            "Three symbolic Flow Mods.",
            vec![fm("m0"), fm("m1"), fm("m2")],
        ),
    ]
}
