//! Data-plane-centric scenarios: VLAN-tagged probes through flow matching,
//! OFPP_TABLE resubmission from Packet Out, and rewrite-then-forward
//! chains — the interactions between action execution and the flow table.

use soft_agents::AgentKind;
use soft_dataplane::{Packet, ProbeSpec};
use soft_openflow::builder::{self, ActionSpec, FlowModSpec, MatchMode};
use soft_openflow::consts::{flow_mod_cmd, port as ofpp, wildcards, NO_BUFFER};
use soft_openflow::layout;
use soft_protocol::TraceEvent;
use soft_sym::{explore, ExplorerConfig, PathOutcome, SymBuf};

fn run(kind: AgentKind, msgs: Vec<SymBuf>, probe: Option<Packet>) -> (Vec<TraceEvent>, bool) {
    let ex = explore(&ExplorerConfig::default(), |ctx| {
        let mut a = kind.make();
        a.on_connect(ctx)?;
        for m in &msgs {
            a.handle_message(ctx, m)?;
        }
        if let Some(p) = &probe {
            a.handle_packet(ctx, 1, p)?;
        }
        Ok(())
    });
    assert_eq!(ex.stats.paths, 1);
    let p = &ex.paths[0];
    (
        p.trace.clone(),
        matches!(p.outcome, PathOutcome::Crashed(_)),
    )
}

/// A flow mod matching a specific VLAN id exactly.
fn vlan_match_flow(vid: u16, out: u16) -> SymBuf {
    let mut m = builder::flow_mod(
        "dp0",
        &FlowModSpec {
            match_mode: MatchMode::WildcardAll,
            actions: vec![ActionSpec::Output(out)],
            command: Some(flow_mod_cmd::ADD),
            buffer_id: Some(NO_BUFFER),
            flags: Some(0),
            ..FlowModSpec::symbolic_default()
        },
    );
    // Narrow the wildcard: everything except DL_VLAN.
    let base = layout::flow_mod::MATCH;
    m.set_u32(
        base + layout::ofp_match::WILDCARDS,
        wildcards::ALL & !wildcards::DL_VLAN,
    );
    m.set_u16(base + layout::ofp_match::DL_VLAN, vid);
    m
}

#[test]
fn vlan_exact_match_selects_tagged_traffic() {
    let flow = vlan_match_flow(100, 4);
    let tagged = Packet::from_spec(&ProbeSpec {
        vlan: Some((0, 100)),
        ..Default::default()
    });
    let other_vid = Packet::from_spec(&ProbeSpec {
        vlan: Some((0, 101)),
        ..Default::default()
    });
    let untagged = Packet::from_spec(&ProbeSpec::default());
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run(kind, vec![flow.clone()], Some(tagged.clone()));
        assert!(
            ev.iter().any(|e| matches!(
                e,
                TraceEvent::DataPlaneTx { port, .. } if port.as_bv_const() == Some(4)
            )),
            "{kind:?}: vid-100 frame must match"
        );
        for miss in [&other_vid, &untagged] {
            let (ev, _) = run(kind, vec![flow.clone()], Some((*miss).clone()));
            assert!(
                ev.iter().any(|e| matches!(
                    e,
                    TraceEvent::PacketIn { reason, .. } if reason.as_bv_const() == Some(0)
                )),
                "{kind:?}: non-matching frame must go to the controller"
            );
        }
    }
}

#[test]
fn packet_out_to_table_resubmits_through_flow_table() {
    // Install a forward-to-4 flow, then Packet Out with OFPP_TABLE: the
    // carried packet must be forwarded by the installed flow.
    let flow = builder::flow_mod(
        "dp1",
        &FlowModSpec {
            match_mode: MatchMode::WildcardAll,
            actions: vec![ActionSpec::Output(4)],
            command: Some(flow_mod_cmd::ADD),
            buffer_id: Some(NO_BUFFER),
            flags: Some(0),
            ..FlowModSpec::symbolic_default()
        },
    );
    let payload = soft_dataplane::tcp_probe().buf.as_concrete().unwrap();
    let mut po = builder::packet_out("dp2", &[ActionSpec::Output(ofpp::OFPP_TABLE)], &payload);
    po.set_u32(8, NO_BUFFER);
    po.set_u16(12, 1);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, crashed) = run(kind, vec![flow.clone(), po.clone()], None);
        assert!(!crashed);
        assert!(
            ev.iter().any(|e| matches!(
                e,
                TraceEvent::DataPlaneTx { port, .. } if port.as_bv_const() == Some(4)
            )),
            "{kind:?}: OFPP_TABLE must resubmit through the flow table"
        );
    }
}

#[test]
fn packet_out_to_empty_table_reaches_controller() {
    let payload = soft_dataplane::tcp_probe().buf.as_concrete().unwrap();
    let mut po = builder::packet_out("dp3", &[ActionSpec::Output(ofpp::OFPP_TABLE)], &payload);
    po.set_u32(8, NO_BUFFER);
    po.set_u16(12, 1);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run(kind, vec![po.clone()], None);
        assert!(
            ev.iter().any(|e| matches!(
                e,
                TraceEvent::PacketIn { reason, .. } if reason.as_bv_const() == Some(0)
            )),
            "{kind:?}: table miss on resubmission goes to the controller"
        );
    }
}

#[test]
fn rewrite_chain_applies_in_order() {
    // set_dl_dst, set_tp_dst, then output: the emitted frame must carry
    // both rewrites.
    let flow = builder::flow_mod(
        "dp4",
        &FlowModSpec {
            match_mode: MatchMode::WildcardAll,
            actions: vec![ActionSpec::SetNwTos(0x40), ActionSpec::Output(2)],
            command: Some(flow_mod_cmd::ADD),
            buffer_id: Some(NO_BUFFER),
            flags: Some(0),
            ..FlowModSpec::symbolic_default()
        },
    );
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run(kind, vec![flow.clone()], Some(soft_dataplane::tcp_probe()));
        let data = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::DataPlaneTx { data, .. } => Some(data.clone()),
                _ => None,
            })
            .expect("forwarded");
        let pkt = Packet::parse(&data).unwrap();
        assert_eq!(
            pkt.nw_tos().as_bv_const(),
            Some(0x40),
            "{kind:?}: ToS rewrite must be visible in the emitted frame"
        );
    }
}

#[test]
fn strip_vlan_on_tagged_probe() {
    let flow = builder::flow_mod(
        "dp5",
        &FlowModSpec {
            match_mode: MatchMode::WildcardAll,
            actions: vec![ActionSpec::StripVlan, ActionSpec::Output(2)],
            command: Some(flow_mod_cmd::ADD),
            buffer_id: Some(NO_BUFFER),
            flags: Some(0),
            ..FlowModSpec::symbolic_default()
        },
    );
    let tagged = Packet::from_spec(&ProbeSpec {
        vlan: Some((2, 55)),
        ..Default::default()
    });
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run(kind, vec![flow.clone()], Some(tagged.clone()));
        let data = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::DataPlaneTx { data, .. } => Some(data.clone()),
                _ => None,
            })
            .expect("forwarded");
        assert_eq!(data.len(), tagged.len() - 4, "{kind:?}: tag removed");
        let pkt = Packet::parse(&data).unwrap();
        assert!(!pkt.vlan, "{kind:?}");
        assert_eq!(
            pkt.tp_dst().as_bv_const(),
            Some(80),
            "{kind:?}: inner intact"
        );
    }
}
