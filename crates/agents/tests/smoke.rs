//! End-to-end smoke: explore agents on the Packet Out test input.

use soft_agents::AgentKind;
use soft_dataplane::tcp_probe;
use soft_openflow::builder::{packet_out, ActionSpec};
use soft_sym::{explore, ExplorerConfig, PathOutcome};
use std::time::Instant;

#[test]
fn packet_out_exploration_smoke() {
    let probe_payload = tcp_probe().buf.as_concrete().unwrap();
    let msg = packet_out(
        "m0",
        &[ActionSpec::Symbolic, ActionSpec::SymbolicOutput],
        &probe_payload,
    );
    for kind in [
        AgentKind::Reference,
        AgentKind::OpenVSwitch,
        AgentKind::Modified,
    ] {
        let t0 = Instant::now();
        let ex = explore(&ExplorerConfig::default(), |ctx| {
            let mut agent = kind.make();
            agent.on_connect(ctx)?;
            agent.handle_message(ctx, &msg)?;
            Ok(())
        });
        let crashed = ex
            .paths
            .iter()
            .filter(|p| matches!(p.outcome, PathOutcome::Crashed(_)))
            .count();
        eprintln!(
            "{:>10}: {} paths ({} crashed, {} aborted) in {:?}, {} solver queries",
            kind.id(),
            ex.stats.paths,
            crashed,
            ex.stats.aborted,
            t0.elapsed(),
            ex.stats.solver.queries
        );
        assert!(ex.stats.paths > 10, "{:?} too few paths", kind);
        assert!(!ex.stats.truncated);
        if kind == AgentKind::Reference {
            assert!(
                crashed >= 2,
                "reference should crash on CTRL output and SET_VLAN_VID"
            );
        }
        if kind == AgentKind::OpenVSwitch {
            assert_eq!(crashed, 0, "ovs must not crash");
        }
    }
}
