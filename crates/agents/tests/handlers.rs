//! Handler-level behaviour tests: statistics, flow-table lifecycle
//! (modify/delete/overlap/expiry), port mod, and echo payloads — the
//! handlers not already covered by `behavior.rs`.

use soft_agents::AgentKind;
use soft_dataplane::tcp_probe;
use soft_openflow::builder::{self, ActionSpec, FlowModSpec, MatchMode};
use soft_openflow::consts::{
    bad_request, error_type, flow_mod_cmd, flow_mod_flags, msg_type, stats_type, NO_BUFFER,
};
use soft_protocol::TraceEvent;
use soft_sym::{explore, ExplorerConfig, PathOutcome, SymBuf};

fn run_seq(
    kind: AgentKind,
    msgs: Vec<SymBuf>,
    probe: bool,
    time: Option<u16>,
) -> (Vec<TraceEvent>, bool) {
    let ex = explore(&ExplorerConfig::default(), |ctx| {
        let mut a = kind.make();
        a.on_connect(ctx)?;
        for m in &msgs {
            a.handle_message(ctx, m)?;
        }
        if let Some(now) = time {
            a.handle_time(ctx, now)?;
        }
        if probe {
            a.handle_packet(ctx, 1, &tcp_probe())?;
        }
        Ok(())
    });
    assert_eq!(ex.stats.paths, 1, "inputs must be concrete");
    let p = &ex.paths[0];
    (
        p.trace.clone(),
        matches!(p.outcome, PathOutcome::Crashed(_)),
    )
}

fn concrete_flow_mod(cmd: u16, flags: u16, out_port: u16, timeouts: (u16, u16)) -> SymBuf {
    builder::flow_mod(
        "h0",
        &FlowModSpec {
            match_mode: MatchMode::WildcardAll,
            actions: vec![ActionSpec::Output(out_port)],
            command: Some(cmd),
            buffer_id: Some(NO_BUFFER),
            priority: Some(0x8000),
            timeouts: Some(timeouts),
            flags: Some(flags),
            out_port: Some(soft_openflow::consts::port::OFPP_NONE),
            cookie: Some(7),
        },
    )
}

fn stats_req(stype: u16) -> SymBuf {
    let mut m = builder::stats_request("h1");
    m.set_u16(8, stype);
    m.set_u16(10, 0);
    for i in 12..m.len() {
        if m.u8(i).as_bv_const().is_none() {
            m.set_u8(i, 0);
        }
    }
    m
}

// ------------------------------------------------------------ statistics

#[test]
fn desc_stats_reply_differs_between_agents() {
    // The descriptions legitimately differ (vendor strings) — a real,
    // benign divergence SOFT reports.
    let (ev_ref, _) = run_seq(
        AgentKind::Reference,
        vec![stats_req(stats_type::DESC)],
        false,
        None,
    );
    let (ev_ovs, _) = run_seq(
        AgentKind::OpenVSwitch,
        vec![stats_req(stats_type::DESC)],
        false,
        None,
    );
    let body = |ev: &[TraceEvent]| {
        ev.iter()
            .find_map(|e| match e {
                TraceEvent::OfReply {
                    msg_type: 17, body, ..
                } => body.as_concrete(),
                _ => None,
            })
            .expect("desc reply")
    };
    assert_ne!(body(&ev_ref), body(&ev_ovs));
}

#[test]
fn flow_stats_reflect_installed_entries() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, 0, 3, (0, 0));
    let mut req = stats_req(stats_type::FLOW);
    req.set_u8(52, 0xff); // all tables
    req.set_u16(54, soft_openflow::consts::port::OFPP_NONE);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        // Empty table: empty body.
        let (ev, _) = run_seq(kind, vec![req.clone()], false, None);
        let empty_len = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::OfReply {
                    msg_type: 17, body, ..
                } => Some(body.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(empty_len, 0, "{kind:?} empty table");
        // One entry: non-empty body.
        let (ev, _) = run_seq(kind, vec![install.clone(), req.clone()], false, None);
        let len = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::OfReply {
                    msg_type: 17, body, ..
                } => Some(body.len()),
                _ => None,
            })
            .unwrap();
        assert!(len > 0, "{kind:?} with one flow");
    }
}

#[test]
fn aggregate_stats_count_entries() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, 0, 3, (0, 0));
    let req = stats_req(stats_type::AGGREGATE);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![install.clone(), req.clone()], false, None);
        let body = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::OfReply {
                    msg_type: 17, body, ..
                } => body.as_concrete(),
                _ => None,
            })
            .unwrap();
        assert_eq!(body.last(), Some(&1), "{kind:?} flow count");
    }
}

#[test]
fn unknown_stats_type_divergence() {
    let mut req = stats_req(0x00ee);
    req.set_u16(8, 0x00ee);
    let (ev_ref, _) = run_seq(AgentKind::Reference, vec![req.clone()], false, None);
    assert!(ev_ref.is_empty(), "reference silently ignores");
    let (ev_ovs, _) = run_seq(AgentKind::OpenVSwitch, vec![req], false, None);
    assert!(matches!(
        ev_ovs.first(),
        Some(TraceEvent::Error { etype, code, .. })
            if etype.as_bv_const() == Some(error_type::BAD_REQUEST as u64)
            && code.as_bv_const() == Some(bad_request::BAD_STAT as u64)
    ));
}

// ------------------------------------------------------ flow lifecycle

#[test]
fn delete_with_notification_flag_sends_flow_removed() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, flow_mod_flags::SEND_FLOW_REM, 3, (0, 0));
    let delete = concrete_flow_mod(flow_mod_cmd::DELETE, 0, 3, (0, 0));
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![install.clone(), delete.clone()], true, None);
        assert!(
            ev.iter().any(|e| matches!(
                e,
                TraceEvent::OfReply { msg_type: t, .. } if *t == msg_type::FLOW_REMOVED
            )),
            "{kind:?} must notify on delete"
        );
        // Probe misses after deletion.
        assert!(ev.iter().any(|e| matches!(
            e,
            TraceEvent::PacketIn { reason, .. } if reason.as_bv_const() == Some(0)
        )));
    }
}

#[test]
fn delete_without_flag_is_silent() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, 0, 3, (0, 0));
    let delete = concrete_flow_mod(flow_mod_cmd::DELETE, 0, 3, (0, 0));
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![install.clone(), delete.clone()], false, None);
        assert!(ev.is_empty(), "{kind:?}");
    }
}

#[test]
fn modify_replaces_actions_of_matching_entry() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, 0, 3, (0, 0));
    let modify = concrete_flow_mod(flow_mod_cmd::MODIFY, 0, 4, (0, 0));
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![install.clone(), modify.clone()], true, None);
        let port = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::DataPlaneTx { port, .. } => port.as_bv_const(),
                _ => None,
            })
            .expect("probe forwarded");
        assert_eq!(port, 4, "{kind:?} must forward per the modified actions");
    }
}

#[test]
fn check_overlap_rejects_duplicate_priority() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, 0, 3, (0, 0));
    let overlapping =
        concrete_flow_mod(flow_mod_cmd::ADD, flow_mod_flags::CHECK_OVERLAP, 4, (0, 0));
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![install.clone(), overlapping.clone()], true, None);
        assert!(
            ev.iter().any(|e| matches!(
                e,
                TraceEvent::Error { etype, code, .. }
                    if etype.as_bv_const() == Some(error_type::FLOW_MOD_FAILED as u64)
                    && code.as_bv_const()
                        == Some(soft_openflow::consts::flow_mod_failed::OVERLAP as u64)
            )),
            "{kind:?} must report OVERLAP"
        );
        // The original entry still forwards.
        assert!(ev.iter().any(|e| matches!(
            e,
            TraceEvent::DataPlaneTx { port, .. } if port.as_bv_const() == Some(3)
        )));
    }
}

// ----------------------------------------------------------- expiry

#[test]
fn hard_timeout_expires_flow() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, flow_mod_flags::SEND_FLOW_REM, 3, (0, 30));
    for kind in [
        AgentKind::Reference,
        AgentKind::OpenVSwitch,
        AgentKind::Modified,
    ] {
        let (ev, _) = run_seq(kind, vec![install.clone()], true, Some(60));
        assert!(
            ev.iter().any(|e| matches!(
                e,
                TraceEvent::OfReply { msg_type: t, .. } if *t == msg_type::FLOW_REMOVED
            )),
            "{kind:?}: hard-timeout notification must be sent (M2 only \
             suppresses the idle one)"
        );
        assert!(
            ev.iter().any(|e| matches!(
                e,
                TraceEvent::PacketIn { reason, .. } if reason.as_bv_const() == Some(0)
            )),
            "{kind:?}: the probe must miss after expiry"
        );
    }
}

#[test]
fn idle_timeout_notification_suppressed_only_in_modified() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, flow_mod_flags::SEND_FLOW_REM, 3, (30, 0));
    let notified = |kind| {
        let (ev, _) = run_seq(kind, vec![install.clone()], false, Some(60));
        ev.iter().any(|e| {
            matches!(
                e,
                TraceEvent::OfReply { msg_type: t, .. } if *t == msg_type::FLOW_REMOVED
            )
        })
    };
    assert!(notified(AgentKind::Reference));
    assert!(notified(AgentKind::OpenVSwitch));
    assert!(
        !notified(AgentKind::Modified),
        "M2 suppresses the idle notification"
    );
}

#[test]
fn unexpired_flow_survives_clock_advance() {
    let install = concrete_flow_mod(flow_mod_cmd::ADD, 0, 3, (0, 120));
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![install.clone()], true, Some(60));
        assert!(
            ev.iter().any(|e| matches!(
                e,
                TraceEvent::DataPlaneTx { port, .. } if port.as_bv_const() == Some(3)
            )),
            "{kind:?}: flow with a 120s hard timeout must survive t=60"
        );
    }
}

// ------------------------------------------------------------- misc

#[test]
fn echo_reply_carries_payload() {
    let mut m = SymBuf::concrete(&[
        1,
        msg_type::ECHO_REQUEST,
        0,
        12,
        0,
        0,
        0,
        9,
        0xde,
        0xad,
        0xbe,
        0xef,
    ]);
    m.set_u16(2, 12);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![m.clone()], false, None);
        let body = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::OfReply {
                    msg_type: t, body, ..
                } if *t == msg_type::ECHO_REPLY => body.as_concrete(),
                _ => None,
            })
            .expect("echo reply");
        assert_eq!(body, vec![0xde, 0xad, 0xbe, 0xef]);
    }
}

#[test]
fn port_mod_validates_port_range() {
    let mut ok = SymBuf::concrete(&[0u8; 32]);
    ok.set_u8(0, 1);
    ok.set_u8(1, msg_type::PORT_MOD);
    ok.set_u16(2, 32);
    ok.set_u16(8, 2);
    let mut bad = ok.clone();
    bad.set_u16(8, 99);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![ok.clone()], false, None);
        assert!(ev.is_empty(), "{kind:?} valid port mod is silent");
        let (ev, _) = run_seq(kind, vec![bad.clone()], false, None);
        assert!(
            matches!(ev.first(), Some(TraceEvent::Error { etype, .. })
                if etype.as_bv_const() == Some(error_type::PORT_MOD_FAILED as u64)),
            "{kind:?} invalid port mod errors"
        );
    }
}

#[test]
fn incomplete_frame_is_silently_buffered() {
    // Length field larger than the actual bytes: the connection layer
    // keeps waiting — no output.
    let mut m = builder::concrete_header_only(msg_type::ECHO_REQUEST, 1);
    m.set_u16(2, 100);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![m.clone()], false, None);
        assert!(ev.is_empty(), "{kind:?}");
    }
}

#[test]
fn runt_length_field_rejected() {
    let mut m = builder::concrete_header_only(msg_type::ECHO_REQUEST, 1);
    m.set_u16(2, 4); // less than a header
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_seq(kind, vec![m.clone()], false, None);
        assert!(
            matches!(ev.first(), Some(TraceEvent::Error { code, .. })
                if code.as_bv_const() == Some(bad_request::BAD_LEN as u64)),
            "{kind:?}"
        );
    }
}
