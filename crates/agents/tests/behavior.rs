//! Behavioural unit tests for the agent models, driven through the
//! symbolic engine with *concrete* inputs (single-path explorations), plus
//! instrumentation-consistency checks.

use soft_agents::{AgentKind, Mutations, OpenFlowAgent, ReferenceSwitch};
use soft_dataplane::{tcp_probe, Packet, ProbeSpec};
use soft_openflow::builder::{self, ActionSpec, FlowModSpec};
use soft_openflow::consts::{bad_action, bad_request, error_type, msg_type, port as ofpp};
use soft_protocol::TraceEvent;
use soft_sym::{explore, ExplorerConfig, PathOutcome, SymBuf};

/// Run one agent on a concrete message sequence; returns (events, crashed).
fn run_concrete(kind: AgentKind, msgs: Vec<SymBuf>, probe: bool) -> (Vec<TraceEvent>, bool) {
    let ex = explore(&ExplorerConfig::default(), |ctx| {
        let mut a = kind.make();
        a.on_connect(ctx)?;
        for m in &msgs {
            a.handle_message(ctx, m)?;
        }
        if probe {
            a.handle_packet(ctx, 1, &tcp_probe())?;
        }
        Ok(())
    });
    assert_eq!(ex.stats.paths, 1, "concrete input must be single-path");
    let p = &ex.paths[0];
    let crashed = matches!(p.outcome, PathOutcome::Crashed(_));
    (p.trace.clone(), crashed)
}

fn packet_out_with(actions: &[ActionSpec]) -> SymBuf {
    let payload = tcp_probe().buf.as_concrete().unwrap();
    let mut m = builder::packet_out("c0", actions, &payload);
    // Concretize the remaining symbolic fields: unbuffered, in_port 1.
    m.set_u32(8, soft_openflow::consts::NO_BUFFER);
    m.set_u16(12, 1);
    // Concretize any leftover symbolic action argument bytes to zero.
    for i in 0..m.len() {
        if m.u8(i).as_bv_const().is_none() {
            m.set_u8(i, 0);
        }
    }
    m
}

fn first_error(events: &[TraceEvent]) -> Option<(u64, u64)> {
    events.iter().find_map(|e| match e {
        TraceEvent::Error { etype, code, .. } => {
            Some((etype.as_bv_const().unwrap(), code.as_bv_const().unwrap()))
        }
        _ => None,
    })
}

// ------------------------------------------------------------ crashes

#[test]
fn reference_crashes_on_packet_out_to_controller() {
    let mut m = packet_out_with(&[ActionSpec::Output(0)]);
    m.set_u16(20, ofpp::OFPP_CONTROLLER); // action 0 port
    let (_, crashed) = run_concrete(AgentKind::Reference, vec![m.clone()], false);
    assert!(crashed, "reference must crash");
    let (ev, crashed) = run_concrete(AgentKind::OpenVSwitch, vec![m], false);
    assert!(!crashed, "ovs must survive");
    assert!(ev.iter().any(|e| matches!(e, TraceEvent::PacketIn { .. })));
}

#[test]
fn reference_crashes_on_set_vlan_in_packet_out() {
    let m = packet_out_with(&[ActionSpec::SetVlanVid(5), ActionSpec::Output(2)]);
    let (_, crashed) = run_concrete(AgentKind::Reference, vec![m.clone()], false);
    assert!(crashed);
    let (ev, crashed) = run_concrete(AgentKind::OpenVSwitch, vec![m], false);
    assert!(!crashed);
    // OVS applies the vlan and forwards on port 2; the frame grew by the tag.
    let tx = ev.iter().find_map(|e| match e {
        TraceEvent::DataPlaneTx { port, data } => Some((port.as_bv_const().unwrap(), data.len())),
        _ => None,
    });
    assert_eq!(tx, Some((2, 72)));
}

#[test]
fn reference_survives_set_vlan_via_flow_mod_probe() {
    // The crash is specific to the Packet Out execution path: the same
    // action installed via Flow Mod and applied to a probe is fine.
    let spec = FlowModSpec {
        actions: vec![ActionSpec::SetVlanVid(0x1abc), ActionSpec::Output(3)],
        command: Some(0),
        buffer_id: Some(soft_openflow::consts::NO_BUFFER),
        flags: Some(0),
        match_mode: soft_openflow::builder::MatchMode::WildcardAll,
        ..FlowModSpec::symbolic_default()
    };
    let m = builder::flow_mod("c1", &spec);
    let (ev, crashed) = run_concrete(AgentKind::Reference, vec![m], true);
    assert!(!crashed);
    // Reference auto-masks the out-of-range vid to 12 bits.
    let tx_data = ev.iter().find_map(|e| match e {
        TraceEvent::DataPlaneTx { data, .. } => Some(data.clone()),
        _ => None,
    });
    let data = tx_data.expect("probe must be forwarded");
    let pkt = Packet::parse(&data).unwrap();
    assert_eq!(
        pkt.dl_vlan().as_bv_const(),
        Some(0x0abc),
        "vid masked to 12 bits"
    );
}

#[test]
fn ovs_silently_drops_flow_mod_with_bad_vid() {
    let spec = FlowModSpec {
        actions: vec![ActionSpec::SetVlanVid(0x1abc), ActionSpec::Output(3)],
        command: Some(0),
        buffer_id: Some(soft_openflow::consts::NO_BUFFER),
        flags: Some(0),
        match_mode: soft_openflow::builder::MatchMode::WildcardAll,
        ..FlowModSpec::symbolic_default()
    };
    let m = builder::flow_mod("c2", &spec);
    let (ev, crashed) = run_concrete(AgentKind::OpenVSwitch, vec![m], true);
    assert!(!crashed);
    // No error, no install: the probe misses and goes to the controller.
    assert!(first_error(&ev).is_none(), "silent drop means no error");
    assert!(
        ev.iter().any(|e| matches!(
            e,
            TraceEvent::PacketIn { reason, .. } if reason.as_bv_const() == Some(0)
        )),
        "probe must miss (NO_MATCH packet-in)"
    );
}

#[test]
fn ovs_silently_drops_bad_tos_and_pcp() {
    for bad in [ActionSpec::SetNwTos(0x03), ActionSpec::SetVlanPcp(8)] {
        let m = packet_out_with(&[bad, ActionSpec::Output(2)]);
        let (ev, crashed) = run_concrete(AgentKind::OpenVSwitch, vec![m.clone()], false);
        assert!(!crashed);
        assert!(ev.is_empty(), "whole message silently ignored");
        // Reference: masks and forwards (ToS) — pcp also masked.
        let (ev, crashed) = run_concrete(AgentKind::Reference, vec![m], false);
        assert!(!crashed);
        assert!(
            ev.iter()
                .any(|e| matches!(e, TraceEvent::DataPlaneTx { .. })),
            "reference forwards after masking"
        );
    }
}

// ----------------------------------------------------- port validation

#[test]
fn max_port_validation_differs() {
    let mut m = packet_out_with(&[ActionSpec::Output(0)]);
    m.set_u16(20, 0xff80); // above OFPP_MAX, below the specials
    let (ev, _) = run_concrete(AgentKind::Reference, vec![m.clone()], false);
    assert!(
        ev.iter().any(|e| matches!(
            e,
            TraceEvent::DataPlaneTx { port, .. } if port.as_bv_const() == Some(0xff80)
        )),
        "reference forwards to any non-special port"
    );
    let (ev, _) = run_concrete(AgentKind::OpenVSwitch, vec![m], false);
    assert_eq!(
        first_error(&ev),
        Some((
            error_type::BAD_ACTION as u64,
            bad_action::BAD_OUT_PORT as u64
        )),
        "ovs validates the maximum port"
    );
}

#[test]
fn normal_port_support_differs() {
    let mut m = packet_out_with(&[ActionSpec::Output(0)]);
    m.set_u16(20, ofpp::OFPP_NORMAL);
    let (ev, _) = run_concrete(AgentKind::Reference, vec![m.clone()], false);
    assert_eq!(
        first_error(&ev),
        Some((
            error_type::BAD_ACTION as u64,
            bad_action::BAD_OUT_PORT as u64
        ))
    );
    let (ev, _) = run_concrete(AgentKind::OpenVSwitch, vec![m], false);
    assert!(ev
        .iter()
        .any(|e| matches!(e, TraceEvent::NormalForward { .. })));
}

#[test]
fn both_agents_flood_and_all() {
    for special in [ofpp::OFPP_FLOOD, ofpp::OFPP_ALL] {
        let mut m = packet_out_with(&[ActionSpec::Output(0)]);
        m.set_u16(20, special);
        for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
            let (ev, crashed) = run_concrete(kind, vec![m.clone()], false);
            assert!(!crashed);
            assert!(
                ev.iter().any(|e| matches!(
                    e,
                    TraceEvent::Flood {
                        exclude_ingress: true,
                        ..
                    }
                )),
                "{kind:?} floods excluding ingress for port {special:#x}"
            );
        }
    }
}

#[test]
fn in_port_output_uses_message_in_port() {
    let mut m = packet_out_with(&[ActionSpec::Output(0)]);
    m.set_u16(20, ofpp::OFPP_IN_PORT);
    m.set_u16(12, 3); // in_port
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_concrete(kind, vec![m.clone()], false);
        assert!(ev.iter().any(|e| matches!(
            e,
            TraceEvent::DataPlaneTx { port, .. } if port.as_bv_const() == Some(3)
        )));
    }
}

#[test]
fn output_to_ingress_is_silently_skipped() {
    let mut m = packet_out_with(&[ActionSpec::Output(1)]);
    m.set_u16(12, 1); // in_port == out_port, not via OFPP_IN_PORT
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_concrete(kind, vec![m.clone()], false);
        assert!(ev.is_empty(), "{kind:?} must skip tx back out the ingress");
    }
}

// --------------------------------------------------------- buffer ids

#[test]
fn buffer_unknown_handling_differs() {
    let mut m = packet_out_with(&[ActionSpec::Output(2)]);
    m.set_u32(8, 7); // nonexistent buffer
    let (ev, _) = run_concrete(AgentKind::Reference, vec![m.clone()], false);
    assert!(ev.is_empty(), "reference swallows the buffer error");
    let (ev, _) = run_concrete(AgentKind::OpenVSwitch, vec![m], false);
    assert_eq!(
        first_error(&ev),
        Some((
            error_type::BAD_REQUEST as u64,
            bad_request::BUFFER_UNKNOWN as u64
        ))
    );
}

#[test]
fn flow_mod_buffer_unknown_still_installs_in_both() {
    let spec = FlowModSpec {
        actions: vec![ActionSpec::Output(3)],
        command: Some(0),
        buffer_id: Some(42), // nonexistent
        flags: Some(0),
        match_mode: soft_openflow::builder::MatchMode::WildcardAll,
        ..FlowModSpec::symbolic_default()
    };
    let m = builder::flow_mod("c3", &spec);
    // Reference: no error; probe hits the installed flow.
    let (ev, _) = run_concrete(AgentKind::Reference, vec![m.clone()], true);
    assert!(first_error(&ev).is_none());
    assert!(ev.iter().any(|e| matches!(
        e, TraceEvent::DataPlaneTx { port, .. } if port.as_bv_const() == Some(3)
    )));
    // OVS: error AND installed flow.
    let (ev, _) = run_concrete(AgentKind::OpenVSwitch, vec![m], true);
    assert_eq!(
        first_error(&ev),
        Some((
            error_type::BAD_REQUEST as u64,
            bad_request::BUFFER_UNKNOWN as u64
        ))
    );
    assert!(ev.iter().any(|e| matches!(
        e, TraceEvent::DataPlaneTx { port, .. } if port.as_bv_const() == Some(3)
    )));
}

// ----------------------------------------------------------- messages

#[test]
fn echo_features_config_barrier_replies() {
    for kind in [
        AgentKind::Reference,
        AgentKind::OpenVSwitch,
        AgentKind::Modified,
    ] {
        let (ev, crashed) = run_concrete(kind, builder::concrete_suite(9), false);
        assert!(!crashed);
        let kinds: Vec<u8> = ev
            .iter()
            .filter_map(|e| match e {
                TraceEvent::OfReply { msg_type, .. } => Some(*msg_type),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                msg_type::ECHO_REPLY,
                msg_type::FEATURES_REPLY,
                msg_type::GET_CONFIG_REPLY,
                msg_type::BARRIER_REPLY
            ],
            "{kind:?}"
        );
    }
}

#[test]
fn set_config_changes_reported_config() {
    let mut sc = builder::set_config("c4");
    sc.set_u16(8, 1); // frag drop
    sc.set_u16(10, 10); // miss_send_len 10
    let get = builder::concrete_header_only(msg_type::GET_CONFIG_REQUEST, 5);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_concrete(kind, vec![sc.clone(), get.clone()], false);
        let reply = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::OfReply {
                    msg_type: 8,
                    fields,
                    ..
                } => Some(fields.clone()),
                _ => None,
            })
            .expect("get-config reply");
        let msl = reply
            .iter()
            .find(|(n, _)| *n == "miss_send_len")
            .map(|(_, t)| t.as_bv_const().unwrap());
        assert_eq!(msl, Some(10));
    }
}

#[test]
fn set_config_truncates_packet_in_data() {
    let mut sc = builder::set_config("c5");
    sc.set_u16(8, 0);
    sc.set_u16(10, 10);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_concrete(kind, vec![sc.clone()], true);
        let data_len = ev
            .iter()
            .find_map(|e| match e {
                TraceEvent::PacketIn { data, .. } => Some(data.len()),
                _ => None,
            })
            .expect("probe must go to the controller");
        assert_eq!(data_len, 10, "{kind:?} must truncate to miss_send_len");
    }
}

#[test]
fn bad_version_rejected() {
    let mut m = builder::concrete_header_only(msg_type::ECHO_REQUEST, 1);
    m.set_u8(0, 9); // bogus version
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_concrete(kind, vec![m.clone()], false);
        assert_eq!(
            first_error(&ev),
            Some((
                error_type::BAD_REQUEST as u64,
                bad_request::BAD_VERSION as u64
            ))
        );
    }
}

#[test]
fn unknown_message_type_rejected() {
    let mut m = builder::concrete_header_only(42, 1);
    m.set_u8(1, 42);
    for kind in [AgentKind::Reference, AgentKind::OpenVSwitch] {
        let (ev, _) = run_concrete(kind, vec![m.clone()], false);
        assert_eq!(
            first_error(&ev),
            Some((error_type::BAD_REQUEST as u64, bad_request::BAD_TYPE as u64))
        );
    }
}

// ----------------------------------------------------------- mutations

#[test]
fn modified_switch_mutation_effects() {
    // M3: flood includes ingress.
    let mut m = packet_out_with(&[ActionSpec::Output(0)]);
    m.set_u16(20, ofpp::OFPP_FLOOD);
    let (ev, _) = run_concrete(AgentKind::Modified, vec![m], false);
    assert!(ev.iter().any(|e| matches!(
        e,
        TraceEvent::Flood {
            exclude_ingress: false,
            ..
        }
    )));

    // M4: ports above 1024 rejected.
    let mut m = packet_out_with(&[ActionSpec::Output(0)]);
    m.set_u16(20, 2000);
    let (ev, _) = run_concrete(AgentKind::Modified, vec![m], false);
    assert_eq!(
        first_error(&ev),
        Some((
            error_type::BAD_ACTION as u64,
            bad_action::BAD_OUT_PORT as u64
        ))
    );

    // M5: unknown action type reported as BAD_LEN.
    let mut m = packet_out_with(&[ActionSpec::Output(2)]);
    m.set_u16(16, 0x00ee); // unknown action type
    let (ev, _) = run_concrete(AgentKind::Modified, vec![m], false);
    assert_eq!(
        first_error(&ev),
        Some((error_type::BAD_ACTION as u64, bad_action::BAD_LEN as u64))
    );
}

#[test]
fn mutations_default_to_off() {
    let plain = ReferenceSwitch::new();
    assert_eq!(plain.name(), "Reference Switch");
    let modified = ReferenceSwitch::with_mutations(Mutations::all_injected());
    assert_eq!(modified.name(), "Modified Switch");
}

// ------------------------------------------------------ instrumentation

#[test]
fn universes_cover_all_labels() {
    // Every label any exploration covers must be declared in the agent's
    // universe — catches typos and a stale `universe_data.rs`.
    let payload = tcp_probe().buf.as_concrete().unwrap();
    let msgs = vec![
        builder::packet_out(
            "u0",
            &[ActionSpec::Symbolic, ActionSpec::SymbolicOutput],
            &payload,
        ),
        builder::flow_mod("u1", &FlowModSpec::symbolic_default()),
        builder::stats_request("u2"),
        builder::set_config("u3"),
        builder::queue_config_request("u4"),
        builder::short_symbolic("u5"),
    ];
    // One exploration per message: exploring the whole sequence at once
    // would multiply the per-message path counts into an intractable
    // product. Coverage, not path enumeration, is the point here.
    for kind in AgentKind::all() {
        let universe = kind.make().universe();
        for m in &msgs {
            let ex = explore(&ExplorerConfig::default(), |ctx| {
                let mut a = kind.make();
                a.on_connect(ctx)?;
                a.handle_message(ctx, m)?;
                a.handle_packet(ctx, 1, &tcp_probe())?;
                Ok(())
            });
            let bad = ex.coverage.validate(&universe);
            assert!(bad.is_empty(), "{kind:?} has undeclared labels: {bad:?}");
        }
    }
}

#[test]
fn vlan_tagged_probe_fields_visible_to_match() {
    // Regression guard for tag-aware field extraction used in matching.
    let spec = ProbeSpec {
        vlan: Some((3, 0x123)),
        ..Default::default()
    };
    let p = Packet::from_spec(&spec);
    assert_eq!(p.dl_vlan().as_bv_const(), Some(0x123));
    assert_eq!(p.dl_vlan_pcp().as_bv_const(), Some(3));
}
