//! Code coverage accounting.
//!
//! The paper reports instruction and branch coverage per test (Table 4) and
//! coverage as a function of the number of symbolic messages (Figure 4),
//! scoped to "the sections of OpenFlow agent's code relevant to OpenFlow
//! processing" plus a note that ~25% of code (CLI parsing, cleanup, dead
//! code, logging) is unreachable from standard execution.
//!
//! Our agents are instrumented explicitly: every basic block carries a
//! `ctx.cover("label")` call and every symbolic branch a stable site label.
//! Each agent declares its *coverage universe* — the full label sets,
//! including labels for code regions tests can never reach — so coverage
//! percentages have an exact denominator.

use std::collections::HashSet;

/// Static declaration of an agent's instrumented code regions.
#[derive(Debug, Clone, Default)]
pub struct CoverageUniverse {
    /// All instruction-block labels in the agent, reachable or not.
    pub blocks: Vec<&'static str>,
    /// All branch-site labels in the agent.
    pub branch_sites: Vec<&'static str>,
}

impl CoverageUniverse {
    /// Number of instruction blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of branch directions (two per site).
    pub fn num_branch_dirs(&self) -> usize {
        2 * self.branch_sites.len()
    }
}

/// Accumulated coverage across one or more explorations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Instruction blocks hit at least once.
    pub blocks: HashSet<&'static str>,
    /// (site, direction) pairs hit at least once.
    pub branches: HashSet<(&'static str, bool)>,
}

impl Coverage {
    /// Empty coverage.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Merge another coverage set into this one.
    pub fn merge(&mut self, other: &Coverage) {
        self.blocks.extend(other.blocks.iter().copied());
        self.branches.extend(other.branches.iter().copied());
    }

    /// Instruction coverage in percent relative to `universe`.
    pub fn instruction_pct(&self, universe: &CoverageUniverse) -> f64 {
        if universe.blocks.is_empty() {
            return 0.0;
        }
        100.0 * self.blocks.len() as f64 / universe.num_blocks() as f64
    }

    /// Branch coverage in percent relative to `universe`.
    pub fn branch_pct(&self, universe: &CoverageUniverse) -> f64 {
        if universe.branch_sites.is_empty() {
            return 0.0;
        }
        100.0 * self.branches.len() as f64 / universe.num_branch_dirs() as f64
    }

    /// Validate that every covered label exists in the universe; returns the
    /// offending labels. Catches typos between instrumentation and universe.
    pub fn validate(&self, universe: &CoverageUniverse) -> Vec<String> {
        let blocks: HashSet<_> = universe.blocks.iter().copied().collect();
        let sites: HashSet<_> = universe.branch_sites.iter().copied().collect();
        let mut bad: Vec<String> = Vec::new();
        for b in &self.blocks {
            if !blocks.contains(b) {
                bad.push(format!("block '{b}' not in universe"));
            }
        }
        for (s, _) in &self.branches {
            if !sites.contains(s) {
                bad.push(format!("branch site '{s}' not in universe"));
            }
        }
        bad.sort();
        bad.dedup();
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> CoverageUniverse {
        CoverageUniverse {
            blocks: vec!["a", "b", "c", "d"],
            branch_sites: vec!["s1", "s2"],
        }
    }

    #[test]
    fn percentages() {
        let mut c = Coverage::new();
        c.blocks.insert("a");
        c.blocks.insert("b");
        c.branches.insert(("s1", true));
        let u = universe();
        assert_eq!(c.instruction_pct(&u), 50.0);
        assert_eq!(c.branch_pct(&u), 25.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut c1 = Coverage::new();
        c1.blocks.insert("a");
        let mut c2 = Coverage::new();
        c2.blocks.insert("b");
        c2.branches.insert(("s2", false));
        c1.merge(&c2);
        assert_eq!(c1.blocks.len(), 2);
        assert_eq!(c1.branches.len(), 1);
    }

    #[test]
    fn validate_flags_unknown_labels() {
        let mut c = Coverage::new();
        c.blocks.insert("zz");
        c.branches.insert(("s9", true));
        let bad = c.validate(&universe());
        assert_eq!(bad.len(), 2);
    }

    #[test]
    fn empty_universe_is_zero_pct() {
        let c = Coverage::new();
        let u = CoverageUniverse::default();
        assert_eq!(c.instruction_pct(&u), 0.0);
        assert_eq!(c.branch_pct(&u), 0.0);
    }
}
