//! Symbolic byte buffers.
//!
//! OpenFlow messages and data-plane packets are byte strings in which any
//! byte may be concrete or symbolic. [`SymBuf`] models that: a vector of
//! 8-bit terms. Multi-byte field reads concatenate bytes in network order —
//! and, following the paper's §4.1 simplification, `ntohs`/`htons` are the
//! identity, so there is exactly one byte-order shuffle (the one performed
//! here) instead of two.

use soft_smt::Term;

/// A byte buffer whose bytes are 8-bit terms (concrete or symbolic).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymBuf {
    bytes: Vec<Term>,
}

impl SymBuf {
    /// Buffer of `len` fully symbolic bytes named `{prefix}.b{i}`.
    pub fn symbolic(prefix: &str, len: usize) -> SymBuf {
        SymBuf {
            bytes: (0..len)
                .map(|i| Term::var(format!("{prefix}.b{i}"), 8))
                .collect(),
        }
    }

    /// Buffer holding the given concrete bytes.
    pub fn concrete(data: &[u8]) -> SymBuf {
        SymBuf {
            bytes: data.iter().map(|&b| Term::bv_const(8, b as u64)).collect(),
        }
    }

    /// Empty buffer.
    pub fn empty() -> SymBuf {
        SymBuf { bytes: Vec::new() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the buffer has no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw byte terms.
    pub fn bytes(&self) -> &[Term] {
        &self.bytes
    }

    /// Append another buffer.
    pub fn extend(&mut self, other: &SymBuf) {
        self.bytes.extend(other.bytes.iter().cloned());
    }

    /// Append a single byte term.
    pub fn push(&mut self, byte: Term) {
        assert_eq!(byte.width(), 8, "SymBuf bytes must be 8-bit");
        self.bytes.push(byte);
    }

    /// Sub-buffer `[start, start+len)`.
    pub fn slice(&self, start: usize, len: usize) -> SymBuf {
        SymBuf {
            bytes: self.bytes[start..start + len].to_vec(),
        }
    }

    /// Read one byte as a term.
    pub fn u8(&self, off: usize) -> Term {
        self.bytes[off].clone()
    }

    /// Read a 16-bit big-endian field.
    pub fn u16(&self, off: usize) -> Term {
        self.bytes[off].clone().concat(self.bytes[off + 1].clone())
    }

    /// Read a 32-bit big-endian field.
    pub fn u32(&self, off: usize) -> Term {
        self.u16(off).concat(self.u16(off + 2))
    }

    /// Read a 48-bit big-endian field (MAC address).
    pub fn u48(&self, off: usize) -> Term {
        self.u32(off).concat(self.u16(off + 4))
    }

    /// Read a 64-bit big-endian field.
    pub fn u64(&self, off: usize) -> Term {
        // Build as ((b0++b1)++(b2++b3)) ++ ((b4++b5)++(b6++b7)) to stay
        // within the 64-bit term width at every step.
        self.u32(off).concat(self.u32(off + 4))
    }

    /// Overwrite one byte with a concrete value.
    pub fn set_u8(&mut self, off: usize, v: u8) {
        self.bytes[off] = Term::bv_const(8, v as u64);
    }

    /// Overwrite one byte with an arbitrary 8-bit term.
    pub fn set_byte_term(&mut self, off: usize, v: Term) {
        assert_eq!(v.width(), 8, "SymBuf bytes must be 8-bit");
        self.bytes[off] = v;
    }

    /// Overwrite a 16-bit big-endian field with a concrete value.
    pub fn set_u16(&mut self, off: usize, v: u16) {
        self.set_u8(off, (v >> 8) as u8);
        self.set_u8(off + 1, v as u8);
    }

    /// Overwrite a 32-bit big-endian field with a concrete value.
    pub fn set_u32(&mut self, off: usize, v: u32) {
        self.set_u16(off, (v >> 16) as u16);
        self.set_u16(off + 2, v as u16);
    }

    /// Overwrite a 16-bit field with an arbitrary term (split into bytes).
    pub fn set_u16_term(&mut self, off: usize, v: &Term) {
        assert_eq!(v.width(), 16);
        self.bytes[off] = v.clone().extract(15, 8);
        self.bytes[off + 1] = v.clone().extract(7, 0);
    }

    /// Overwrite a 32-bit field with an arbitrary term (split into bytes).
    pub fn set_u32_term(&mut self, off: usize, v: &Term) {
        assert_eq!(v.width(), 32);
        for i in 0..4 {
            let hi = 31 - 8 * i as u32;
            self.bytes[off + i] = v.clone().extract(hi, hi - 7);
        }
    }

    /// If every byte is concrete, return the raw bytes.
    pub fn as_concrete(&self) -> Option<Vec<u8>> {
        self.bytes
            .iter()
            .map(|b| b.as_bv_const().map(|v| v as u8))
            .collect()
    }

    /// Concretize under an assignment (e.g. a solver model).
    pub fn concretize(&self, model: &soft_smt::Assignment) -> Vec<u8> {
        self.bytes.iter().map(|b| model.eval_bv(b) as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_smt::Assignment;

    #[test]
    fn concrete_roundtrip() {
        let b = SymBuf::concrete(&[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.as_concrete(), Some(vec![1, 2, 3, 4]));
        assert_eq!(b.u16(0).as_bv_const(), Some(0x0102));
        assert_eq!(b.u32(0).as_bv_const(), Some(0x01020304));
    }

    #[test]
    fn symbolic_bytes_named_by_offset() {
        let b = SymBuf::symbolic("m0", 3);
        assert_eq!(b.u8(2).as_var().unwrap().0, "m0.b2");
        assert!(b.as_concrete().is_none());
    }

    #[test]
    fn field_reads_compose_and_extract_back() {
        let b = SymBuf::symbolic("fx", 8);
        let f = b.u32(2);
        assert_eq!(f.width(), 32);
        assert_eq!(f.clone().extract(31, 24), b.u8(2));
        assert_eq!(f.extract(7, 0), b.u8(5));
        assert_eq!(b.u64(0).width(), 64);
        assert_eq!(b.u48(1).width(), 48);
    }

    #[test]
    fn set_fields_overwrite() {
        let mut b = SymBuf::symbolic("sx", 6);
        b.set_u16(0, 0xabcd);
        b.set_u32(2, 0x01020304);
        assert_eq!(b.u16(0).as_bv_const(), Some(0xabcd));
        assert_eq!(b.u32(2).as_bv_const(), Some(0x01020304));
    }

    #[test]
    fn set_term_splits_into_bytes() {
        let mut b = SymBuf::concrete(&[0; 4]);
        let v = Term::var("st.v", 16);
        b.set_u16_term(0, &v);
        assert_eq!(b.u16(0), v);
        let w = Term::var("st.w", 32);
        b.set_u32_term(0, &w);
        assert_eq!(b.u32(0), w);
    }

    #[test]
    fn concretize_under_model() {
        let b = SymBuf::symbolic("cz", 2);
        let mut m = Assignment::new();
        m.set("cz.b0", 0xde);
        m.set("cz.b1", 0xad);
        assert_eq!(b.concretize(&m), vec![0xde, 0xad]);
    }

    #[test]
    fn slice_and_extend() {
        let mut a = SymBuf::concrete(&[1, 2]);
        let b = SymBuf::concrete(&[3, 4, 5]);
        a.extend(&b);
        assert_eq!(a.len(), 5);
        let s = a.slice(1, 3);
        assert_eq!(s.as_concrete(), Some(vec![2, 3, 4]));
    }
}
