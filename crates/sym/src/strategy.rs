//! Path-selection strategies.
//!
//! Cloud9's default strategy — the one the paper uses (§4.1) — interleaves
//! a random path choice with a coverage-optimizing choice. The paper notes
//! the strategy has little impact for SOFT because input structuring makes
//! exploration exhaustive; the `ablation_strategy` bench verifies exactly
//! that claim on our engine.

use crate::coverage::Coverage;
use crate::ctx::Pending;

/// Which pending path to run next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first (stack order).
    Dfs,
    /// Breadth-first (queue order).
    Bfs,
    /// Uniformly random among pending paths.
    Random,
    /// Cloud9 default: alternate random choice with preferring the pending
    /// path whose branch site has the least branch coverage so far.
    CoverageInterleaved,
}

/// Tiny deterministic xorshift64* PRNG; keeps the engine dependency-free
/// and exploration reproducible from a seed.
#[derive(Debug, Clone)]
pub(crate) struct XorShift {
    state: u64,
}

impl XorShift {
    pub fn new(seed: u64) -> Self {
        XorShift { state: seed.max(1) }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The frontier of scheduled-but-unexplored paths.
pub(crate) struct Frontier {
    items: Vec<Pending>,
    strategy: Strategy,
    rng: XorShift,
    /// Flip-flop for the interleaved strategy.
    tick: bool,
}

impl Frontier {
    pub fn new(strategy: Strategy, seed: u64) -> Self {
        Frontier {
            items: Vec::new(),
            strategy,
            rng: XorShift::new(seed),
            tick: false,
        }
    }

    pub fn push(&mut self, p: Pending) {
        self.items.push(p);
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pop the next pending path according to the strategy.
    pub fn pop(&mut self, coverage: &Coverage) -> Option<Pending> {
        if self.items.is_empty() {
            return None;
        }
        let idx = match self.strategy {
            Strategy::Dfs => self.items.len() - 1,
            Strategy::Bfs => 0,
            Strategy::Random => self.rng.below(self.items.len()),
            Strategy::CoverageInterleaved => {
                self.tick = !self.tick;
                if self.tick {
                    self.rng.below(self.items.len())
                } else {
                    // Prefer the site with the fewest covered directions.
                    let covered_dirs = |site: &'static str| {
                        coverage.branches.contains(&(site, false)) as usize
                            + coverage.branches.contains(&(site, true)) as usize
                    };
                    let mut best = 0;
                    let mut best_score = usize::MAX;
                    for (i, p) in self.items.iter().enumerate() {
                        let s = covered_dirs(p.site);
                        if s < best_score {
                            best_score = s;
                            best = i;
                        }
                    }
                    best
                }
            }
        };
        Some(self.items.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(site: &'static str, d: bool) -> Pending {
        Pending {
            prefix: vec![d],
            site,
            replay: false,
        }
    }

    #[test]
    fn dfs_pops_lifo() {
        let mut f = Frontier::new(Strategy::Dfs, 1);
        f.push(pending("a", false));
        f.push(pending("b", false));
        let c = Coverage::new();
        assert_eq!(f.pop(&c).unwrap().site, "b");
        assert_eq!(f.pop(&c).unwrap().site, "a");
        assert!(f.pop(&c).is_none());
    }

    #[test]
    fn bfs_pops_fifo() {
        let mut f = Frontier::new(Strategy::Bfs, 1);
        f.push(pending("a", false));
        f.push(pending("b", false));
        let c = Coverage::new();
        assert_eq!(f.pop(&c).unwrap().site, "a");
        assert_eq!(f.pop(&c).unwrap().site, "b");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let order = |seed| {
            let mut f = Frontier::new(Strategy::Random, seed);
            for s in ["a", "b", "c", "d"] {
                f.push(pending(s, false));
            }
            let c = Coverage::new();
            let mut got = vec![];
            while let Some(p) = f.pop(&c) {
                got.push(p.site);
            }
            got
        };
        assert_eq!(order(7), order(7));
    }

    #[test]
    fn coverage_strategy_prefers_uncovered_sites() {
        let mut f = Frontier::new(Strategy::CoverageInterleaved, 1);
        f.push(pending("covered", false));
        f.push(pending("fresh", false));
        let mut c = Coverage::new();
        c.branches.insert(("covered", true));
        c.branches.insert(("covered", false));
        // First pop is the random leg; second is the coverage leg. Run the
        // deterministic coverage leg by ticking once.
        let first = f.pop(&c).unwrap();
        let second = f.pop(&c).unwrap();
        // Between the two pops, one must be "fresh" chosen by coverage.
        assert!(first.site == "fresh" || second.site == "fresh");
    }

    #[test]
    fn xorshift_spreads() {
        let mut r = XorShift::new(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(r.below(10));
        }
        assert!(seen.len() >= 9, "poor spread: {seen:?}");
    }
}
