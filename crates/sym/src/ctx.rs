//! Per-path execution context.
//!
//! Agents under test are deterministic Rust functions that receive an
//! [`ExecCtx`] and drive all control flow that depends on symbolic data
//! through [`ExecCtx::branch`]. The engine explores the execution tree by
//! re-running the program with a forced *decision prefix* (the replay
//! technique of execution-generated testing): decisions inside the prefix
//! are replayed, the first fresh branch consults the constraint solver for
//! feasibility of both sides, schedules the flipped sibling, and continues.
//! Semantically this is the "logical fork" of classic symbolic execution.

use crate::coverage::Coverage;
use soft_smt::{SatResult, Solver, Term};
use std::time::Instant;

/// Why a path stopped before completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// The agent crashed (models a segfault / assertion in the C agent —
    /// SOFT found three such crashes in the Reference Switch).
    Crash(String),
    /// The engine abandoned the path (depth limit, infeasible assumption,
    /// solver resource exhaustion).
    Abort(String),
}

impl Stop {
    /// Convenience constructor for agent crashes.
    pub fn crash(msg: impl Into<String>) -> Stop {
        Stop::Crash(msg.into())
    }
}

/// Result type agent programs return.
pub type RunEnd = Result<(), Stop>;

/// A scheduled-but-unexplored sibling branch.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    /// Decision prefix to replay, including the flipped final decision.
    pub prefix: Vec<bool>,
    /// Branch site that created this pending path.
    pub site: &'static str,
    /// True for a journaled path re-executed on resume: the prefix is a
    /// *complete* decision sequence, so the run forks nothing new and is
    /// not re-reported to the path sink.
    pub replay: bool,
}

/// Execution context handed to the program for a single path.
pub struct ExecCtx<'e, Out> {
    prefix: Vec<bool>,
    cursor: usize,
    pc: Vec<Term>,
    decisions: Vec<bool>,
    trace: Vec<Out>,
    coverage: Coverage,
    pending: Vec<Pending>,
    solver: &'e mut Solver,
    /// True if an Unknown solver verdict forced over-approximation.
    over_approx: bool,
    max_depth: usize,
    instructions: u64,
    fresh_branches: u64,
    /// Wall-clock cutoff for the whole exploration; checked before every
    /// solver interaction so one long path cannot overshoot the budget by
    /// more than a single query.
    deadline: Option<Instant>,
    /// True once the deadline fired mid-path (the driver then reports the
    /// exploration as truncated).
    deadline_hit: bool,
}

impl<'e, Out> ExecCtx<'e, Out> {
    pub(crate) fn new(
        prefix: Vec<bool>,
        solver: &'e mut Solver,
        max_depth: usize,
        deadline: Option<Instant>,
    ) -> Self {
        ExecCtx {
            prefix,
            cursor: 0,
            pc: Vec::new(),
            decisions: Vec::new(),
            trace: Vec::new(),
            coverage: Coverage::new(),
            pending: Vec::new(),
            solver,
            over_approx: false,
            max_depth,
            instructions: 0,
            fresh_branches: 0,
            deadline,
            deadline_hit: false,
        }
    }

    /// Abort the path if the exploration deadline has passed. Called at
    /// every operation that may reach the solver.
    fn check_deadline(&mut self) -> Result<(), Stop> {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.deadline_hit = true;
                return Err(Stop::Abort("exploration time limit exceeded".into()));
            }
        }
        Ok(())
    }

    /// Mark an instruction block as covered. Agents call this once per
    /// instrumented basic block; the count doubles as an instruction-count
    /// proxy for the statistics.
    pub fn cover(&mut self, block: &'static str) {
        self.coverage.blocks.insert(block);
        self.instructions += 1;
    }

    /// Record an output event (an OpenFlow reply, a forwarded packet, ...).
    pub fn emit(&mut self, event: Out) {
        self.trace.push(event);
    }

    /// Branch on a possibly-symbolic boolean condition.
    ///
    /// Concrete conditions return immediately (and still record branch
    /// coverage). Symbolic conditions are replayed from the decision prefix
    /// or, once the prefix is exhausted, forked: the feasible sides are
    /// determined with the solver, one side is continued and the other is
    /// scheduled for a later run.
    pub fn branch(&mut self, site: &'static str, cond: &Term) -> Result<bool, Stop> {
        if let Some(c) = cond.as_bool_const() {
            self.coverage.branches.insert((site, c));
            return Ok(c);
        }
        if self.decisions.len() >= self.max_depth {
            return Err(Stop::Abort(format!("max branch depth at site '{site}'")));
        }
        self.check_deadline()?;
        let dir = if self.cursor < self.prefix.len() {
            let d = self.prefix[self.cursor];
            self.cursor += 1;
            d
        } else {
            self.fresh_branches += 1;
            let feasible_true = self.feasible(cond.clone());
            let feasible_false = self.feasible(cond.clone().not());
            match (feasible_true, feasible_false) {
                (true, true) => {
                    // Continue down `true`, schedule the sibling.
                    let mut sibling = self.decisions.clone();
                    sibling.push(false);
                    self.pending.push(Pending {
                        prefix: sibling,
                        site,
                        replay: false,
                    });
                    true
                }
                (true, false) => true,
                (false, true) => false,
                (false, false) => {
                    // Possible only when over-approximating after Unknown.
                    return Err(Stop::Abort(format!(
                        "both branch sides infeasible at site '{site}'"
                    )));
                }
            }
        };
        let constraint = if dir {
            cond.clone()
        } else {
            cond.clone().not()
        };
        if constraint.as_bool_const() != Some(true) {
            self.pc.push(constraint);
        }
        self.decisions.push(dir);
        self.coverage.branches.insert((site, dir));
        Ok(dir)
    }

    /// Add a constraint without forking. Returns `Err` if it makes the path
    /// infeasible (the path is then abandoned).
    pub fn assume(&mut self, cond: &Term) -> Result<(), Stop> {
        match cond.as_bool_const() {
            Some(true) => return Ok(()),
            Some(false) => return Err(Stop::Abort("assume(false)".into())),
            None => {}
        }
        self.check_deadline()?;
        if !self.feasible(cond.clone()) {
            return Err(Stop::Abort("infeasible assumption".into()));
        }
        self.pc.push(cond.clone());
        Ok(())
    }

    /// Pin a symbolic term to one concrete value consistent with the path
    /// condition (standard concretization; used e.g. where a real agent
    /// would use a value as an allocation size).
    pub fn concretize(&mut self, term: &Term) -> Result<u64, Stop> {
        if let Some(v) = term.as_bv_const() {
            return Ok(v);
        }
        self.check_deadline()?;
        match self.solver.check(&self.pc) {
            SatResult::Sat(model) => {
                let v = model.eval_bv(term);
                self.pc
                    .push(term.clone().eq(Term::bv_const(term.width(), v)));
                Ok(v)
            }
            SatResult::Unsat => Err(Stop::Abort("concretize on infeasible path".into())),
            SatResult::Unknown => Err(Stop::Abort("solver budget during concretize".into())),
        }
    }

    /// Check `pc && extra` for satisfiability; Unknown is treated as
    /// feasible (over-approximation, flagged on the path).
    ///
    /// The path condition is satisfiable by construction, so only the
    /// conjuncts sharing variables (transitively) with `extra` can affect
    /// the verdict — the KLEE-style independence slice keeps queries small
    /// as path conditions grow.
    fn feasible(&mut self, extra: Term) -> bool {
        let mut q = soft_smt::simplify::relevant_slice(&self.pc, &extra);
        q.push(extra);
        match self.solver.check(&q) {
            SatResult::Sat(_) => true,
            SatResult::Unsat => false,
            SatResult::Unknown => {
                self.over_approx = true;
                true
            }
        }
    }

    /// Current path-condition conjuncts.
    pub fn path_condition(&self) -> &[Term] {
        &self.pc
    }

    /// Number of events emitted so far (used by the harness to detect
    /// silent probe drops).
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    pub(crate) fn finish(self, outcome: PathOutcome) -> FinishedPath<Out> {
        FinishedPath {
            result: PathResult {
                condition: self.pc,
                decisions: self.decisions,
                trace: self.trace,
                outcome,
                coverage: self.coverage,
                over_approx: self.over_approx,
            },
            origin: self.prefix,
            pending: self.pending,
            instructions: self.instructions,
            fresh_branches: self.fresh_branches,
            deadline_hit: self.deadline_hit,
        }
    }
}

/// Everything one path run hands back to the exploration driver.
pub(crate) struct FinishedPath<Out> {
    /// The explored path.
    pub result: PathResult<Out>,
    /// The decision prefix this run was scheduled under (the frontier
    /// entry it consumed — not the full decision sequence it grew into).
    pub origin: Vec<bool>,
    /// Sibling branches scheduled during the run.
    pub pending: Vec<Pending>,
    /// Instrumented blocks executed.
    pub instructions: u64,
    /// Fresh symbolic branches encountered.
    pub fresh_branches: u64,
    /// True if the exploration deadline fired during this path.
    pub deadline_hit: bool,
}

/// Terminal status of one explored path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathOutcome {
    /// The program ran to completion.
    Completed,
    /// The program crashed (agent bug).
    Crashed(String),
    /// The engine abandoned the path.
    Aborted(String),
}

/// One fully explored path: its input subspace and observed outputs.
#[derive(Debug, Clone)]
pub struct PathResult<Out> {
    /// Path condition as a conjunct list (the input equivalence class).
    pub condition: Vec<Term>,
    /// Symbolic branch decisions, in order.
    pub decisions: Vec<bool>,
    /// Output events emitted along the path.
    pub trace: Vec<Out>,
    /// How the path terminated.
    pub outcome: PathOutcome,
    /// Coverage recorded on this path.
    pub coverage: Coverage,
    /// True if an Unknown solver verdict may have admitted an infeasible
    /// path (never observed with the default unlimited budget).
    pub over_approx: bool,
}

impl<Out> PathResult<Out> {
    /// The path condition as a single conjunction term.
    pub fn condition_term(&self) -> Term {
        soft_smt::simplify::mk_and(&self.condition)
    }
}
