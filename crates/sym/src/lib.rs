//! # soft-sym — a symbolic execution engine for deterministic agents
//!
//! The reproduction's stand-in for Cloud9, the engine the paper builds SOFT
//! on. Programs under test are deterministic Rust functions that route all
//! symbolic control flow through [`ExecCtx::branch`]; the engine explores
//! the execution tree by deterministic re-execution with forced decision
//! prefixes, maintaining a path condition per path and invoking the
//! [`soft_smt`] solver for branch feasibility. For each explored path it
//! records the path condition, the emitted output trace, coverage, and the
//! terminal outcome (including agent crashes) — exactly the artifacts
//! SOFT's grouping and crosschecking phases consume.
//!
//! ```
//! use soft_smt::Term;
//! use soft_sym::{explore, ExecCtx, ExplorerConfig};
//!
//! // A toy agent: forward small ports, reject the rest.
//! let ex = explore(&ExplorerConfig::default(), |ctx: &mut ExecCtx<'_, &str>| {
//!     let port = Term::var("doc.port", 16);
//!     if ctx.branch("port_ok", &port.ult(Term::bv_const(16, 25)))? {
//!         ctx.emit("FWD");
//!     } else {
//!         ctx.emit("ERR");
//!     }
//!     Ok(())
//! });
//! assert_eq!(ex.stats.paths, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod coverage;
mod ctx;
mod explorer;
mod strategy;

pub use buf::SymBuf;
pub use coverage::{Coverage, CoverageUniverse};
pub use ctx::{ExecCtx, PathOutcome, PathResult, RunEnd, Stop};
pub use explorer::{
    explore, explore_fn, explore_fn_seeded, Exploration, ExplorationStats, ExplorerConfig,
    PathSink, ResumeSeed, SeedPending, StreamSink, StreamedPath, TeeSink,
};
pub use strategy::Strategy;
