//! The exploration driver.
//!
//! Runs a deterministic program repeatedly, once per execution-tree path,
//! replaying decision prefixes scheduled by the active search strategy.
//! Produces the two artifacts SOFT's crosschecking phase consumes: per-path
//! input constraints (path conditions) and per-path output traces.

use crate::coverage::Coverage;
use crate::ctx::{ExecCtx, FinishedPath, PathOutcome, PathResult, Pending, RunEnd, Stop};
use crate::strategy::{Frontier, Strategy};
use soft_smt::{Solver, SolverBudget, VerdictCache};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recover the guarded data even if a worker panicked while holding the
/// lock. The shared exploration state is only mutated through
/// [`merge_finished`] and small field updates that keep it consistent, so
/// a poisoned lock still guards usable state; aborting the whole
/// exploration (what `expect` did) would lose every already-explored path.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Render a panic payload for the crash record.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Exploration limits and knobs.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Path-selection strategy (default: Cloud9-style interleaving).
    pub strategy: Strategy,
    /// Stop after this many explored paths.
    pub max_paths: Option<usize>,
    /// Maximum symbolic-branch depth per path.
    pub max_depth: usize,
    /// Per-query solver resource budget (default: unlimited).
    pub solver_budget: SolverBudget,
    /// Wall-clock budget for the whole exploration.
    pub time_limit: Option<Duration>,
    /// PRNG seed for randomized strategies.
    pub seed: u64,
    /// Worker threads for path exploration (1 = the sequential driver).
    /// Only [`explore_fn`] honors values above 1; exhaustive explorations
    /// produce identical results for every worker count.
    pub workers: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            strategy: Strategy::CoverageInterleaved,
            max_paths: None,
            max_depth: 4096,
            solver_budget: SolverBudget::unlimited(),
            time_limit: None,
            seed: 0x50F7,
            workers: 1,
        }
    }
}

/// Aggregate statistics over one exploration, feeding Tables 2 and 5.
#[derive(Debug, Clone, Default)]
pub struct ExplorationStats {
    /// Total paths explored (= input equivalence classes).
    pub paths: usize,
    /// Paths that ran to completion.
    pub completed: usize,
    /// Paths on which the agent crashed.
    pub crashed: usize,
    /// Paths abandoned by the engine.
    pub aborted: usize,
    /// Instrumented instruction blocks executed (sum over paths).
    pub instructions: u64,
    /// Fresh symbolic branches encountered (execution-tree internal nodes).
    pub fresh_branches: u64,
    /// Wall-clock time of the exploration.
    pub wall: Duration,
    /// Solver statistics accumulated over all feasibility checks.
    pub solver: soft_smt::SolverStats,
    /// True if the exploration hit a configured limit before exhaustion.
    pub truncated: bool,
    /// Agent panics caught and recorded as crash paths (a subset of
    /// `crashed`): the agent path blew up in Rust rather than returning
    /// [`Stop::Crash`], and `catch_unwind` converted it.
    pub caught_panics: usize,
    /// Worker-level engine panics (bugs in the exploration machinery
    /// itself, not the agent). Any value above zero also sets `truncated`,
    /// because the frontier may not have been drained.
    pub engine_panics: usize,
}

/// A scheduled-but-unexplored decision prefix recovered from a durability
/// journal (the remaining frontier of an interrupted exploration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedPending {
    /// Decision prefix to replay, including the flipped final decision.
    pub prefix: Vec<bool>,
    /// Branch site that scheduled the prefix (informational: it only
    /// feeds strategy heuristics, never the explored path set).
    pub site: String,
}

/// Recovered exploration state to resume from.
///
/// `replay` holds the complete decision sequences of already-explored
/// paths: EGT re-execution makes each one a perfect checkpoint, so the
/// engine re-runs it with the full sequence as the forced prefix — no
/// fresh branches fire, nothing forks, and no feasibility query is
/// issued. `frontier` holds the prefixes that were scheduled but never
/// explored; only these drive new exploration. An exhaustive resumed run
/// therefore produces exactly the path set of an uninterrupted run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeSeed {
    /// Complete decision sequences of journaled paths, to re-execute
    /// concretely.
    pub replay: Vec<Vec<bool>>,
    /// Scheduled-but-unexplored prefixes (the remaining frontier).
    pub frontier: Vec<SeedPending>,
}

impl ResumeSeed {
    /// True when the seed carries no state (fresh exploration).
    pub fn is_empty(&self) -> bool {
        self.replay.is_empty() && self.frontier.is_empty()
    }
}

/// Observer notified once per *newly explored* path (replayed paths are
/// skipped — they are already on record). This is the write-ahead-journal
/// hook: `origin` is the frontier prefix the path was scheduled under,
/// `pending` the sibling prefixes the path scheduled in turn. Together
/// they let a recovery reconstruct the exact remaining frontier:
/// `({root} ∪ all pendings) − all origins`.
///
/// Implementations must be `Sync`: parallel workers invoke the sink
/// concurrently, in completion order.
pub trait PathSink<Out>: Sync {
    /// Called after a non-replay path finishes, before it is merged into
    /// the shared accumulators (write-ahead ordering).
    fn on_path(&self, origin: &[bool], result: &PathResult<Out>, pending: &[(Vec<bool>, &str)]);

    /// Called after a *replayed* path finishes re-execution. Replays are
    /// already on record — a journal sink ignores them (the default) —
    /// but a streaming consumer needs them to rebuild its incremental
    /// state (grouping indexes, pair schedules) when resuming.
    fn on_replay(&self, _result: &PathResult<Out>) {}
}

/// A completed path delivered through a [`StreamSink`] channel, in worker
/// completion order.
#[derive(Debug, Clone)]
pub struct StreamedPath<Out> {
    /// Frontier prefix the path was scheduled under (empty for replays).
    pub origin: Vec<bool>,
    /// True for a journaled path re-executed on resume.
    pub replay: bool,
    /// The path itself.
    pub result: PathResult<Out>,
    /// Sibling prefixes the path scheduled in turn (empty for replays).
    pub pending: Vec<(Vec<bool>, String)>,
}

/// A [`PathSink`] that forwards every finished path — replays included —
/// through a *bounded* channel, so a consumer thread can group and
/// crosscheck paths while the exploration is still producing them. The
/// bound provides backpressure: when the consumer lags, explorer workers
/// block inside the sink callback instead of buffering without limit.
pub struct StreamSink<Out> {
    tx: std::sync::mpsc::SyncSender<StreamedPath<Out>>,
}

impl<Out> StreamSink<Out> {
    /// Create a sink/receiver pair over a channel holding at most
    /// `capacity` in-flight paths. Drop the sink (after the exploration
    /// returns) to close the channel and end the consumer's receive loop.
    pub fn bounded(
        capacity: usize,
    ) -> (
        StreamSink<Out>,
        std::sync::mpsc::Receiver<StreamedPath<Out>>,
    ) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
        (StreamSink { tx }, rx)
    }

    fn forward(&self, path: StreamedPath<Out>) {
        // A dropped receiver means the consumer is gone. The exploration
        // result still carries every path, so the lost send is the
        // consumer's problem to surface, not a reason to abort the run.
        let _ = self.tx.send(path);
    }
}

impl<Out: Clone + Send> PathSink<Out> for StreamSink<Out> {
    fn on_path(&self, origin: &[bool], result: &PathResult<Out>, pending: &[(Vec<bool>, &str)]) {
        self.forward(StreamedPath {
            origin: origin.to_vec(),
            replay: false,
            result: result.clone(),
            pending: pending
                .iter()
                .map(|(p, s)| (p.clone(), (*s).to_string()))
                .collect(),
        });
    }

    fn on_replay(&self, result: &PathResult<Out>) {
        self.forward(StreamedPath {
            origin: Vec::new(),
            replay: true,
            result: result.clone(),
            pending: Vec::new(),
        });
    }
}

/// Forward every sink callback to two underlying sinks, `first` before
/// `second` — e.g. the write-ahead journal first (durability), then the
/// streaming channel (consumption).
pub struct TeeSink<'a, Out> {
    first: &'a dyn PathSink<Out>,
    second: &'a dyn PathSink<Out>,
}

impl<'a, Out> TeeSink<'a, Out> {
    /// Combine two sinks, notifying `first` before `second`.
    pub fn new(first: &'a dyn PathSink<Out>, second: &'a dyn PathSink<Out>) -> TeeSink<'a, Out> {
        TeeSink { first, second }
    }
}

impl<Out> PathSink<Out> for TeeSink<'_, Out> {
    fn on_path(&self, origin: &[bool], result: &PathResult<Out>, pending: &[(Vec<bool>, &str)]) {
        self.first.on_path(origin, result, pending);
        self.second.on_path(origin, result, pending);
    }

    fn on_replay(&self, result: &PathResult<Out>) {
        self.first.on_replay(result);
        self.second.on_replay(result);
    }
}

/// The outcome of exploring a program.
#[derive(Debug, Clone)]
pub struct Exploration<Out> {
    /// All explored paths.
    pub paths: Vec<PathResult<Out>>,
    /// Union coverage over all paths.
    pub coverage: Coverage,
    /// Statistics.
    pub stats: ExplorationStats,
}

impl<Out> Exploration<Out> {
    /// Paths that completed or crashed (i.e. represent real agent behaviour,
    /// not engine artifacts).
    pub fn effective_paths(&self) -> impl Iterator<Item = &PathResult<Out>> {
        self.paths
            .iter()
            .filter(|p| !matches!(p.outcome, PathOutcome::Aborted(_)))
    }

    /// Average and maximum constraint size (boolean-operation count per
    /// path condition), as reported in Table 2.
    pub fn constraint_size_stats(&self) -> (f64, u64) {
        let sizes: Vec<u64> = self
            .effective_paths()
            .map(|p| soft_smt::metrics::op_count(&p.condition_term()))
            .collect();
        if sizes.is_empty() {
            return (0.0, 0);
        }
        let max = *sizes.iter().max().expect("non-empty");
        let avg = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        (avg, max)
    }
}

/// Explore every path of `program`.
///
/// `program` must be deterministic: given the same branch decisions it must
/// take the same actions. It is re-invoked once per path with a fresh
/// context, so any agent state must be (re)constructed inside the closure.
pub fn explore<Out, F>(config: &ExplorerConfig, program: F) -> Exploration<Out>
where
    F: FnMut(&mut ExecCtx<'_, Out>) -> RunEnd,
{
    explore_seeded(config, program, None, None)
}

/// Seed a frontier from recovered journal state, or with the root prefix
/// for a fresh exploration. Journaled sites arrive as owned strings while
/// [`Pending`] carries `&'static str`; the handful of recovered sites are
/// leaked (bounded by the frontier size, once per resume) — they only
/// feed strategy heuristics.
fn seed_frontier(frontier: &mut Frontier, seed: Option<&ResumeSeed>) {
    match seed {
        Some(s) if !s.is_empty() => {
            for decisions in &s.replay {
                frontier.push(Pending {
                    prefix: decisions.clone(),
                    site: "<replay>",
                    replay: true,
                });
            }
            for p in &s.frontier {
                frontier.push(Pending {
                    prefix: p.prefix.clone(),
                    site: Box::leak(p.site.clone().into_boxed_str()),
                    replay: false,
                });
            }
        }
        _ => frontier.push(Pending {
            prefix: Vec::new(),
            site: "<root>",
            replay: false,
        }),
    }
}

/// Report a finished path to the sink: fresh paths through `on_path`,
/// replays through `on_replay`. Called *before* the path is merged into
/// the shared accumulators, giving write-ahead ordering: a path is
/// journaled no later than its siblings become claimable.
fn notify_sink<Out>(sink: Option<&dyn PathSink<Out>>, replay: bool, fin: &FinishedPath<Out>) {
    let Some(s) = sink else { return };
    if replay {
        s.on_replay(&fin.result);
        return;
    }
    let pending: Vec<(Vec<bool>, &str)> = fin
        .pending
        .iter()
        .map(|p| (p.prefix.clone(), p.site))
        .collect();
    s.on_path(&fin.origin, &fin.result, &pending);
}

fn explore_seeded<Out, F>(
    config: &ExplorerConfig,
    mut program: F,
    seed: Option<&ResumeSeed>,
    sink: Option<&dyn PathSink<Out>>,
) -> Exploration<Out>
where
    F: FnMut(&mut ExecCtx<'_, Out>) -> RunEnd,
{
    let start = Instant::now();
    let deadline = config.time_limit.map(|l| start + l);
    let mut solver = Solver::new();
    solver.budget = config.solver_budget;
    let mut frontier = Frontier::new(config.strategy, config.seed);
    let mut paths: Vec<PathResult<Out>> = Vec::new();
    let mut coverage = Coverage::new();
    let mut stats = ExplorationStats::default();

    seed_frontier(&mut frontier, seed);

    while let Some(pending) = frontier.pop(&coverage) {
        if let Some(max) = config.max_paths {
            if paths.len() >= max {
                stats.truncated = true;
                break;
            }
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                stats.truncated = true;
                break;
            }
        }
        let replay = pending.replay;
        let mut ctx: ExecCtx<'_, Out> =
            ExecCtx::new(pending.prefix, &mut solver, config.max_depth, deadline);
        let (outcome, panicked) = run_isolated(&mut ctx, &mut program);
        let fin = ctx.finish(outcome);
        if panicked {
            stats.caught_panics += 1;
        }
        notify_sink(sink, replay, &fin);
        merge_finished(&mut stats, &mut coverage, &mut frontier, &mut paths, fin);
    }
    if !frontier.is_empty() {
        stats.truncated = true;
    }
    stats.paths = paths.len();
    stats.wall = start.elapsed();
    stats.solver = solver.stats;
    Exploration {
        paths,
        coverage,
        stats,
    }
}

/// Execute the program on one path, converting a Rust panic into a crash
/// outcome (paper parity: agent crashes are observable outputs to
/// crosscheck, not process aborts). Returns the outcome and whether it
/// came from a caught panic.
///
/// `AssertUnwindSafe` is sound here: on panic the context is *kept* and
/// finalized, and every `ExecCtx` mutation (trace push, path-condition
/// push, coverage insert) is atomic with respect to unwinding — the
/// context is always a consistent snapshot of the path up to the panic
/// point. The panicking re-execution is deterministic per decision
/// prefix, so crash paths reproduce like any other path.
fn run_isolated<Out, F>(ctx: &mut ExecCtx<'_, Out>, program: &mut F) -> (PathOutcome, bool)
where
    F: FnMut(&mut ExecCtx<'_, Out>) -> RunEnd,
{
    match std::panic::catch_unwind(AssertUnwindSafe(|| program(ctx))) {
        Ok(Ok(())) => (PathOutcome::Completed, false),
        Ok(Err(Stop::Crash(m))) => (PathOutcome::Crashed(m), false),
        Ok(Err(Stop::Abort(m))) => (PathOutcome::Aborted(m), false),
        Err(payload) => (
            PathOutcome::Crashed(format!("panic: {}", panic_message(payload.as_ref()))),
            true,
        ),
    }
}

/// Fold one finished path into the exploration accumulators.
fn merge_finished<Out>(
    stats: &mut ExplorationStats,
    coverage: &mut Coverage,
    frontier: &mut Frontier,
    paths: &mut Vec<PathResult<Out>>,
    fin: FinishedPath<Out>,
) {
    match fin.result.outcome {
        PathOutcome::Completed => stats.completed += 1,
        PathOutcome::Crashed(_) => stats.crashed += 1,
        PathOutcome::Aborted(_) => stats.aborted += 1,
    }
    stats.instructions += fin.instructions;
    stats.fresh_branches += fin.fresh_branches;
    if fin.deadline_hit {
        stats.truncated = true;
    }
    coverage.merge(&fin.result.coverage);
    paths.push(fin.result);
    for p in fin.pending {
        frontier.push(p);
    }
}

/// Explore every path of `program`, using `config.workers` threads.
///
/// Like [`explore`], but the program closure must be re-invocable from
/// several threads at once (`Fn + Sync`): each worker owns a private
/// [`Solver`] backed by a [`VerdictCache`] shared across the workers, pulls
/// pending decision prefixes from a shared frontier, and re-executes the
/// program against them. Re-execution forking makes every path run
/// independent, so the only shared mutable state is the frontier and the
/// result accumulators, both merged under one lock.
///
/// The returned paths are canonically sorted by decision prefix — for every
/// worker count, including 1 — so an exhaustive exploration yields an
/// identical [`Exploration`] (paths, coverage, aggregate counters) no matter
/// how many workers ran it. Truncated runs (`max_paths` / `time_limit`) stay
/// deterministic only sequentially: under parallelism *which* paths get in
/// before the limit depends on thread timing.
pub fn explore_fn<Out, F>(config: &ExplorerConfig, program: F) -> Exploration<Out>
where
    Out: Send,
    F: Fn(&mut ExecCtx<'_, Out>) -> RunEnd + Sync,
{
    explore_fn_seeded(config, program, None, None)
}

/// [`explore_fn`] with resume support: `seed` replays journaled paths and
/// restores the remaining frontier, `sink` observes each newly explored
/// path (the write-ahead-journal hook). An exhaustive seeded exploration
/// yields the same canonical [`Exploration`] as an unseeded one, for
/// every worker count — replayed paths contribute their recorded results
/// and fork nothing, seeded frontier prefixes explore exactly the paths
/// the interrupted run still owed.
pub fn explore_fn_seeded<Out, F>(
    config: &ExplorerConfig,
    program: F,
    seed: Option<&ResumeSeed>,
    sink: Option<&dyn PathSink<Out>>,
) -> Exploration<Out>
where
    Out: Send,
    F: Fn(&mut ExecCtx<'_, Out>) -> RunEnd + Sync,
{
    let mut ex = if config.workers <= 1 {
        explore_seeded(config, &program, seed, sink)
    } else {
        explore_parallel(config, &program, seed, sink)
    };
    ex.paths.sort_by(|a, b| a.decisions.cmp(&b.decisions));
    ex
}

/// Shared accumulator the parallel workers merge into.
struct SharedExploration<Out> {
    frontier: Frontier,
    coverage: Coverage,
    paths: Vec<PathResult<Out>>,
    stats: ExplorationStats,
    /// Paths claimed by workers (counted at claim time so `max_paths` is
    /// enforced before a path runs, mirroring the sequential driver).
    claimed: usize,
    /// Paths currently executing outside the lock; the frontier is only
    /// exhausted once it is empty *and* nothing is in flight.
    in_flight: usize,
    /// Set when a limit fires; all workers drain out.
    stop: bool,
}

/// One worker's claim/execute/merge loop. Runs until the frontier is
/// drained (empty with nothing in flight) or `stop` is raised.
#[allow(clippy::too_many_arguments)] // private plumbing shared by every worker
fn worker_loop<Out, F>(
    config: &ExplorerConfig,
    program: &F,
    shared: &Mutex<SharedExploration<Out>>,
    work_ready: &Condvar,
    cache: &Arc<VerdictCache>,
    sink: Option<&dyn PathSink<Out>>,
    start: Instant,
    deadline: Option<Instant>,
) where
    Out: Send,
    F: Fn(&mut ExecCtx<'_, Out>) -> RunEnd + Sync,
{
    let mut solver = Solver::with_cache(Arc::clone(cache));
    solver.budget = config.solver_budget;
    let mut guard = recover(shared);
    loop {
        if guard.stop {
            break;
        }
        let state = &mut *guard;
        match state.frontier.pop(&state.coverage) {
            Some(pending) => {
                let over_limit = config
                    .max_paths
                    .map(|max| state.claimed >= max)
                    .unwrap_or(false)
                    || config
                        .time_limit
                        .map(|limit| start.elapsed() > limit)
                        .unwrap_or(false);
                if over_limit {
                    state.stats.truncated = true;
                    state.stop = true;
                    // Put the prefix back so the final
                    // frontier-drained check stays truthful.
                    state.frontier.push(pending);
                    work_ready.notify_all();
                    break;
                }
                state.claimed += 1;
                state.in_flight += 1;
                drop(guard);

                let replay = pending.replay;
                let mut ctx: ExecCtx<'_, Out> =
                    ExecCtx::new(pending.prefix, &mut solver, config.max_depth, deadline);
                let mut prog = |c: &mut ExecCtx<'_, Out>| program(c);
                let (outcome, panicked) = run_isolated(&mut ctx, &mut prog);
                let fin = ctx.finish(outcome);
                notify_sink(sink, replay, &fin);

                guard = recover(shared);
                let state = &mut *guard;
                state.in_flight -= 1;
                if panicked {
                    state.stats.caught_panics += 1;
                }
                merge_finished(
                    &mut state.stats,
                    &mut state.coverage,
                    &mut state.frontier,
                    &mut state.paths,
                    fin,
                );
                // New prefixes may be available, and if this was
                // the last in-flight path the idlers must wake to
                // notice completion.
                work_ready.notify_all();
            }
            None => {
                if state.in_flight == 0 {
                    work_ready.notify_all();
                    break;
                }
                guard = work_ready.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
    guard.stats.solver.merge(&solver.stats);
}

fn explore_parallel<Out, F>(
    config: &ExplorerConfig,
    program: &F,
    seed: Option<&ResumeSeed>,
    sink: Option<&dyn PathSink<Out>>,
) -> Exploration<Out>
where
    Out: Send,
    F: Fn(&mut ExecCtx<'_, Out>) -> RunEnd + Sync,
{
    let start = Instant::now();
    let deadline = config.time_limit.map(|l| start + l);
    let cache = Arc::new(VerdictCache::new());
    let mut frontier = Frontier::new(config.strategy, config.seed);
    seed_frontier(&mut frontier, seed);
    let shared = Mutex::new(SharedExploration {
        frontier,
        coverage: Coverage::new(),
        paths: Vec::new(),
        stats: ExplorationStats::default(),
        claimed: 0,
        in_flight: 0,
        stop: false,
    });
    let work_ready = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            let cache = Arc::clone(&cache);
            let shared = &shared;
            let work_ready = &work_ready;
            scope.spawn(move || {
                // Two containment rings: `run_isolated` (inside the loop)
                // catches *agent* panics per path, and this outer catch
                // contains *engine* panics so one broken worker cannot
                // strand its siblings on the condvar or leave the shared
                // state claimed-but-never-merged.
                let worker = AssertUnwindSafe(|| {
                    worker_loop(
                        config, program, shared, work_ready, &cache, sink, start, deadline,
                    )
                });
                if std::panic::catch_unwind(worker).is_err() {
                    let mut guard = recover(shared);
                    guard.stats.engine_panics += 1;
                    guard.stats.truncated = true;
                    // The panicked worker may have leaked an `in_flight`
                    // claim; `stop` makes every waiter drain out anyway.
                    guard.stop = true;
                    work_ready.notify_all();
                }
            });
        }
    });

    let mut state = shared.into_inner().unwrap_or_else(|e| e.into_inner());
    if !state.frontier.is_empty() {
        state.stats.truncated = true;
    }
    state.stats.paths = state.paths.len();
    state.stats.wall = start.elapsed();
    Exploration {
        paths: state.paths,
        coverage: state.coverage,
        stats: state.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_smt::Term;

    /// A three-way toy program mirroring Figure 1's Agent 1.
    fn agent1(ctx: &mut ExecCtx<'_, &'static str>) -> RunEnd {
        let p = Term::var("ex.p", 16);
        ctx.cover("entry");
        if ctx.branch("is_ctrl", &p.clone().eq(Term::bv_const(16, 0xfffd)))? {
            ctx.cover("ctrl");
            ctx.emit("CTRL");
        } else if ctx.branch("is_small", &p.clone().ult(Term::bv_const(16, 25)))? {
            ctx.cover("fwd");
            ctx.emit("FWD");
        } else {
            ctx.cover("err");
            ctx.emit("ERR");
        }
        Ok(())
    }

    #[test]
    fn explores_all_three_paths() {
        let ex = explore(&ExplorerConfig::default(), agent1);
        assert_eq!(ex.stats.paths, 3);
        assert_eq!(ex.stats.completed, 3);
        let mut outputs: Vec<&str> = ex.paths.iter().map(|p| p.trace[0]).collect();
        outputs.sort_unstable();
        assert_eq!(outputs, vec!["CTRL", "ERR", "FWD"]);
        assert!(!ex.stats.truncated);
    }

    #[test]
    fn path_conditions_partition_the_input_space() {
        let ex = explore(&ExplorerConfig::default(), agent1);
        // Conditions must be pairwise disjoint and jointly exhaustive.
        let mut solver = Solver::new();
        let terms: Vec<Term> = ex.paths.iter().map(|p| p.condition_term()).collect();
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                assert!(
                    solver.intersect(&terms[i], &terms[j]).is_unsat(),
                    "paths {i} and {j} overlap"
                );
            }
        }
        let union = soft_smt::simplify::mk_or_balanced(&terms);
        assert!(
            solver.check_one(&union.not()).is_unsat(),
            "partition has a gap"
        );
    }

    #[test]
    fn concrete_branches_do_not_fork() {
        let ex = explore(&ExplorerConfig::default(), |ctx: &mut ExecCtx<'_, u32>| {
            let c = Term::bv_const(8, 3);
            if ctx.branch("const", &c.clone().ult(Term::bv_const(8, 5)))? {
                ctx.emit(1);
            } else {
                ctx.emit(2);
            }
            Ok(())
        });
        assert_eq!(ex.stats.paths, 1);
        assert_eq!(ex.paths[0].trace, vec![1]);
        assert!(ex.paths[0].condition.is_empty());
    }

    #[test]
    fn crash_paths_are_recorded() {
        let ex = explore(&ExplorerConfig::default(), |ctx: &mut ExecCtx<'_, u32>| {
            let x = Term::var("cr.x", 8);
            if ctx.branch("boom", &x.clone().eq(Term::bv_const(8, 0xee)))? {
                return Err(Stop::crash("segfault in vlan handling"));
            }
            ctx.emit(0);
            Ok(())
        });
        assert_eq!(ex.stats.paths, 2);
        assert_eq!(ex.stats.crashed, 1);
        assert_eq!(ex.stats.completed, 1);
        let crash = ex
            .paths
            .iter()
            .find(|p| matches!(p.outcome, PathOutcome::Crashed(_)))
            .unwrap();
        // The crash path's condition must force x == 0xee.
        let mut s = Solver::new();
        let m = s.check_one(&crash.condition_term());
        assert_eq!(m.model().unwrap().get("cr.x"), Some(0xee));
    }

    #[test]
    fn max_paths_truncates() {
        let cfg = ExplorerConfig {
            max_paths: Some(2),
            ..Default::default()
        };
        let ex = explore(&cfg, |ctx: &mut ExecCtx<'_, u32>| {
            let x = Term::var("tr.x", 8);
            // 256-way case split via 8 nested branches.
            for i in 0..8 {
                let bit = x.clone().extract(i, i);
                ctx.branch("bit", &bit.eq(Term::bv_const(1, 1)))?;
            }
            ctx.emit(0);
            Ok(())
        });
        assert_eq!(ex.stats.paths, 2);
        assert!(ex.stats.truncated);
    }

    #[test]
    fn assume_prunes_infeasible_paths() {
        let ex = explore(&ExplorerConfig::default(), |ctx: &mut ExecCtx<'_, u32>| {
            let x = Term::var("as.x", 8);
            ctx.assume(&x.clone().ult(Term::bv_const(8, 10)))?;
            if ctx.branch("check", &x.clone().ugt(Term::bv_const(8, 200)))? {
                ctx.emit(99); // unreachable under the assumption
            } else {
                ctx.emit(1);
            }
            Ok(())
        });
        let completed: Vec<_> = ex.effective_paths().collect();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].trace, vec![1]);
    }

    #[test]
    fn concretize_pins_value() {
        let ex = explore(&ExplorerConfig::default(), |ctx: &mut ExecCtx<'_, u64>| {
            let x = Term::var("cc.x", 8);
            ctx.assume(&x.clone().ugt(Term::bv_const(8, 100)))?;
            let v = ctx.concretize(&x)?;
            ctx.emit(v);
            Ok(())
        });
        assert_eq!(ex.stats.paths, 1);
        let v = ex.paths[0].trace[0];
        assert!(v > 100);
        // The pin must be part of the path condition.
        let mut s = Solver::new();
        let m = s.check_one(&ex.paths[0].condition_term());
        assert_eq!(m.model().unwrap().get("cc.x"), Some(v));
    }

    #[test]
    fn all_strategies_explore_exhaustively() {
        for strat in [
            Strategy::Dfs,
            Strategy::Bfs,
            Strategy::Random,
            Strategy::CoverageInterleaved,
        ] {
            let cfg = ExplorerConfig {
                strategy: strat,
                ..Default::default()
            };
            let ex = explore(&cfg, agent1);
            assert_eq!(ex.stats.paths, 3, "strategy {strat:?} missed paths");
        }
    }

    #[test]
    fn stats_track_instructions_and_branches() {
        let ex = explore(&ExplorerConfig::default(), agent1);
        // 3 paths, each covering "entry" plus one leaf block.
        assert_eq!(ex.stats.instructions, 6);
        // Fresh symbolic branches: is_ctrl (root) + is_small = 2.
        assert_eq!(ex.stats.fresh_branches, 2);
        assert_eq!(ex.coverage.blocks.len(), 4);
    }

    #[test]
    fn constraint_size_stats_nonzero() {
        let ex = explore(&ExplorerConfig::default(), agent1);
        let (avg, max) = ex.constraint_size_stats();
        assert!(avg > 0.0);
        assert!(max >= 1);
    }

    #[test]
    fn stream_sink_delivers_every_path() {
        for workers in [1usize, 4] {
            let cfg = ExplorerConfig {
                workers,
                ..Default::default()
            };
            let (sink, rx) = StreamSink::bounded(2);
            let (ex, streamed) = std::thread::scope(|scope| {
                let consumer = scope.spawn(move || {
                    let mut got: Vec<StreamedPath<&'static str>> = Vec::new();
                    while let Ok(p) = rx.recv() {
                        got.push(p);
                    }
                    got
                });
                let ex = explore_fn_seeded(&cfg, agent1, None, Some(&sink));
                drop(sink); // close the channel so the consumer drains out
                (ex, consumer.join().expect("consumer"))
            });
            assert_eq!(streamed.len(), ex.paths.len(), "workers={workers}");
            assert!(streamed.iter().all(|p| !p.replay));
            let mut want: Vec<Vec<bool>> = ex.paths.iter().map(|p| p.decisions.clone()).collect();
            let mut got: Vec<Vec<bool>> = streamed
                .iter()
                .map(|p| p.result.decisions.clone())
                .collect();
            want.sort();
            got.sort();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn stream_sink_sees_replays_on_resume() {
        let ex = explore(&ExplorerConfig::default(), agent1);
        let seed = ResumeSeed {
            replay: ex.paths.iter().map(|p| p.decisions.clone()).collect(),
            frontier: Vec::new(),
        };
        let (sink, rx) = StreamSink::bounded(2);
        let (resumed, streamed) = std::thread::scope(|scope| {
            let consumer = scope.spawn(move || {
                let mut got: Vec<StreamedPath<&'static str>> = Vec::new();
                while let Ok(p) = rx.recv() {
                    got.push(p);
                }
                got
            });
            let resumed =
                explore_fn_seeded(&ExplorerConfig::default(), agent1, Some(&seed), Some(&sink));
            drop(sink);
            (resumed, consumer.join().expect("consumer"))
        });
        // The exhaustive run was fully journaled: the resume replays every
        // path, forks nothing new, and the stream sees replays only.
        assert_eq!(resumed.paths.len(), ex.paths.len());
        assert_eq!(streamed.len(), ex.paths.len());
        assert!(streamed.iter().all(|p| p.replay));
    }

    #[test]
    fn tee_sink_notifies_both_in_order() {
        use std::sync::Mutex;
        struct Tag(&'static str, Mutex<Vec<(&'static str, Vec<bool>)>>);
        impl PathSink<&'static str> for &Tag {
            fn on_path(
                &self,
                _origin: &[bool],
                result: &PathResult<&'static str>,
                _pending: &[(Vec<bool>, &str)],
            ) {
                let mut log = self.1.lock().unwrap_or_else(|e| e.into_inner());
                log.push((self.0, result.decisions.clone()));
            }
        }
        let log = Mutex::new(Vec::new());
        let a = Tag("journal", log);
        let b = Tag("stream", Mutex::new(Vec::new()));
        let (ra, rb) = (&a, &b);
        let tee = TeeSink::new(&ra, &rb);
        let ex = explore_fn_seeded(&ExplorerConfig::default(), agent1, None, Some(&tee));
        let ja = a.1.lock().unwrap_or_else(|e| e.into_inner());
        let jb = b.1.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(ja.len(), ex.paths.len());
        assert_eq!(jb.len(), ex.paths.len());
        // Same delivery order on both arms.
        let da: Vec<_> = ja.iter().map(|(_, d)| d.clone()).collect();
        let db: Vec<_> = jb.iter().map(|(_, d)| d.clone()).collect();
        assert_eq!(da, db);
    }
}
