//! Parallel-exploration determinism: for every strategy and worker count,
//! an exhaustive `explore_fn` run must produce an identical exploration —
//! same canonically-ordered paths (conditions, traces, outcomes, decision
//! prefixes, concretized values), same coverage, same aggregate counters.
//! Worker threads share a verdict cache and race on the frontier, so this
//! holds only because solver models are pure functions of the (canonically
//! sorted) assertion set.

use soft_smt::Term;
use soft_sym::{explore, explore_fn, ExecCtx, Exploration, ExplorerConfig, RunEnd, Stop, Strategy};

/// A toy switch agent: mixed nesting, a crash branch, and concretized
/// outputs (the part that would diverge first if models were not
/// deterministic across workers).
fn switch_program(ctx: &mut ExecCtx<'_, String>) -> RunEnd {
    let ty = Term::var("pp.type", 8);
    let port = Term::var("pp.port", 16);
    ctx.cover("entry");
    if ctx.branch("is_hello", &ty.clone().eq(Term::bv_const(8, 0)))? {
        ctx.cover("hello");
        ctx.emit("HELLO".into());
    } else if ctx.branch("is_packet_out", &ty.clone().eq(Term::bv_const(8, 13)))? {
        ctx.cover("packet_out");
        if ctx.branch("ctrl_port", &port.clone().eq(Term::bv_const(16, 0xfffd)))? {
            ctx.cover("ctrl");
            ctx.emit("CTRL".into());
        } else if ctx.branch("small_port", &port.clone().ult(Term::bv_const(16, 25)))? {
            ctx.cover("fwd");
            let v = ctx.concretize(&port)?;
            ctx.emit(format!("FWD:{v}"));
        } else {
            ctx.cover("err");
            ctx.emit("ERR".into());
        }
    } else if ctx.branch("bad_version", &ty.clone().eq(Term::bv_const(8, 0xee)))? {
        return Err(Stop::crash("parser crash on type 0xee"));
    } else {
        ctx.cover("ignored");
        ctx.emit("IGNORED".into());
    }
    Ok(())
}

/// A wider tree: 16 leaves, every one ending in a concretization.
fn wide_program(ctx: &mut ExecCtx<'_, u64>) -> RunEnd {
    let x = Term::var("pw.x", 8);
    ctx.cover("entry");
    for i in 0..4u32 {
        ctx.branch("bit", &x.clone().extract(i, i).eq(Term::bv_const(1, 1)))?;
    }
    let v = ctx.concretize(&x)?;
    ctx.emit(v);
    Ok(())
}

/// Render everything observable about an exploration, with wall-clock and
/// solver statistics excluded (cache-hit counts legitimately depend on
/// worker interleaving; results may not).
fn snapshot<Out: std::fmt::Debug>(ex: &Exploration<Out>) -> String {
    let mut s = String::new();
    for p in &ex.paths {
        s.push_str(&format!("decisions={:?} cond=[", p.decisions));
        for c in &p.condition {
            s.push_str(&format!("{c};"));
        }
        s.push_str(&format!(
            "] trace={:?} outcome={:?} over_approx={}\n",
            p.trace, p.outcome, p.over_approx
        ));
    }
    let mut blocks: Vec<_> = ex.coverage.blocks.iter().collect();
    blocks.sort_unstable();
    let mut branches: Vec<_> = ex.coverage.branches.iter().collect();
    branches.sort_unstable();
    s.push_str(&format!("blocks={blocks:?} branches={branches:?}\n"));
    s.push_str(&format!(
        "paths={} completed={} crashed={} aborted={} instructions={} fresh={} truncated={}\n",
        ex.stats.paths,
        ex.stats.completed,
        ex.stats.crashed,
        ex.stats.aborted,
        ex.stats.instructions,
        ex.stats.fresh_branches,
        ex.stats.truncated
    ));
    s
}

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Dfs,
    Strategy::Bfs,
    Strategy::Random,
    Strategy::CoverageInterleaved,
];

#[test]
fn workers_do_not_change_results_switch_program() {
    for strategy in ALL_STRATEGIES {
        let base = ExplorerConfig {
            strategy,
            ..Default::default()
        };
        let reference = snapshot(&explore_fn(&base, switch_program));
        for workers in [2, 4] {
            let cfg = ExplorerConfig {
                workers,
                ..base.clone()
            };
            let got = snapshot(&explore_fn(&cfg, switch_program));
            assert_eq!(
                reference, got,
                "strategy {strategy:?} diverged with {workers} workers"
            );
        }
    }
}

#[test]
fn workers_do_not_change_results_wide_program() {
    for strategy in ALL_STRATEGIES {
        let base = ExplorerConfig {
            strategy,
            ..Default::default()
        };
        let reference = explore_fn(&base, wide_program);
        assert_eq!(reference.stats.paths, 16);
        let reference = snapshot(&reference);
        for workers in [2, 4] {
            let cfg = ExplorerConfig {
                workers,
                ..base.clone()
            };
            let got = snapshot(&explore_fn(&cfg, wide_program));
            assert_eq!(
                reference, got,
                "strategy {strategy:?} diverged with {workers} workers"
            );
        }
    }
}

#[test]
fn explore_fn_is_explore_canonically_sorted() {
    // The parallel entry point with workers = 1 runs the sequential driver;
    // the only difference is the canonical path order.
    let cfg = ExplorerConfig::default();
    let mut plain = explore(&cfg, switch_program);
    let via_fn = explore_fn(&cfg, switch_program);
    plain.paths.sort_by(|a, b| a.decisions.cmp(&b.decisions));
    assert_eq!(snapshot(&plain), snapshot(&via_fn));
    // The ns timers are wall-clock, not results — zero them before
    // demanding identical solver statistics.
    let mut plain_solver = plain.stats.solver;
    let mut via_fn_solver = via_fn.stats.solver;
    plain_solver.bitblast_ns = 0;
    plain_solver.search_ns = 0;
    via_fn_solver.bitblast_ns = 0;
    via_fn_solver.search_ns = 0;
    assert_eq!(plain_solver, via_fn_solver);
}

#[test]
fn parallel_max_paths_still_truncates() {
    let cfg = ExplorerConfig {
        max_paths: Some(3),
        workers: 4,
        ..Default::default()
    };
    let ex = explore_fn(&cfg, wide_program);
    assert!(ex.stats.truncated);
    assert!(ex.stats.paths >= 3, "got {} paths", ex.stats.paths);
}

/// Burns well past the exploration budget before its first branch, so the
/// deadline can only fire *inside* the path.
fn sleepy_program(ctx: &mut ExecCtx<'_, u32>) -> RunEnd {
    std::thread::sleep(std::time::Duration::from_millis(50));
    let x = Term::var("sl.x", 8);
    if ctx.branch("b", &x.clone().eq(Term::bv_const(8, 1)))? {
        ctx.emit(1);
    } else {
        ctx.emit(0);
    }
    Ok(())
}

#[test]
fn parallel_time_limit_fires_mid_path() {
    let cfg = ExplorerConfig {
        time_limit: Some(std::time::Duration::from_millis(5)),
        workers: 2,
        ..Default::default()
    };
    let ex = explore_fn(&cfg, sleepy_program);
    assert!(ex.stats.truncated);
    assert_eq!(ex.stats.completed, 0);
    assert!(
        ex.stats.aborted >= 1,
        "deadline should abort the path mid-run"
    );
}

#[test]
fn sequential_time_limit_fires_mid_path() {
    let cfg = ExplorerConfig {
        time_limit: Some(std::time::Duration::from_millis(5)),
        ..Default::default()
    };
    let ex = explore(&cfg, sleepy_program);
    // The first path starts inside the budget, sleeps past it, and is cut
    // off at its first branch; truncation is reported even though the
    // frontier never grew.
    assert!(ex.stats.truncated);
    assert_eq!(ex.stats.completed, 0);
    assert!(
        ex.stats.aborted >= 1,
        "deadline should abort the path mid-run"
    );
}
