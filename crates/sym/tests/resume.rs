//! Resume semantics of the seeded explorer: journaled decision prefixes
//! are perfect checkpoints. Re-running with `replay` = the recorded
//! decision sequences and `frontier` = the not-yet-explored prefixes must
//! reproduce the uninterrupted exploration exactly — same canonical path
//! set, same coverage, same outcome counters — at any worker count, with
//! zero fresh branches for the replayed part.

use soft_smt::Term;
use soft_sym::{
    explore_fn, explore_fn_seeded, ExecCtx, Exploration, ExplorerConfig, PathOutcome, PathResult,
    PathSink, ResumeSeed, RunEnd, SeedPending, Stop,
};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A toy agent with a crash branch and nested forks (7 paths).
fn agent(ctx: &mut ExecCtx<'_, String>) -> RunEnd {
    let ty = Term::var("rs.type", 8);
    let port = Term::var("rs.port", 16);
    ctx.cover("entry");
    if ctx.branch("is_hello", &ty.clone().eq(Term::bv_const(8, 0)))? {
        ctx.cover("hello");
        ctx.emit("HELLO".into());
    } else if ctx.branch("is_pkt", &ty.clone().eq(Term::bv_const(8, 13)))? {
        ctx.cover("pkt");
        if ctx.branch("ctrl", &port.clone().eq(Term::bv_const(16, 0xfffd)))? {
            return Err(Stop::crash("ctrl port crash"));
        } else if ctx.branch("small", &port.clone().ult(Term::bv_const(16, 25)))? {
            ctx.cover("fwd");
            ctx.emit("FWD".into());
        } else {
            ctx.cover("drop");
            ctx.emit("DROP".into());
        }
    } else if ctx.branch("is_stats", &ty.clone().eq(Term::bv_const(8, 16)))? {
        ctx.cover("stats");
        ctx.emit("STATS".into());
    } else {
        ctx.cover("err");
        ctx.emit("ERR".into());
    }
    Ok(())
}

/// What a write-ahead journal would persist per path.
#[derive(Clone)]
struct Record {
    origin: Vec<bool>,
    decisions: Vec<bool>,
    pending: Vec<(Vec<bool>, String)>,
}

#[derive(Default)]
struct Collect(Mutex<Vec<Record>>);

impl PathSink<String> for Collect {
    fn on_path(&self, origin: &[bool], result: &PathResult<String>, pending: &[(Vec<bool>, &str)]) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Record {
                origin: origin.to_vec(),
                decisions: result.decisions.clone(),
                pending: pending
                    .iter()
                    .map(|(p, s)| (p.clone(), s.to_string()))
                    .collect(),
            });
    }
}

/// Rebuild a [`ResumeSeed`] from a journal prefix, the way recovery does:
/// replay every recorded decision sequence, and re-schedule the frontier
/// `({root} ∪ scheduled pendings) − consumed origins`.
fn seed_from(records: &[Record]) -> ResumeSeed {
    let mut candidates: BTreeMap<Vec<bool>, String> = BTreeMap::new();
    candidates.insert(Vec::new(), "<root>".to_string());
    for r in records {
        for (p, s) in &r.pending {
            candidates.insert(p.clone(), s.clone());
        }
    }
    for r in records {
        candidates.remove(&r.origin);
    }
    ResumeSeed {
        replay: records.iter().map(|r| r.decisions.clone()).collect(),
        frontier: candidates
            .into_iter()
            .map(|(prefix, site)| SeedPending { prefix, site })
            .collect(),
    }
}

fn fingerprint(ex: &Exploration<String>) -> Vec<(Vec<bool>, Vec<String>, bool)> {
    ex.paths
        .iter()
        .map(|p| {
            (
                p.decisions.clone(),
                p.trace.clone(),
                matches!(p.outcome, PathOutcome::Crashed(_)),
            )
        })
        .collect()
}

fn explore_with_sink(cfg: &ExplorerConfig) -> (Exploration<String>, Vec<Record>) {
    let sink = Collect::default();
    let ex = explore_fn_seeded(cfg, agent, None, Some(&sink));
    let records = sink.0.into_inner().unwrap_or_else(|e| e.into_inner());
    (ex, records)
}

#[test]
fn full_replay_reexplores_nothing() {
    let cfg = ExplorerConfig::default();
    let (reference, records) = explore_with_sink(&cfg);
    assert_eq!(reference.stats.paths, records.len(), "every path journaled");

    let seed = seed_from(&records);
    assert!(seed.frontier.is_empty(), "a complete journal owes no paths");
    let resumed = explore_fn_seeded(&cfg, agent, Some(&seed), None);
    assert_eq!(fingerprint(&reference), fingerprint(&resumed));
    assert_eq!(
        resumed.stats.fresh_branches, 0,
        "pure replay must not fork or consult the solver for branches"
    );
    assert_eq!(reference.coverage, resumed.coverage);
    assert_eq!(reference.stats.completed, resumed.stats.completed);
    assert_eq!(reference.stats.crashed, resumed.stats.crashed);
    assert!(!resumed.stats.truncated);
}

#[test]
fn partial_journal_resumes_to_identical_exploration() {
    let cfg = ExplorerConfig::default();
    let (reference, records) = explore_with_sink(&cfg);
    // Cut the journal at every possible interruption point.
    for cut in 0..=records.len() {
        let seed = seed_from(&records[..cut]);
        let resumed = explore_fn_seeded(&cfg, agent, Some(&seed), None);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&resumed),
            "resume from a {cut}-record journal diverged"
        );
        assert_eq!(reference.coverage, resumed.coverage, "cut={cut}");
        assert_eq!(reference.stats.instructions, resumed.stats.instructions);
    }
}

#[test]
fn resumed_exploration_is_worker_count_independent() {
    let cfg = ExplorerConfig::default();
    let (reference, records) = explore_with_sink(&cfg);
    let seed = seed_from(&records[..records.len() / 2]);
    for workers in [2, 4] {
        let cfg_n = ExplorerConfig {
            workers,
            ..ExplorerConfig::default()
        };
        let resumed = explore_fn_seeded(&cfg_n, agent, Some(&seed), None);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&resumed),
            "workers={workers}"
        );
        assert_eq!(reference.coverage, resumed.coverage, "workers={workers}");
    }
}

#[test]
fn sink_fires_once_per_new_path_on_resume() {
    let cfg = ExplorerConfig::default();
    let (reference, records) = explore_with_sink(&cfg);
    let cut = records.len() / 2;
    let seed = seed_from(&records[..cut]);
    let resume_sink = Collect::default();
    let resumed = explore_fn_seeded(&cfg, agent, Some(&seed), Some(&resume_sink));
    let new_records = resume_sink
        .0
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    assert_eq!(
        new_records.len(),
        reference.stats.paths - cut,
        "resume journals exactly the paths the interrupted run owed"
    );
    // The union of old and new records is a complete journal.
    let mut all = records[..cut].to_vec();
    all.extend(new_records);
    let full = seed_from(&all);
    assert!(full.frontier.is_empty());
    assert_eq!(full.replay.len(), resumed.stats.paths);
}

#[test]
fn unseeded_explore_fn_matches_seeded_with_empty_seed() {
    let cfg = ExplorerConfig::default();
    let plain = explore_fn(&cfg, agent);
    let seeded = explore_fn_seeded(&cfg, agent, Some(&ResumeSeed::default()), None);
    assert_eq!(fingerprint(&plain), fingerprint(&seeded));
}
