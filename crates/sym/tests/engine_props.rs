//! Randomized-but-deterministic tests for the exploration engine: for
//! seeded random branching programs, the engine must discover exactly the
//! feasible leaves, produce a disjoint and exhaustive partition, and be
//! deterministic.

use soft_smt::{simplify, Solver, Term};
use soft_sym::{explore, ExecCtx, ExplorerConfig, RunEnd};

/// splitmix64: deterministic stream from any seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random program: a perfect binary tree of depth `d` branching on
/// comparisons of byte variables against thresholds; each leaf emits its
/// index.
#[derive(Debug, Clone)]
struct TreeProgram {
    depth: usize,
    /// (variable index 0..3, threshold) per internal node, level-order.
    nodes: Vec<(usize, u8)>,
}

fn arb_program(rng: &mut Rng) -> TreeProgram {
    let depth = 1 + rng.below(3) as usize;
    let n_nodes = (1 << depth) - 1;
    let nodes = (0..n_nodes)
        .map(|_| (rng.below(4) as usize, rng.next() as u8))
        .collect();
    TreeProgram { depth, nodes }
}

fn run_program(p: &TreeProgram, ctx: &mut ExecCtx<'_, usize>) -> RunEnd {
    let vars: Vec<Term> = (0..4).map(|i| Term::var(format!("ep.v{i}"), 8)).collect();
    let mut node = 0usize;
    let mut leaf = 0usize;
    for _level in 0..p.depth {
        let (vi, threshold) = p.nodes[node];
        let cond = vars[vi].clone().ult(Term::bv_const(8, threshold as u64));
        let taken = ctx.branch("ep.node", &cond)?;
        leaf = leaf * 2 + taken as usize;
        node = node * 2 + 1 + taken as usize;
    }
    ctx.emit(leaf);
    Ok(())
}

/// Count feasible leaves by brute-force threshold reasoning: a leaf is
/// feasible iff its accumulated per-variable interval constraints are
/// non-empty.
fn feasible_leaves(p: &TreeProgram) -> usize {
    let mut count = 0usize;
    for leaf in 0..(1usize << p.depth) {
        // lo/hi bounds per variable (inclusive/exclusive ranges on u8).
        let mut lo = [0u16; 4];
        let mut hi = [256u16; 4];
        let mut node = 0usize;
        let mut ok = true;
        for level in 0..p.depth {
            let (vi, t) = p.nodes[node];
            let bit = (leaf >> (p.depth - 1 - level)) & 1;
            if bit == 1 {
                // v < t
                hi[vi] = hi[vi].min(t as u16);
            } else {
                // v >= t
                lo[vi] = lo[vi].max(t as u16);
            }
            if lo[vi] >= hi[vi] {
                ok = false;
                break;
            }
            node = node * 2 + 1 + bit;
        }
        if ok {
            count += 1;
        }
    }
    count
}

const CASES: u64 = 48;

/// The engine explores exactly the feasible leaves.
#[test]
fn engine_finds_exactly_feasible_leaves() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xe291_0000 + case);
        let p = arb_program(&mut rng);
        let expected = feasible_leaves(&p);
        let ex = explore(&ExplorerConfig::default(), |ctx| run_program(&p, ctx));
        assert_eq!(ex.stats.paths, expected, "program {p:?}");
        assert_eq!(ex.stats.completed, expected);
        assert!(!ex.stats.truncated);
    }
}

/// Path conditions form a partition: pairwise disjoint, jointly
/// exhaustive.
#[test]
fn path_conditions_partition() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xe291_1000 + case);
        let p = arb_program(&mut rng);
        let ex = explore(&ExplorerConfig::default(), |ctx| run_program(&p, ctx));
        let conds: Vec<Term> = ex.paths.iter().map(|q| q.condition_term()).collect();
        let mut solver = Solver::new();
        for i in 0..conds.len() {
            for j in (i + 1)..conds.len() {
                assert!(solver.intersect(&conds[i], &conds[j]).is_unsat());
            }
        }
        let union = simplify::mk_or_balanced(&conds);
        assert!(solver.check_one(&union.not()).is_unsat());
    }
}

/// Every path's emitted leaf is consistent with evaluating the
/// program under a model of its own path condition.
#[test]
fn outputs_agree_with_models() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xe291_2000 + case);
        let p = arb_program(&mut rng);
        let ex = explore(&ExplorerConfig::default(), |ctx| run_program(&p, ctx));
        let mut solver = Solver::new();
        for path in &ex.paths {
            let model = match solver.check_one(&path.condition_term()) {
                soft_smt::SatResult::Sat(m) => m,
                other => panic!("path condition unsat? {other:?}"),
            };
            // Re-run the program concretely on the model.
            let mut node = 0usize;
            let mut leaf = 0usize;
            for _level in 0..p.depth {
                let (vi, t) = p.nodes[node];
                let v = model.get(&format!("ep.v{vi}")).unwrap_or(0) as u8;
                let taken = v < t;
                leaf = leaf * 2 + taken as usize;
                node = node * 2 + 1 + taken as usize;
            }
            assert_eq!(path.trace[0], leaf);
        }
    }
}

/// Exploration is deterministic across runs.
#[test]
fn exploration_deterministic() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xe291_3000 + case);
        let p = arb_program(&mut rng);
        let a = explore(&ExplorerConfig::default(), |ctx| run_program(&p, ctx));
        let b = explore(&ExplorerConfig::default(), |ctx| run_program(&p, ctx));
        assert_eq!(a.stats.paths, b.stats.paths);
        let ca: Vec<Term> = a.paths.iter().map(|q| q.condition_term()).collect();
        let cb: Vec<Term> = b.paths.iter().map(|q| q.condition_term()).collect();
        assert_eq!(ca, cb);
    }
}

/// All strategies agree on the explored set.
#[test]
fn strategies_equivalent() {
    use soft_sym::Strategy;
    for case in 0..CASES {
        let mut rng = Rng::new(0xe291_4000 + case);
        let p = arb_program(&mut rng);
        let mut sets: Vec<Vec<Term>> = Vec::new();
        for s in [
            Strategy::Dfs,
            Strategy::Bfs,
            Strategy::Random,
            Strategy::CoverageInterleaved,
        ] {
            let cfg = ExplorerConfig {
                strategy: s,
                ..Default::default()
            };
            let ex = explore(&cfg, |ctx| run_program(&p, ctx));
            let mut conds: Vec<Term> = ex.paths.iter().map(|q| q.condition_term()).collect();
            conds.sort();
            sets.push(conds);
        }
        for w in sets.windows(2) {
            assert_eq!(&w[0], &w[1]);
        }
    }
}
