//! soft-fleet: multi-machine sharded serving for the SOFT pipeline.
//!
//! One `soft route` front-end spreads `soft submit` jobs across many
//! `soft serve` back-ends:
//!
//! - [`ring`] — the consistent-hash ring (virtual nodes) that gives
//!   every job content key a stable owner and an ordered list of
//!   replica successors.
//! - [`job`] — job identity shared with the serve daemon, so the router
//!   computes byte-identical content keys.
//! - [`router`] — the front-end itself: placement, gossip-driven
//!   work-stealing, failover, and fleet-wide duplicate coalescing.
//!
//! The back-end half of the protocol (steal registry, replica ingest,
//! membership frames) lives in `soft serve` and `soft-harness`; this
//! crate holds everything that runs *outside* the solving daemons.

pub mod job;
pub mod ring;
pub mod router;

pub use job::{agent_fingerprint, fingerprint_with_build, resolve, ResolvedJob};
pub use ring::Ring;
pub use router::{fleet_request, run_router, RouterConfig};
