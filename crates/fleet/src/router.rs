//! `soft route` — the fleet front-end.
//!
//! The router accepts the exact frames `soft submit` already speaks and
//! spreads them over a fleet of `soft serve` back-ends:
//!
//! - **Placement.** Each job's content key hashes onto the consistent
//!   ring ([`crate::Ring`]); the first *live* ring successor owns it.
//!   Ownership is what makes store hits work fleet-wide: the same key
//!   always lands where its entry (or a replica of it) lives.
//! - **Work-stealing.** Back-ends gossip queue depth through their
//!   status frames. When a back-end is saturated (queued jobs, or every
//!   worker busy) and a replica is idle, new jobs divert to the idle
//!   replica, and the router sends the saturated back-end a `steal`
//!   frame releasing already-queued jobs; those come back as `stolen`
//!   replies on their job connections and are re-dispatched.
//! - **Failover.** A dead back-end (connect refused, or the stream dies
//!   mid-job) is marked down and the job retries on the next live ring
//!   successor — a re-routed fresh solve at worst, a replica store hit
//!   at best. Never a lost job.
//! - **Claim forwarding.** Concurrent submissions of one content key —
//!   even on different router connections — coalesce onto a single
//!   dispatch; every waiter gets the one result. Combined with the
//!   back-ends' own per-key claims, a duplicate can never solve twice
//!   fleet-wide.
//!
//! The router holds no store and no solver: killing it loses nothing
//! but open connections.

use crate::job::resolve;
use crate::ring::Ring;
use soft_conform::BackoffPolicy;
use soft_harness::journal::atomic_write;
use soft_harness::json::Json;
use soft_harness::proto::{self, FleetView, FrameEvent, JobSpec};
use soft_harness::store::job_key;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Read timeout on router sockets: the poll granularity for drain
/// checks (client side) and liveness waits (back-end side).
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Consecutive idle windows tolerated on a *control* exchange (status
/// probe, registration, steal, drain) before the back-end counts as
/// unresponsive. Job forwards have no such limit — solves take as long
/// as they take, and a dead peer shows up as a stream error instead.
const CONTROL_IDLE_LIMIT: u32 = 25;

/// How often the gossip thread probes back-end health and queue depth.
const GOSSIP_INTERVAL: Duration = Duration::from_millis(150);

/// A job bounced by `stolen` replies more than this many times stops
/// being stealable: the router pins it (no `routed` marker) to the next
/// back-end so rebalancing can never livelock a job.
const MAX_STEAL_BOUNCES: u32 = 3;

fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// How the router runs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// TCP port on 127.0.0.1; `0` binds an ephemeral port.
    pub port: u16,
    /// Back-end addresses in ring-identity order.
    pub backends: Vec<String>,
    /// Virtual nodes per back-end on the hash ring.
    pub vnodes: u32,
    /// Ring successors each back-end pushes published entries to.
    pub replicas: u32,
    /// Publish the bound address here (atomic write), for clients.
    pub addr_file: Option<PathBuf>,
}

/// The router's live view of one back-end.
struct Backend {
    addr: String,
    /// Reachable and registered.
    alive: AtomicBool,
    /// Jobs this router currently has dispatched to it.
    active: AtomicU64,
    /// Last gossiped queue depth (jobs waiting for a worker there).
    queue_depth: AtomicU64,
    /// Worker-pool size learned at registration (0 = unknown).
    workers: AtomicU64,
}

#[derive(Default)]
struct RouterCounters {
    jobs_routed: AtomicU64,
    coalesced_jobs: AtomicU64,
    failovers: AtomicU64,
    steal_reroutes: AtomicU64,
    steals_requested: AtomicU64,
    balance_routes: AtomicU64,
}

impl RouterCounters {
    fn to_json(&self, state: &RouterState) -> Json {
        let u = |a: &AtomicU64| Json::UInt(a.load(Ordering::Relaxed));
        let alive = state
            .backends
            .iter()
            .filter(|b| b.alive.load(Ordering::Relaxed))
            .count() as u64;
        Json::Object(vec![
            ("jobs_routed".to_string(), u(&self.jobs_routed)),
            ("coalesced_jobs".to_string(), u(&self.coalesced_jobs)),
            ("failovers".to_string(), u(&self.failovers)),
            ("steal_reroutes".to_string(), u(&self.steal_reroutes)),
            ("steals_requested".to_string(), u(&self.steals_requested)),
            ("balance_routes".to_string(), u(&self.balance_routes)),
            ("backends_alive".to_string(), Json::UInt(alive)),
            (
                "backends_total".to_string(),
                Json::UInt(state.backends.len() as u64),
            ),
        ])
    }
}

/// One in-flight content key: the first submission dispatches, every
/// concurrent duplicate waits here for the shared result.
struct Ticket {
    slot: Mutex<Option<Json>>,
    cv: Condvar,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, reply: Json) {
        *recover(&self.slot) = Some(reply);
        self.cv.notify_all();
    }

    fn wait(&self) -> Json {
        let mut slot = recover(&self.slot);
        loop {
            if let Some(reply) = slot.as_ref() {
                return reply.clone();
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct RouterState {
    cfg: RouterConfig,
    ring: Ring,
    backends: Vec<Backend>,
    claims: Mutex<HashMap<String, Arc<Ticket>>>,
    counters: RouterCounters,
    draining: AtomicBool,
}

/// Removes the claim on drop and, if the dispatcher never produced a
/// reply (panic path), fulfills the ticket with an error so coalesced
/// waiters cannot hang forever.
struct ClaimGuard<'a> {
    state: &'a RouterState,
    key: String,
    ticket: Arc<Ticket>,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if recover(&self.ticket.slot).is_none() {
            drop(recover(&self.ticket.slot)); // release before fulfill relocks
            self.ticket
                .fulfill(proto::error_response("router dispatch aborted"));
        }
        recover(&self.state.claims).remove(&self.key);
    }
}

/// Send `msg` to `addr` and await one reply frame. `idle_limit` bounds
/// how many consecutive read-timeout windows to tolerate (`None` for
/// job forwards, which may legitimately be silent for minutes while the
/// back-end solves).
fn exchange(addr: &str, msg: &Json, idle_limit: Option<u32>) -> Result<Json, String> {
    let policy = BackoffPolicy::quick(3, 0x50F7);
    let stream = policy
        .run(|| TcpStream::connect(addr))
        .map_err(|chain| format!("connect {addr}: {}", chain.join("; ")))?;
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut writer = BufWriter::new(stream);
    proto::write_frame(&mut writer, msg).map_err(|e| format!("send to {addr}: {e}"))?;
    writer.flush().map_err(|e| format!("send to {addr}: {e}"))?;
    let mut reader = BufReader::new(read_half);
    let mut idles = 0u32;
    loop {
        match proto::read_frame_idle(&mut reader)? {
            FrameEvent::Frame(reply) => return Ok(reply),
            FrameEvent::Eof => return Err(format!("{addr} closed before replying")),
            FrameEvent::Idle => {
                idles += 1;
                if let Some(limit) = idle_limit {
                    if idles > limit {
                        return Err(format!("{addr} unresponsive"));
                    }
                }
            }
        }
    }
}

impl RouterState {
    fn backend(&self, idx: usize) -> &Backend {
        &self.backends[idx]
    }

    fn mark_dead(&self, idx: usize) {
        let b = self.backend(idx);
        if b.alive.swap(false, Ordering::Relaxed) {
            eprintln!("soft route: back-end {} is down", b.addr);
        }
        b.queue_depth.store(0, Ordering::Relaxed);
    }

    /// A back-end with queued jobs, or every worker busy, should not
    /// receive more work while an idle replica exists.
    fn saturated(&self, idx: usize) -> bool {
        let b = self.backend(idx);
        if b.queue_depth.load(Ordering::Relaxed) > 0 {
            return true;
        }
        let w = b.workers.load(Ordering::Relaxed);
        w > 0 && b.active.load(Ordering::Relaxed) >= w
    }

    /// Pick the back-end for `key`: its first live ring successor, or —
    /// when that owner is saturated and an idle live replica exists —
    /// the idle replica (work-stealing at dispatch time). `avoid` skips
    /// the back-end that just released the job via `steal`.
    fn choose(&self, key: &str, avoid: Option<usize>) -> Option<usize> {
        let order = self.ring.successors(key);
        let live: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| self.backend(i).alive.load(Ordering::Relaxed) && Some(i) != avoid)
            .collect();
        if live.is_empty() {
            // Only the avoided back-end (if any) is left alive.
            return order
                .into_iter()
                .find(|&i| self.backend(i).alive.load(Ordering::Relaxed));
        }
        let owner = live[0];
        if !self.saturated(owner) {
            return Some(owner);
        }
        match live.iter().copied().find(|&i| !self.saturated(i)) {
            Some(idle) => {
                self.counters.balance_routes.fetch_add(1, Ordering::Relaxed);
                Some(idle)
            }
            None => Some(owner),
        }
    }

    /// Register one back-end: announce the membership, learn its worker
    /// capacity and queue depth.
    fn register(&self, idx: usize) -> bool {
        let view = FleetView {
            backends: self.cfg.backends.clone(),
            you: idx,
            vnodes: self.cfg.vnodes,
            replicas: self.cfg.replicas,
        };
        let b = self.backend(idx);
        match exchange(&b.addr, &view.to_json(), Some(CONTROL_IDLE_LIMIT)) {
            Ok(reply) if reply.get("type").and_then(|t| t.as_str().ok()) == Some("registered") => {
                if let Some(w) = reply.get("workers").and_then(|v| v.as_u64().ok()) {
                    b.workers.store(w, Ordering::Relaxed);
                }
                if let Some(d) = reply.get("queue_depth").and_then(|v| v.as_u64().ok()) {
                    b.queue_depth.store(d, Ordering::Relaxed);
                }
                if !b.alive.swap(true, Ordering::Relaxed) {
                    eprintln!("soft route: back-end {} registered", b.addr);
                }
                true
            }
            _ => {
                b.alive.store(false, Ordering::Relaxed);
                false
            }
        }
    }

    /// One gossip round: (re-)register dead back-ends, refresh queue
    /// depths of live ones, and trigger steals when a saturated
    /// back-end coexists with an idle one.
    fn gossip_round(&self) {
        for idx in 0..self.backends.len() {
            let b = self.backend(idx);
            if !b.alive.load(Ordering::Relaxed) {
                self.register(idx);
                continue;
            }
            match exchange(&b.addr, &proto::status_request(), Some(CONTROL_IDLE_LIMIT)) {
                Ok(reply) => {
                    if let Some(d) = reply.get("queue_depth").and_then(|v| v.as_u64().ok()) {
                        b.queue_depth.store(d, Ordering::Relaxed);
                    }
                    if let Some(w) = reply.get("workers").and_then(|v| v.as_u64().ok()) {
                        if w > 0 {
                            b.workers.store(w, Ordering::Relaxed);
                        }
                    }
                }
                Err(_) => self.mark_dead(idx),
            }
        }
        // Steal pass: any queued work next to idle capacity moves.
        let idle_exists = (0..self.backends.len()).any(|i| {
            self.backend(i).alive.load(Ordering::Relaxed)
                && !self.saturated(i)
                && self.backend(i).queue_depth.load(Ordering::Relaxed) == 0
        });
        if !idle_exists {
            return;
        }
        for idx in 0..self.backends.len() {
            let b = self.backend(idx);
            let depth = b.queue_depth.load(Ordering::Relaxed);
            if !b.alive.load(Ordering::Relaxed) || depth == 0 {
                continue;
            }
            self.counters
                .steals_requested
                .fetch_add(1, Ordering::Relaxed);
            match exchange(
                &b.addr,
                &proto::steal_request(depth),
                Some(CONTROL_IDLE_LIMIT),
            ) {
                Ok(_) => b.queue_depth.store(0, Ordering::Relaxed),
                Err(_) => self.mark_dead(idx),
            }
        }
    }

    /// Dispatch one job frame until a back-end answers it. Walks the
    /// live ring successors on failure; honors `stolen` bounces up to
    /// [`MAX_STEAL_BOUNCES`], after which the job pins where it lands.
    fn dispatch(&self, key: &str, frame: &Json) -> Json {
        self.counters.jobs_routed.fetch_add(1, Ordering::Relaxed);
        let mut avoid = None;
        let mut bounces = 0u32;
        // Each live back-end may be tried a few times (steal bounces,
        // transient deaths); this cap only backstops pathology.
        let max_attempts = 4 * self.backends.len() as u32 + 8;
        for _ in 0..max_attempts {
            let Some(idx) = self.choose(key, avoid) else {
                return proto::error_response("no live back-end in the fleet");
            };
            avoid = None;
            let stealable = bounces < MAX_STEAL_BOUNCES;
            let marked = mark_routed(frame, stealable);
            let b = self.backend(idx);
            b.active.fetch_add(1, Ordering::Relaxed);
            let outcome = exchange(&b.addr, &marked, None);
            b.active.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(reply) => {
                    if reply.get("type").and_then(|t| t.as_str().ok()) == Some("stolen") {
                        // The back-end released the queued job; place it
                        // elsewhere.
                        self.counters.steal_reroutes.fetch_add(1, Ordering::Relaxed);
                        bounces += 1;
                        avoid = Some(idx);
                        continue;
                    }
                    return reply;
                }
                Err(e) => {
                    // Connect failure or mid-job stream death: the
                    // back-end is gone. Fail over to the next live ring
                    // successor — a fresh solve there at worst.
                    eprintln!("soft route: job {key} failed over: {e}");
                    self.mark_dead(idx);
                    self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        proto::error_response("job bounced between back-ends too many times")
    }

    /// Serve one `job` frame end to end, coalescing duplicates of the
    /// same content key onto a single dispatch.
    fn serve_job(&self, msg: &Json) -> Json {
        let rj = match JobSpec::from_json(msg).and_then(resolve) {
            Ok(rj) => rj,
            Err(e) => return proto::error_response(&e),
        };
        let key = job_key(&rj.fp_a, &rj.fp_b, &rj.spec);
        let (ticket, runner) = {
            let mut claims = recover(&self.claims);
            match claims.get(&key) {
                Some(t) => (Arc::clone(t), false),
                None => {
                    let t = Arc::new(Ticket::new());
                    claims.insert(key.clone(), Arc::clone(&t));
                    (t, true)
                }
            }
        };
        if !runner {
            self.counters.coalesced_jobs.fetch_add(1, Ordering::Relaxed);
            return ticket.wait();
        }
        let guard = ClaimGuard {
            state: self,
            key: key.clone(),
            ticket: Arc::clone(&ticket),
        };
        let reply = self.dispatch(&key, msg);
        ticket.fulfill(reply.clone());
        drop(guard);
        reply
    }

    /// Fleet-wide `status`: every live back-end's counters summed,
    /// plus the router's own counters under `"router"`.
    fn aggregate_status(&self) -> Json {
        let mut sums: Vec<(String, u64)> = Vec::new();
        for b in &self.backends {
            if !b.alive.load(Ordering::Relaxed) {
                continue;
            }
            let Ok(reply) = exchange(&b.addr, &proto::status_request(), Some(CONTROL_IDLE_LIMIT))
            else {
                continue;
            };
            let Json::Object(fields) = reply else {
                continue;
            };
            for (k, v) in fields {
                let Ok(n) = v.as_u64() else { continue };
                match sums.iter_mut().find(|(name, _)| *name == k) {
                    Some((_, total)) => *total += n,
                    None => sums.push((k, n)),
                }
            }
        }
        let mut fields = vec![("type".to_string(), Json::Str("status".to_string()))];
        fields.extend(sums.into_iter().map(|(k, n)| (k, Json::UInt(n))));
        fields.push(("router".to_string(), self.counters.to_json(self)));
        Json::Object(fields)
    }

    /// Topology + per-back-end health for `soft fleet`.
    fn fleet_report(&self) -> Json {
        let backends = self
            .backends
            .iter()
            .map(|b| {
                Json::Object(vec![
                    ("addr".to_string(), Json::Str(b.addr.clone())),
                    (
                        "alive".to_string(),
                        Json::Bool(b.alive.load(Ordering::Relaxed)),
                    ),
                    (
                        "active".to_string(),
                        Json::UInt(b.active.load(Ordering::Relaxed)),
                    ),
                    (
                        "queue_depth".to_string(),
                        Json::UInt(b.queue_depth.load(Ordering::Relaxed)),
                    ),
                    (
                        "workers".to_string(),
                        Json::UInt(b.workers.load(Ordering::Relaxed)),
                    ),
                ])
            })
            .collect();
        Json::Object(vec![
            ("type".to_string(), Json::Str("fleet".to_string())),
            ("vnodes".to_string(), Json::UInt(self.cfg.vnodes as u64)),
            ("replicas".to_string(), Json::UInt(self.cfg.replicas as u64)),
            ("backends".to_string(), Json::Array(backends)),
            ("router".to_string(), self.counters.to_json(self)),
        ])
    }

    /// Forward `drain` to every live back-end (idempotent there).
    fn drain_backends(&self) {
        for b in &self.backends {
            if b.alive.load(Ordering::Relaxed) {
                let _ = exchange(&b.addr, &proto::drain_request(), Some(CONTROL_IDLE_LIMIT));
            }
        }
    }
}

/// The forwarded job frame: the client's object plus `routed: true`
/// (when stealable), which tells the back-end to register the queued
/// job with its steal registry. A pinned re-send (after too many steal
/// bounces) omits the marker so the job can no longer move.
fn mark_routed(frame: &Json, stealable: bool) -> Json {
    let Json::Object(fields) = frame else {
        return frame.clone();
    };
    let mut fields: Vec<(String, Json)> = fields
        .iter()
        .filter(|(k, _)| k != "routed")
        .cloned()
        .collect();
    if stealable {
        fields.push(("routed".to_string(), Json::Bool(true)));
    }
    Json::Object(fields)
}

/// One client connection at the router: frames in, frames out.
fn handle_conn(stream: TcpStream, state: &RouterState) {
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let msg = match proto::read_frame_idle(&mut reader) {
            Ok(FrameEvent::Frame(m)) => m,
            Ok(FrameEvent::Eof) => return,
            Ok(FrameEvent::Idle) => {
                if state.draining.load(Ordering::Relaxed) || soft_serve::sigterm_count() >= 1 {
                    return;
                }
                continue;
            }
            Err(e) => {
                let _ = proto::write_frame(&mut writer, &proto::error_response(&e));
                let _ = writer.flush();
                return;
            }
        };
        let kind = msg
            .field("type")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let reply = match kind.as_str() {
            "job" => state.serve_job(&msg),
            "status" => state.aggregate_status(),
            "fleet" => state.fleet_report(),
            "drain" => {
                state.draining.store(true, Ordering::Relaxed);
                Json::Object(vec![(
                    "type".to_string(),
                    Json::Str("draining".to_string()),
                )])
            }
            other => proto::error_response(&format!("router does not accept '{other}'")),
        };
        if proto::write_frame(&mut writer, &reply).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Build the `fleet` topology request.
pub fn fleet_request() -> Json {
    Json::Object(vec![("type".to_string(), Json::Str("fleet".to_string()))])
}

/// Run the router until drained (SIGTERM or a `drain` request). On the
/// way out, in-flight client connections finish first, then every live
/// back-end is drained.
pub fn run_router(cfg: &RouterConfig) -> Result<(), String> {
    if cfg.backends.is_empty() {
        return Err("router needs at least one back-end".to_string());
    }
    let state = Arc::new(RouterState {
        ring: Ring::new(&cfg.backends, cfg.vnodes),
        backends: cfg
            .backends
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                alive: AtomicBool::new(false),
                active: AtomicU64::new(0),
                queue_depth: AtomicU64::new(0),
                workers: AtomicU64::new(0),
            })
            .collect(),
        claims: Mutex::new(HashMap::new()),
        counters: RouterCounters::default(),
        draining: AtomicBool::new(false),
        cfg: cfg.clone(),
    });
    soft_serve::install_sigterm_latch();
    // Initial registration sweep: back-ends that are up learn the
    // membership before the first job arrives; the rest retry in gossip.
    let mut registered = 0;
    for idx in 0..state.backends.len() {
        if state.register(idx) {
            registered += 1;
        }
    }
    eprintln!(
        "soft route: {registered}/{} back-end(s) registered",
        state.backends.len()
    );
    let listener =
        TcpListener::bind(("127.0.0.1", cfg.port)).map_err(|e| format!("bind 127.0.0.1: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    if let Some(path) = &cfg.addr_file {
        atomic_write(path, addr.to_string().as_bytes(), false)
            .map_err(|e| format!("publish addr {}: {e}", path.display()))?;
    }
    println!("soft route: listening on {addr}");
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let gossip_state = Arc::clone(&state);
    let gossip = std::thread::spawn(move || {
        while !gossip_state.draining.load(Ordering::Relaxed) && soft_serve::sigterm_count() == 0 {
            gossip_state.gossip_round();
            std::thread::sleep(GOSSIP_INTERVAL);
        }
    });
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if soft_serve::sigterm_count() >= 1 || state.draining.load(Ordering::Relaxed) {
            state.draining.store(true, Ordering::Relaxed);
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let st = Arc::clone(&state);
                conns.push(std::thread::spawn(move || handle_conn(stream, &st)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
        conns.retain(|h| !h.is_finished());
    }
    drop(listener);
    eprintln!(
        "soft route: draining ({} connection(s) open) ...",
        conns.len()
    );
    for h in conns {
        let _ = h.join();
    }
    let _ = gossip.join();
    // Client work is done; now drain the back-ends themselves so one
    // `--drain` (or SIGTERM) at the router stops the whole fleet.
    state.drain_backends();
    eprintln!("soft route: drained");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(n: usize) -> RouterState {
        let backends: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 9100 + i)).collect();
        RouterState {
            ring: Ring::new(&backends, 64),
            backends: backends
                .iter()
                .map(|addr| Backend {
                    addr: addr.clone(),
                    alive: AtomicBool::new(true),
                    active: AtomicU64::new(0),
                    queue_depth: AtomicU64::new(0),
                    workers: AtomicU64::new(1),
                })
                .collect(),
            claims: Mutex::new(HashMap::new()),
            counters: RouterCounters::default(),
            draining: AtomicBool::new(false),
            cfg: RouterConfig {
                port: 0,
                backends,
                vnodes: 64,
                replicas: 1,
                addr_file: None,
            },
        }
    }

    #[test]
    fn choose_prefers_the_owner_then_live_successors() {
        let s = state(3);
        let owner = s.ring.owner("somekey").unwrap();
        assert_eq!(s.choose("somekey", None), Some(owner));
        // Owner dies: the next ring successor takes over.
        s.backends[owner].alive.store(false, Ordering::Relaxed);
        let next = s.ring.successors("somekey")[1];
        assert_eq!(s.choose("somekey", None), Some(next));
        // Everyone dies: explicit None, not a panic.
        for b in &s.backends {
            b.alive.store(false, Ordering::Relaxed);
        }
        assert_eq!(s.choose("somekey", None), None);
    }

    #[test]
    fn choose_diverts_from_a_saturated_owner_to_an_idle_replica() {
        let s = state(3);
        let order = s.ring.successors("balancekey");
        let (owner, idle) = (order[0], order[1]);
        // Owner saturated by gossiped queue depth.
        s.backends[owner].queue_depth.store(2, Ordering::Relaxed);
        assert_eq!(s.choose("balancekey", None), Some(idle));
        assert_eq!(s.counters.balance_routes.load(Ordering::Relaxed), 1);
        // All saturated: the owner keeps the job (it queues there).
        for b in &s.backends {
            b.queue_depth.store(2, Ordering::Relaxed);
        }
        assert_eq!(s.choose("balancekey", None), Some(owner));
        // Saturation by active-vs-workers counts too.
        for b in &s.backends {
            b.queue_depth.store(0, Ordering::Relaxed);
        }
        s.backends[owner].active.store(1, Ordering::Relaxed); // workers=1
        assert_eq!(s.choose("balancekey", None), Some(idle));
    }

    #[test]
    fn choose_honors_avoid_unless_it_is_the_last_backend_standing() {
        let s = state(3);
        let order = s.ring.successors("avoidkey");
        let owner = order[0];
        assert_eq!(s.choose("avoidkey", Some(owner)), Some(order[1]));
        for &i in &order[1..] {
            s.backends[i].alive.store(false, Ordering::Relaxed);
        }
        // Avoided but sole survivor: better there than nowhere.
        assert_eq!(s.choose("avoidkey", Some(owner)), Some(owner));
    }

    #[test]
    fn mark_routed_sets_and_strips_the_marker() {
        let frame = Json::Object(vec![
            ("type".to_string(), Json::Str("job".to_string())),
            ("seed".to_string(), Json::UInt(7)),
        ]);
        let routed = mark_routed(&frame, true);
        assert_eq!(
            routed.get("routed").and_then(|v| v.as_bool().ok()),
            Some(true)
        );
        let pinned = mark_routed(&routed, false);
        assert!(pinned.get("routed").is_none(), "pinning strips the marker");
        assert_eq!(pinned.get("seed").and_then(|v| v.as_u64().ok()), Some(7));
    }

    #[test]
    fn tickets_broadcast_one_result_to_every_waiter() {
        let t = Arc::new(Ticket::new());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.wait())
            })
            .collect();
        t.fulfill(proto::error_response("done"));
        for w in waiters {
            let got = w.join().unwrap();
            assert_eq!(got.field("message").unwrap().as_str().unwrap(), "done");
        }
    }
}
