//! Job identity, shared by the serve daemon and the fleet router.
//!
//! The router must compute the *same* content key a back-end will store
//! an entry under — ring placement, duplicate coalescing, and replica
//! lookup all hang off that key — so the protocol registry, agent and
//! test lookup, and fingerprint computation live here, in the one crate
//! both sides depend on.

use soft_agents::{AgentKind, OF10};
use soft_harness::journal::fnv64_hex;
use soft_harness::proto::JobSpec;
use soft_harness::TestCase;
use soft_protocol::{AgentRef, Protocol};
use soft_tlv::TLV;

/// Every protocol this build can serve. Adding a protocol is one entry
/// here; job keys fold the protocol id, so entries of different
/// protocols can never alias in the store.
pub static PROTOCOLS: [&dyn Protocol; 2] = [&OF10, &TLV];

/// Resolve a protocol id (`"of10"`, `"tlv"`) against the registry.
pub fn protocol_by_id(id: &str) -> Option<&'static dyn Protocol> {
    PROTOCOLS.iter().copied().find(|p| p.id() == id)
}

/// Resolve an agent name under `proto` to a handle.
pub fn agent_by_name(proto: &'static dyn Protocol, name: &str) -> Option<AgentRef> {
    proto.agent_id(name).map(|agent| AgentRef {
        protocol: proto,
        agent,
    })
}

/// Parse an OpenFlow agent id as accepted on the wire and the CLI
/// (OpenFlow compatibility path; the generic resolver is
/// [`agent_by_name`]).
pub fn parse_agent(s: &str) -> Option<AgentKind> {
    match s {
        "reference" | "ref" => Some(AgentKind::Reference),
        "ovs" | "openvswitch" => Some(AgentKind::OpenVSwitch),
        "modified" => Some(AgentKind::Modified),
        "panicky" => Some(AgentKind::Panicky),
        _ => None,
    }
}

/// Look a test id up in the OpenFlow suite (OpenFlow compatibility
/// path; generic callers go through [`Protocol::tests`]).
pub fn find_test(id: &str) -> Option<TestCase> {
    OF10.find_test(id)
}

/// Fingerprint of an agent's current code, computed without any
/// solving: the FNV hash of its complete coverage universe (every
/// instruction-block and branch-site label) folded with the build-time
/// source hash of the model-defining crates (the protocol's
/// [`Protocol::build_fingerprint`]). The label set alone is not
/// enough — a change that flips a branch constant or an emitted output
/// keeps every label while changing behaviour — so the build hash
/// covers what the universe cannot see: an unchanged fingerprint
/// certifies unchanged model *sources*, not just an unchanged label
/// set.
pub fn agent_fingerprint(agent: impl Into<AgentRef>) -> String {
    let agent = agent.into();
    fingerprint_with_build(agent.protocol.build_fingerprint(), agent)
}

/// [`agent_fingerprint`] under an explicit build hash (test seam).
pub fn fingerprint_with_build(build: &str, agent: impl Into<AgentRef>) -> String {
    let agent = agent.into();
    let u = agent.make().universe();
    let mut parts: Vec<&str> = vec!["agent", agent.id(), "build", build, "blocks"];
    parts.extend(u.blocks.iter().copied());
    parts.push("branch_sites");
    parts.extend(u.branch_sites.iter().copied());
    fnv64_hex(&parts)
}

/// A job spec validated against the protocol registry, with both
/// fingerprints settled (client override wins; the override is what
/// lets tests and remote clients declare "this agent changed").
pub struct ResolvedJob {
    /// The validated spec, verbatim.
    pub spec: JobSpec,
    /// The resolved protocol.
    pub protocol: &'static dyn Protocol,
    /// Parsed agent A.
    pub agent_a: AgentRef,
    /// Parsed agent B.
    pub agent_b: AgentRef,
    /// The resolved test case.
    pub test: TestCase,
    /// Settled fingerprint of agent A.
    pub fp_a: String,
    /// Settled fingerprint of agent B.
    pub fp_b: String,
}

/// Validate `spec` and settle its fingerprints.
pub fn resolve(spec: JobSpec) -> Result<ResolvedJob, String> {
    let protocol = protocol_by_id(&spec.protocol)
        .ok_or_else(|| format!("unknown protocol '{}'", spec.protocol))?;
    let agent_a = agent_by_name(protocol, &spec.agent_a)
        .ok_or_else(|| format!("unknown agent '{}'", spec.agent_a))?;
    let agent_b = agent_by_name(protocol, &spec.agent_b)
        .ok_or_else(|| format!("unknown agent '{}'", spec.agent_b))?;
    let test = protocol
        .find_test(&spec.test)
        .ok_or_else(|| format!("unknown test '{}'", spec.test))?;
    let fp_a = spec
        .fp_a
        .clone()
        .unwrap_or_else(|| agent_fingerprint(agent_a));
    let fp_b = spec
        .fp_b
        .clone()
        .unwrap_or_else(|| agent_fingerprint(agent_b));
    Ok(ResolvedJob {
        spec,
        protocol,
        agent_a,
        agent_b,
        test,
        fp_a,
        fp_b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fingerprints_are_deterministic_and_distinct() {
        for agent in AgentKind::all() {
            assert_eq!(agent_fingerprint(agent), agent_fingerprint(agent));
        }
        let fps: HashSet<String> = AgentKind::all()
            .iter()
            .map(|&a| agent_fingerprint(a))
            .collect();
        assert_eq!(fps.len(), AgentKind::all().len(), "agents must not collide");
    }

    #[test]
    fn fingerprints_fold_in_the_build_hash() {
        // A source change that keeps the label universe intact still
        // changes the build hash, which must change every fingerprint —
        // otherwise a restarted daemon would serve stale artifacts.
        assert_eq!(soft_agents::BUILD_FINGERPRINT.len(), 16);
        assert!(soft_agents::BUILD_FINGERPRINT
            .chars()
            .all(|c| c.is_ascii_hexdigit()));
        for agent in AgentKind::all() {
            assert_ne!(
                fingerprint_with_build("0000000000000000", agent),
                fingerprint_with_build("ffffffffffffffff", agent),
                "build hash must reach the fingerprint of {}",
                agent.id()
            );
        }
    }

    #[test]
    fn registry_resolves_both_protocols() {
        assert_eq!(protocol_by_id("of10").unwrap().id(), "of10");
        assert_eq!(protocol_by_id("tlv").unwrap().id(), "tlv");
        assert!(protocol_by_id("of99").is_none());
        let strict = agent_by_name(&TLV, "strict").unwrap();
        assert_eq!(strict.id(), "strict");
        assert_eq!(strict.protocol.id(), "tlv");
        assert!(agent_by_name(&TLV, "reference").is_none());
        // Same-named agents under different protocols would still get
        // distinct fingerprints: the protocol's build hash is folded in.
        assert_ne!(
            agent_fingerprint(strict),
            agent_fingerprint(AgentKind::Reference)
        );
    }

    fn spec(protocol: &str, a: &str, b: &str, t: &str) -> JobSpec {
        JobSpec {
            protocol: protocol.to_string(),
            agent_a: a.to_string(),
            agent_b: b.to_string(),
            test: t.to_string(),
            seed: 1,
            budget_conflicts: None,
            fuzz: 0,
            retry_rungs: 0,
            fp_a: None,
            fp_b: None,
        }
    }

    #[test]
    fn resolve_validates_agents_and_tests() {
        assert!(resolve(spec("of10", "reference", "ovs", "queue_config")).is_ok());
        assert!(resolve(spec("of10", "nope", "ovs", "queue_config")).is_err());
        assert!(resolve(spec("of10", "reference", "ovs", "no_such_test")).is_err());
        assert!(resolve(spec("bogus", "reference", "ovs", "queue_config")).is_err());
        // A fingerprint override wins over the computed fingerprint.
        let mut s = spec("of10", "reference", "ovs", "queue_config");
        s.fp_a = Some("deadbeefdeadbeef".to_string());
        let rj = resolve(s).unwrap();
        assert_eq!(rj.fp_a, "deadbeefdeadbeef");
        assert_eq!(rj.fp_b, agent_fingerprint(AgentKind::OpenVSwitch));
    }

    #[test]
    fn resolve_is_protocol_scoped() {
        let rj = resolve(spec("tlv", "strict", "lenient", "echo")).expect("tlv job");
        assert_eq!(rj.protocol.id(), "tlv");
        assert_eq!(rj.agent_a.id(), "strict");
        // OpenFlow agents and tests do not leak into the TLV namespace.
        assert!(resolve(spec("tlv", "reference", "ovs", "echo")).is_err());
        assert!(resolve(spec("tlv", "strict", "lenient", "queue_config")).is_err());
        assert!(resolve(spec("of10", "strict", "lenient", "queue_config")).is_err());
    }
}
