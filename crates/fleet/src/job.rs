//! Job identity, shared by the serve daemon and the fleet router.
//!
//! The router must compute the *same* content key a back-end will store
//! an entry under — ring placement, duplicate coalescing, and replica
//! lookup all hang off that key — so the agent registry, test lookup,
//! and fingerprint computation live here, in the one crate both sides
//! depend on.

use soft_agents::AgentKind;
use soft_harness::journal::fnv64_hex;
use soft_harness::proto::JobSpec;
use soft_harness::{suite, TestCase};

/// Parse an agent id as accepted on the wire and the CLI.
pub fn parse_agent(s: &str) -> Option<AgentKind> {
    match s {
        "reference" | "ref" => Some(AgentKind::Reference),
        "ovs" | "openvswitch" => Some(AgentKind::OpenVSwitch),
        "modified" => Some(AgentKind::Modified),
        "panicky" => Some(AgentKind::Panicky),
        _ => None,
    }
}

/// Look a test id up in the full suite (Table 1 + extensions + Table 5
/// ablations).
pub fn find_test(id: &str) -> Option<TestCase> {
    let mut tests = suite::table1_suite();
    tests.push(suite::queue_config());
    tests.push(suite::timeout_flow_mod());
    tests.extend(suite::ablation::table5_suite());
    tests.into_iter().find(|t| t.id == id)
}

/// Fingerprint of an agent's current code, computed without any
/// solving: the FNV hash of its complete coverage universe (every
/// instruction-block and branch-site label) folded with the build-time
/// source hash of the model-defining crates
/// ([`soft_agents::BUILD_FINGERPRINT`]). The label set alone is not
/// enough — a change that flips a branch constant or an emitted output
/// keeps every label while changing behaviour — so the build hash
/// covers what the universe cannot see: an unchanged fingerprint
/// certifies unchanged model *sources*, not just an unchanged label
/// set.
pub fn agent_fingerprint(agent: AgentKind) -> String {
    fingerprint_with_build(soft_agents::BUILD_FINGERPRINT, agent)
}

/// [`agent_fingerprint`] under an explicit build hash (test seam).
pub fn fingerprint_with_build(build: &str, agent: AgentKind) -> String {
    let u = agent.make().universe();
    let mut parts: Vec<&str> = vec!["agent", agent.id(), "build", build, "blocks"];
    parts.extend(u.blocks.iter().copied());
    parts.push("branch_sites");
    parts.extend(u.branch_sites.iter().copied());
    fnv64_hex(&parts)
}

/// A job spec validated against the suite and agent registry, with both
/// fingerprints settled (client override wins; the override is what
/// lets tests and remote clients declare "this agent changed").
pub struct ResolvedJob {
    /// The validated spec, verbatim.
    pub spec: JobSpec,
    /// Parsed agent A.
    pub agent_a: AgentKind,
    /// Parsed agent B.
    pub agent_b: AgentKind,
    /// The resolved test case.
    pub test: TestCase,
    /// Settled fingerprint of agent A.
    pub fp_a: String,
    /// Settled fingerprint of agent B.
    pub fp_b: String,
}

/// Validate `spec` and settle its fingerprints.
pub fn resolve(spec: JobSpec) -> Result<ResolvedJob, String> {
    let agent_a =
        parse_agent(&spec.agent_a).ok_or_else(|| format!("unknown agent '{}'", spec.agent_a))?;
    let agent_b =
        parse_agent(&spec.agent_b).ok_or_else(|| format!("unknown agent '{}'", spec.agent_b))?;
    let test = find_test(&spec.test).ok_or_else(|| format!("unknown test '{}'", spec.test))?;
    let fp_a = spec
        .fp_a
        .clone()
        .unwrap_or_else(|| agent_fingerprint(agent_a));
    let fp_b = spec
        .fp_b
        .clone()
        .unwrap_or_else(|| agent_fingerprint(agent_b));
    Ok(ResolvedJob {
        spec,
        agent_a,
        agent_b,
        test,
        fp_a,
        fp_b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fingerprints_are_deterministic_and_distinct() {
        for agent in AgentKind::all() {
            assert_eq!(agent_fingerprint(agent), agent_fingerprint(agent));
        }
        let fps: HashSet<String> = AgentKind::all()
            .iter()
            .map(|&a| agent_fingerprint(a))
            .collect();
        assert_eq!(fps.len(), AgentKind::all().len(), "agents must not collide");
    }

    #[test]
    fn fingerprints_fold_in_the_build_hash() {
        // A source change that keeps the label universe intact still
        // changes the build hash, which must change every fingerprint —
        // otherwise a restarted daemon would serve stale artifacts.
        assert_eq!(soft_agents::BUILD_FINGERPRINT.len(), 16);
        assert!(soft_agents::BUILD_FINGERPRINT
            .chars()
            .all(|c| c.is_ascii_hexdigit()));
        for agent in AgentKind::all() {
            assert_ne!(
                fingerprint_with_build("0000000000000000", agent),
                fingerprint_with_build("ffffffffffffffff", agent),
                "build hash must reach the fingerprint of {}",
                agent.id()
            );
        }
    }

    #[test]
    fn resolve_validates_agents_and_tests() {
        let spec = |a: &str, b: &str, t: &str| JobSpec {
            agent_a: a.to_string(),
            agent_b: b.to_string(),
            test: t.to_string(),
            seed: 1,
            budget_conflicts: None,
            fuzz: 0,
            retry_rungs: 0,
            fp_a: None,
            fp_b: None,
        };
        assert!(resolve(spec("reference", "ovs", "queue_config")).is_ok());
        assert!(resolve(spec("nope", "ovs", "queue_config")).is_err());
        assert!(resolve(spec("reference", "ovs", "no_such_test")).is_err());
        // A fingerprint override wins over the computed fingerprint.
        let mut s = spec("reference", "ovs", "queue_config");
        s.fp_a = Some("deadbeefdeadbeef".to_string());
        let rj = resolve(s).unwrap();
        assert_eq!(rj.fp_a, "deadbeefdeadbeef");
        assert_eq!(rj.fp_b, agent_fingerprint(AgentKind::OpenVSwitch));
    }
}
