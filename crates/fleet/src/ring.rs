//! Consistent-hash ring over the fleet's serve back-ends.
//!
//! Every back-end contributes `vnodes` virtual points to a 64-bit ring;
//! a job key hashes to a point and is owned by the first back-end point
//! clockwise from it. Virtual nodes smooth the load split (a handful of
//! physical back-ends would otherwise carve the ring into wildly uneven
//! arcs), and consistent hashing keeps reassignment minimal when a
//! back-end joins or dies: only the keys in the lost arcs move.
//!
//! The ring is pure data, computed identically by the router (to place
//! jobs) and by every back-end (to pick replication successors), from
//! the same ordered membership list — there is no negotiation protocol
//! to disagree over.

use soft_harness::journal::fnv64_hex;

/// A fixed membership's hash ring. Rebuild on membership change; the
/// structure itself is immutable.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend index)` sorted by point.
    points: Vec<(u64, usize)>,
    /// Number of distinct back-ends.
    backends: usize,
}

/// Hash an arbitrary identifier onto the ring's 64-bit point space.
fn ring_hash(parts: &[&str]) -> u64 {
    u64::from_str_radix(&fnv64_hex(parts), 16).unwrap_or(0)
}

impl Ring {
    /// Build the ring for `backends` (order defines each back-end's
    /// identity — every fleet member must use the same list) with
    /// `vnodes` virtual points per back-end.
    pub fn new(backends: &[String], vnodes: u32) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backends.len() * vnodes as usize);
        for (idx, addr) in backends.iter().enumerate() {
            for v in 0..vnodes {
                points.push((ring_hash(&["vnode", addr, &v.to_string()]), idx));
            }
        }
        // Ties (two vnodes hashing identically) resolve by backend
        // index so every member computes the same ring.
        points.sort();
        Ring {
            points,
            backends: backends.len(),
        }
    }

    /// Number of distinct back-ends on the ring.
    pub fn len(&self) -> usize {
        self.backends
    }

    /// True when the ring has no back-ends.
    pub fn is_empty(&self) -> bool {
        self.backends == 0
    }

    /// Every distinct back-end in ring order starting at `key`'s owner.
    /// The first entry is the owner; the next `r` entries are the
    /// replication successors; a router walks the list until it finds a
    /// live back-end.
    pub fn successors(&self, key: &str) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let h = ring_hash(&["key", key]);
        let start = self.points.partition_point(|&(p, _)| p < h) % self.points.len();
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for i in 0..self.points.len() {
            let idx = self.points[(start + i) % self.points.len()].1;
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// The back-end owning `key`, if the ring is non-empty.
    pub fn owner(&self, key: &str) -> Option<usize> {
        self.successors(key).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn placement_is_deterministic_and_covers_all_backends() {
        let ring = Ring::new(&addrs(3), 64);
        for k in 0..100 {
            let key = format!("job{k}");
            let s1 = ring.successors(&key);
            assert_eq!(s1, ring.successors(&key), "same key, same order");
            assert_eq!(s1.len(), 3, "every backend appears once");
            let mut sorted = s1.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert_eq!(ring.owner(&key), Some(s1[0]));
        }
    }

    #[test]
    fn vnodes_spread_ownership() {
        let ring = Ring::new(&addrs(3), 64);
        let mut counts = [0usize; 3];
        for k in 0..3000 {
            counts[ring.owner(&format!("key{k}")).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // With 64 vnodes the split stays within a loose band; a
            // collapsed ring (one backend owning nearly everything)
            // fails this hard.
            assert!(
                c > 300 && c < 2000,
                "backend {i} owns {c}/3000 keys — ring is unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_keys() {
        let all = addrs(3);
        let ring3 = Ring::new(&all, 64);
        let ring2 = Ring::new(&all[..2], 64);
        let mut moved = 0;
        for k in 0..1000 {
            let key = format!("key{k}");
            let before = ring3.owner(&key).unwrap();
            let after = ring2.owner(&key).unwrap();
            if before < 2 {
                // A key owned by a surviving backend must not move.
                assert_eq!(before, after, "key {key} moved off a live backend");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "the dead backend owned some keys");
    }

    #[test]
    fn successor_walk_matches_owner_after_removal() {
        // The failover rule: when the owner dies, the next ring
        // successor in the 3-ring is the owner in the 2-ring whenever
        // that successor survives. This is what lets the router retry a
        // dead back-end's keys on the next live successor and land
        // where replicas were pushed.
        let all = addrs(3);
        let ring3 = Ring::new(&all, 64);
        for k in 0..300 {
            let key = format!("key{k}");
            let order = ring3.successors(&key);
            if order[0] == 2 {
                let ring2 = Ring::new(&all[..2], 64);
                assert_eq!(
                    ring2.owner(&key),
                    Some(order[1]),
                    "next live successor must own the dead backend's key"
                );
            }
        }
    }

    #[test]
    fn empty_ring_is_explicit() {
        let ring = Ring::new(&[], 64);
        assert!(ring.is_empty());
        assert_eq!(ring.owner("k"), None);
        assert!(ring.successors("k").is_empty());
    }
}
