//! End-to-end replay validation: concretized witnesses must diverge and
//! match their symbolic predictions (the "no false positives" property).

use soft_agents::AgentKind;
use soft_core::{replay, Soft};
use soft_harness::suite;

/// Replay every Packet Out inconsistency: all must diverge concretely
/// and match their predictions — the "no false positives" property,
/// checked end to end.
#[test]
fn packet_out_inconsistencies_replay_faithfully() {
    let soft = Soft::new();
    let test = suite::packet_out();
    let pair = soft
        .run_pair(AgentKind::Reference, AgentKind::OpenVSwitch, &test)
        .expect("pipeline");
    assert!(!pair.result.inconsistencies.is_empty());
    for inc in &pair.result.inconsistencies {
        let r = replay(&test, inc, AgentKind::Reference, AgentKind::OpenVSwitch);
        assert!(
            r.diverges(),
            "replayed agents agreed — false positive?\n{:?}\nvs\n{:?}",
            r.observed_a,
            r.observed_b
        );
        assert!(
            r.matches_prediction(),
            "concrete behaviour deviates from the symbolic prediction:\n\
             observed A {:?}\npredicted A {:?}\nobserved B {:?}\npredicted B {:?}",
            r.observed_a,
            r.predicted_a,
            r.observed_b,
            r.predicted_b
        );
    }
}

#[test]
fn queue_config_crash_replays() {
    let soft = Soft::new();
    let test = suite::queue_config();
    let pair = soft
        .run_pair(AgentKind::Reference, AgentKind::OpenVSwitch, &test)
        .expect("pipeline");
    let crash_inc = pair
        .result
        .inconsistencies
        .iter()
        .find(|i| i.output_a.crashed)
        .expect("crash inconsistency");
    let r = replay(
        &test,
        crash_inc,
        AgentKind::Reference,
        AgentKind::OpenVSwitch,
    );
    assert!(
        r.observed_a.crashed,
        "the reference switch must crash on replay"
    );
    assert!(!r.observed_b.crashed);
    assert!(r.diverges() && r.matches_prediction());
}

#[test]
fn replay_rejects_mismatched_test() {
    let soft = Soft::new();
    let test = suite::queue_config();
    let pair = soft
        .run_pair(AgentKind::Reference, AgentKind::OpenVSwitch, &test)
        .expect("pipeline");
    if let Some(inc) = pair.result.inconsistencies.first() {
        let other = suite::packet_out();
        let result = std::panic::catch_unwind(|| {
            replay(&other, inc, AgentKind::Reference, AgentKind::OpenVSwitch)
        });
        assert!(result.is_err(), "test-id mismatch must be rejected");
    }
}
