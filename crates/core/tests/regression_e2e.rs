//! Regression-mode end-to-end checks: version-to-version crosscheck and
//! the condition-diff baseline mapping.

use soft_agents::AgentKind;
use soft_core::group_paths;
use soft_core::{condition_diff, regression_check, CrosscheckConfig, Soft};
use soft_harness::suite;

#[test]
fn same_version_is_clean() {
    let soft = Soft::new();
    let test = suite::queue_config();
    let run = soft.phase1(AgentKind::Reference, &test);
    let g1 = group_paths("v1", &run.test, &run.paths).expect("grouping");
    let g2 = group_paths("v2", &run.test, &run.paths).expect("grouping");
    let report = regression_check(&g1, &g2, &CrosscheckConfig::default());
    assert!(report.is_clean(), "identical versions must be clean");
}

#[test]
fn condition_diff_identity_and_change() {
    let soft = Soft::new();
    let test = suite::packet_out();
    let base = soft
        .group(&soft.phase1(AgentKind::Reference, &test))
        .expect("grouping");
    let same = soft
        .group(&soft.phase1(AgentKind::Reference, &test))
        .expect("grouping");
    // Identical runs: every group maps straight across, no solving.
    let diff = condition_diff(&base, &same);
    assert_eq!(diff.impacted, 0);
    assert!(diff
        .unchanged
        .iter()
        .enumerate()
        .all(|(i, u)| *u == Some(i)));
    assert_eq!(diff.baseline_to_current().len(), base.groups.len());
    // A behaviourally different agent: some groups must be impacted.
    let changed = soft
        .group(&soft.phase1(AgentKind::Modified, &test))
        .expect("grouping");
    let diff = condition_diff(&base, &changed);
    assert!(diff.impacted > 0, "mutated agent must impact some groups");
}

#[test]
fn modified_switch_regresses_against_reference() {
    // The Modified Switch *is* a "new version" of the Reference Switch
    // with behaviour changes; regression mode must flag them.
    let soft = Soft::new();
    let test = suite::packet_out();
    let base = soft
        .group(&soft.phase1(AgentKind::Reference, &test))
        .expect("grouping");
    let cur = soft
        .group(&soft.phase1(AgentKind::Modified, &test))
        .expect("grouping");
    let report = regression_check(&base, &cur, &CrosscheckConfig::default());
    assert!(!report.is_clean());
    assert!(
        !report.shifts.is_empty(),
        "behaviour shifts must carry witnesses"
    );
    // The flood-ingress mutation changes an output class.
    assert!(
        !report.new_outputs.is_empty() || !report.removed_outputs.is_empty(),
        "the mutations change the output-class inventory"
    );
}

#[test]
fn consistent_test_stays_clean_across_agents() {
    // Set Config behaves identically on Ref and OVS (Table 3: 0
    // inconsistencies): as a pseudo-regression it must be clean on
    // shifts, though output inventories can legitimately coincide.
    let soft = Soft::new();
    let test = suite::set_config();
    let base = soft
        .group(&soft.phase1(AgentKind::Reference, &test))
        .expect("grouping");
    let cur = soft
        .group(&soft.phase1(AgentKind::OpenVSwitch, &test))
        .expect("grouping");
    let report = regression_check(&base, &cur, &CrosscheckConfig::default());
    assert!(report.shifts.is_empty());
    assert!(report.new_outputs.is_empty() && report.removed_outputs.is_empty());
}

#[test]
#[should_panic(expected = "different tests")]
fn mismatched_tests_rejected() {
    let soft = Soft::new();
    let a = soft
        .group(&soft.phase1(AgentKind::Reference, &suite::queue_config()))
        .expect("grouping");
    let b = soft
        .group(&soft.phase1(AgentKind::Reference, &suite::short_symb()))
        .expect("grouping");
    regression_check(&a, &b, &CrosscheckConfig::default());
}
