//! The grouping tool (§3.4, §4.2).
//!
//! Groups all path conditions that produce the same normalized output
//! result: for every distinct result `r`, `C(r)` is the disjunction of the
//! path conditions of all paths observing `r`. Disjunctions are built as
//! *balanced* binary trees, "minimizing the depth of nested expressions"
//! to keep the downstream solver queries shallow. The grouping is what
//! makes crosschecking cheap: the number of solver queries drops from
//! `|PC_A| * |PC_B|` to `|RES_A| * |RES_B|`, a 1–5 order-of-magnitude
//! reduction in the paper's runs.

use soft_harness::{ObservedOutput, PathRecord};
use soft_smt::simplify::{mk_or_balanced, mk_or_linear};
use soft_smt::Term;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

/// Grouping failure, reported as data instead of a panic so a long matrix
/// run can skip the affected (agent, test) pair and keep going.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// The first-seen output order list and the condition buckets went out
    /// of sync: an output recorded in arrival order had no bucket. This is
    /// an internal invariant violation (outputs hash/compare
    /// inconsistently), not a property of the agent under test.
    MissingBucket {
        /// Agent whose paths were being grouped.
        agent: String,
        /// Test being grouped.
        test: String,
        /// Index of the orphaned output in first-seen order.
        index: usize,
    },
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::MissingBucket { agent, test, index } => write!(
                f,
                "grouping {agent}/{test}: output #{index} has no condition bucket \
                 (inconsistent ObservedOutput hash/equality)"
            ),
        }
    }
}

impl std::error::Error for GroupError {}

/// Shape of the disjunction trees the grouping tool builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeShape {
    /// Balanced binary tree (the paper's choice).
    Balanced,
    /// Right-leaning linear chain (kept for the grouping ablation bench).
    Linear,
}

/// One distinct output result with its merged input subspace.
#[derive(Debug, Clone)]
pub struct OutputGroup {
    /// The normalized observed output.
    pub output: ObservedOutput,
    /// Disjunction of all path conditions producing this output.
    pub condition: Term,
    /// How many paths were merged into this group.
    pub path_count: usize,
}

/// Grouped results for one (agent, test) pair — the unit the
/// inconsistency finder consumes.
#[derive(Debug, Clone)]
pub struct GroupedResults {
    /// Agent identifier.
    pub agent: String,
    /// Test identifier.
    pub test: String,
    /// The distinct output results with merged conditions.
    pub groups: Vec<OutputGroup>,
    /// Time spent grouping (the Table 3 "Grouping results" column).
    pub group_time: Duration,
}

/// Group paths by normalized output, building balanced disjunction trees.
pub fn group_paths(
    agent: &str,
    test: &str,
    paths: &[PathRecord],
) -> Result<GroupedResults, GroupError> {
    group_paths_with(agent, test, paths, TreeShape::Balanced)
}

/// Group paths with an explicit disjunction-tree shape.
pub fn group_paths_with(
    agent: &str,
    test: &str,
    paths: &[PathRecord],
    shape: TreeShape,
) -> Result<GroupedResults, GroupError> {
    let start = Instant::now();
    // Bucket conditions by output, preserving first-seen order so the
    // result is deterministic.
    let mut order: Vec<ObservedOutput> = Vec::new();
    let mut buckets: HashMap<ObservedOutput, Vec<Term>> = HashMap::new();
    for p in paths {
        let bucket = buckets.entry(p.output.clone()).or_insert_with(|| {
            order.push(p.output.clone());
            Vec::new()
        });
        bucket.push(p.condition.clone());
    }
    let mut groups = Vec::with_capacity(order.len());
    for (index, output) in order.into_iter().enumerate() {
        let conds = buckets
            .remove(&output)
            .ok_or_else(|| GroupError::MissingBucket {
                agent: agent.to_string(),
                test: test.to_string(),
                index,
            })?;
        let path_count = conds.len();
        let condition = match shape {
            TreeShape::Balanced => mk_or_balanced(&conds),
            TreeShape::Linear => mk_or_linear(&conds),
        };
        groups.push(OutputGroup {
            output,
            condition,
            path_count,
        });
    }
    Ok(GroupedResults {
        agent: agent.to_string(),
        test: test.to_string(),
        groups,
        group_time: start.elapsed(),
    })
}

impl GroupedResults {
    /// Number of distinct output results (the Table 3 "#res" column).
    pub fn num_results(&self) -> usize {
        self.groups.len()
    }

    /// Total number of merged paths.
    pub fn num_paths(&self) -> usize {
        self.groups.iter().map(|g| g.path_count).sum()
    }
}

/// Incremental grouping index for the streaming pipeline.
///
/// Batch grouping needs the full decision-sorted path list before it can
/// build a single disjunction; a streaming session has paths trickling in
/// from explorer workers in completion order. `GroupBuilder` absorbs them
/// one at a time, maintains a *partial* per-output view the eager
/// crosscheck scheduler probes against, and on [`GroupBuilder::finalize`]
/// re-derives the canonical order (paths sorted by decision sequence, the
/// exact order a batch artifact serializes) so the finalized
/// [`GroupedResults`] is byte-for-byte the one `group_paths` would have
/// produced — no matter in which order paths arrived.
#[derive(Debug, Clone)]
pub struct GroupBuilder {
    agent: String,
    test: String,
    shape: TreeShape,
    /// Canonical store: decision sequence → record. The key order *is*
    /// the batch artifact order, making `finalize` arrival-order-blind.
    paths: BTreeMap<Vec<bool>, PathRecord>,
    /// Arrival-order partial buckets (output → slot; slot → conditions).
    slots: HashMap<ObservedOutput, usize>,
    buckets: Vec<(ObservedOutput, Vec<Term>)>,
}

impl GroupBuilder {
    /// Empty builder for one (agent, test) unit.
    pub fn new(agent: &str, test: &str, shape: TreeShape) -> GroupBuilder {
        GroupBuilder {
            agent: agent.to_string(),
            test: test.to_string(),
            shape,
            paths: BTreeMap::new(),
            slots: HashMap::new(),
            buckets: Vec::new(),
        }
    }

    /// Absorb one finished path, keyed by its decision sequence, and
    /// return the arrival-order slot of its output bucket. A duplicate
    /// key (a replayed path delivered again on resume) is ignored — the
    /// journal's replay validation already guarantees it matches.
    pub fn absorb(&mut self, decisions: Vec<bool>, path: PathRecord) -> usize {
        if self.paths.contains_key(&decisions) {
            return self.slots[&path.output];
        }
        let slot = match self.slots.get(&path.output) {
            Some(&s) => {
                self.buckets[s].1.push(path.condition.clone());
                s
            }
            None => {
                let s = self.buckets.len();
                self.slots.insert(path.output.clone(), s);
                self.buckets
                    .push((path.output.clone(), vec![path.condition.clone()]));
                s
            }
        };
        self.paths.insert(decisions, path);
        slot
    }

    /// Number of absorbed paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True before the first path arrives.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of distinct outputs seen so far.
    pub fn num_outputs(&self) -> usize {
        self.buckets.len()
    }

    /// The output of a partial bucket, by arrival-order slot.
    pub fn output(&self, slot: usize) -> &ObservedOutput {
        &self.buckets[slot].0
    }

    /// Paths absorbed into a partial bucket so far.
    pub fn partial_count(&self, slot: usize) -> usize {
        self.buckets[slot].1.len()
    }

    /// Disjunction over the conditions absorbed into a bucket *so far* —
    /// an under-approximation of the final group condition (the partial
    /// disjunction implies the final one), which is what makes eager Sat
    /// probes conclusive and eager Unsat probes merely advisory.
    pub fn partial_condition(&self, slot: usize) -> Term {
        mk_or_balanced(&self.buckets[slot].1)
    }

    /// Build the canonical [`GroupedResults`]: identical to batch-grouping
    /// the decision-sorted path list, for every arrival order.
    pub fn finalize(&self) -> Result<GroupedResults, GroupError> {
        let ordered: Vec<PathRecord> = self.paths.values().cloned().collect();
        group_paths_with(&self.agent, &self.test, &ordered, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_protocol::TraceEvent;

    fn path(var: &str, val: u64, out_code: u16) -> PathRecord {
        let cond = Term::var(var, 8).eq(Term::bv_const(8, val));
        PathRecord {
            constraint_size: soft_smt::metrics::op_count(&cond),
            condition: cond,
            output: ObservedOutput {
                events: vec![TraceEvent::Error {
                    xid: Term::bv_const(32, 0),
                    etype: Term::bv_const(16, 1),
                    code: Term::bv_const(16, out_code as u64),
                }],
                crashed: false,
            },
        }
    }

    #[test]
    fn groups_by_output() {
        let paths = vec![path("g.x", 1, 6), path("g.x", 2, 6), path("g.x", 3, 8)];
        let g = group_paths("a", "t", &paths).expect("grouping");
        assert_eq!(g.num_results(), 2);
        assert_eq!(g.num_paths(), 3);
        assert_eq!(g.groups[0].path_count, 2);
        assert_eq!(g.groups[1].path_count, 1);
    }

    #[test]
    fn group_condition_is_disjunction() {
        let paths = vec![path("g2.x", 1, 6), path("g2.x", 2, 6)];
        let g = group_paths("a", "t", &paths).expect("grouping");
        let cond = &g.groups[0].condition;
        let mut solver = soft_smt::Solver::new();
        // x == 1 satisfies, x == 2 satisfies, x == 3 does not.
        for (v, expect) in [(1u64, true), (2, true), (3, false)] {
            let pinned = Term::var("g2.x", 8).eq(Term::bv_const(8, v));
            assert_eq!(
                solver.check(&[cond.clone(), pinned]).is_sat(),
                expect,
                "x == {v}"
            );
        }
    }

    #[test]
    fn tree_shapes_equisatisfiable_but_different_depth() {
        let paths: Vec<PathRecord> = (0..32).map(|i| path("g3.x", i, 6)).collect();
        let bal = group_paths_with("a", "t", &paths, TreeShape::Balanced).expect("grouping");
        let lin = group_paths_with("a", "t", &paths, TreeShape::Linear).expect("grouping");
        let db = soft_smt::metrics::depth(&bal.groups[0].condition);
        let dl = soft_smt::metrics::depth(&lin.groups[0].condition);
        assert!(
            db < dl,
            "balanced {db} should be shallower than linear {dl}"
        );
    }

    #[test]
    fn builder_matches_batch_for_any_arrival_order() {
        // Batch reference: paths in canonical (decision-sorted) order.
        let records: Vec<PathRecord> =
            vec![path("g5.x", 1, 6), path("g5.x", 2, 8), path("g5.x", 3, 6)];
        let decisions: Vec<Vec<bool>> =
            vec![vec![false, false], vec![false, true], vec![true, false]];
        let batch = group_paths("a", "t", &records).expect("grouping");
        // Every arrival permutation must finalize to the same groups.
        let perms: [[usize; 3]; 4] = [[0, 1, 2], [2, 1, 0], [1, 2, 0], [2, 0, 1]];
        for perm in perms {
            let mut builder = GroupBuilder::new("a", "t", TreeShape::Balanced);
            for &k in &perm {
                builder.absorb(decisions[k].clone(), records[k].clone());
            }
            assert_eq!(builder.len(), 3);
            assert_eq!(builder.num_outputs(), 2);
            let fin = builder.finalize().expect("finalize");
            assert_eq!(fin.groups.len(), batch.groups.len(), "perm {perm:?}");
            for (x, y) in batch.groups.iter().zip(&fin.groups) {
                assert_eq!(x.output, y.output, "perm {perm:?}");
                assert_eq!(x.condition, y.condition, "perm {perm:?}");
                assert_eq!(x.path_count, y.path_count, "perm {perm:?}");
            }
        }
    }

    #[test]
    fn builder_partial_view_grows_monotonically() {
        let mut builder = GroupBuilder::new("a", "t", TreeShape::Balanced);
        let s1 = builder.absorb(vec![false], path("g6.x", 1, 6));
        assert_eq!(builder.partial_count(s1), 1);
        let s2 = builder.absorb(vec![true], path("g6.x", 2, 6));
        assert_eq!(s1, s2, "same output lands in the same bucket");
        assert_eq!(builder.partial_count(s1), 2);
        // The partial condition admits both absorbed paths.
        let cond = builder.partial_condition(s1);
        let mut solver = soft_smt::Solver::new();
        for v in [1u64, 2] {
            let pinned = Term::var("g6.x", 8).eq(Term::bv_const(8, v));
            assert!(solver.check(&[cond.clone(), pinned]).is_sat());
        }
        // Duplicate delivery (a resume replay) is idempotent.
        builder.absorb(vec![false], path("g6.x", 1, 6));
        assert_eq!(builder.len(), 2);
        assert_eq!(builder.partial_count(s1), 2);
    }

    #[test]
    fn deterministic_group_order() {
        let paths = vec![path("g4.x", 1, 8), path("g4.x", 2, 6)];
        let g1 = group_paths("a", "t", &paths).expect("grouping");
        let g2 = group_paths("a", "t", &paths).expect("grouping");
        assert_eq!(g1.groups.len(), g2.groups.len());
        for (a, b) in g1.groups.iter().zip(&g2.groups) {
            assert_eq!(a.output, b.output);
            assert_eq!(a.condition, b.condition);
        }
    }
}
