//! # soft-core — SOFT: Systematic OpenFlow Testing
//!
//! A reproduction of *"A SOFT Way for OpenFlow Switch Interoperability
//! Testing"* (Kuźniar, Perešíni, Canini, Venzano, Kostić; CoNEXT 2012).
//!
//! SOFT finds interoperability inconsistencies between OpenFlow agent
//! implementations without an a-priori definition of correct behaviour and
//! without simultaneous access to the implementations:
//!
//! 1. **Phase 1** (per vendor): symbolically execute the agent on
//!    structured symbolic OpenFlow messages and state probes; record, for
//!    every explored path, the *path condition* (an input equivalence
//!    class) and the *normalized output trace*.
//! 2. **Grouping**: merge the path conditions that share an output into
//!    one balanced disjunction per distinct output result.
//! 3. **Phase 2** (crosschecking): for every pair of *different* outputs
//!    from two agents, ask a constraint solver whether the two input
//!    subspaces intersect. Every satisfiable intersection is an
//!    inconsistency, and the model is a concrete reproduction test case.
//!
//! ```
//! use soft_agents::AgentKind;
//! use soft_core::{report, Soft};
//! use soft_harness::suite;
//!
//! // Crosscheck the Reference Switch against Open vSwitch on the
//! // "Packet Out" test of the paper's Table 1.
//! let soft = Soft::new();
//! let pair = soft
//!     .run_pair(
//!         AgentKind::Reference,
//!         AgentKind::OpenVSwitch,
//!         &suite::packet_out(),
//!     )
//!     .expect("grouping");
//! assert!(!pair.result.inconsistencies.is_empty());
//! // Every inconsistency carries a concrete reproduction witness.
//! let causes = report::dedupe(&pair.result.inconsistencies);
//! assert!(!causes.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crosscheck;
pub mod group;
pub mod regression;
pub mod replay;
pub mod report;
mod soft;
pub mod stream;

pub use crosscheck::{
    crosscheck, crosscheck_durable, crosscheck_hooked, CheckHooks, CheckSeeds, CrosscheckConfig,
    CrosscheckResult, Inconsistency, UnverifiedPair, VerdictSink,
};
pub use group::{
    group_paths, group_paths_with, GroupBuilder, GroupError, GroupedResults, OutputGroup, TreeShape,
};
pub use regression::{condition_diff, regression_check, ConditionDiff, RegressionReport};
pub use replay::{
    concretize_inputs, replay, run_concrete, run_concrete_raw, ReplayError, ReplayOutcome,
};
pub use report::{classify_outputs, signature, DivergenceKind};
pub use soft::{PairReport, Soft};
pub use stream::{CheckScheduler, Probe};
