//! Inconsistency reporting: classification, root-cause deduplication, and
//! concrete reproduction.
//!
//! The paper notes that "usually one difference manifests itself multiple
//! times and affects many subspaces of inputs. In the extreme example,
//! although there are 58 reported inconsistencies, manual analysis reveals
//! only 6 distinct root causes." This module automates the first cut of
//! that manual analysis: inconsistencies are classified by the *shape* of
//! the divergence and deduplicated into root-cause buckets.

use crate::crosscheck::{Inconsistency, UnverifiedPair};
use soft_harness::{Input, ObservedOutput, TestCase};
use soft_protocol::TraceEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The shape of a behavioural divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DivergenceKind {
    /// One agent crashes, the other does not.
    CrashVsSurvive,
    /// One agent reports an error, the other stays silent.
    ErrorVsSilence,
    /// Both report errors, but with different type/code.
    DifferentErrors,
    /// One forwards a packet, the other reports an error.
    ForwardVsError,
    /// One forwards a packet, the other silently drops it.
    ForwardVsDrop,
    /// One uses a feature (e.g. OFPP_NORMAL) the other rejects or lacks.
    MissingFeature,
    /// Replies differ in content (e.g. stats bodies).
    DifferentReplies,
    /// Any other divergence.
    Other,
}

impl DivergenceKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DivergenceKind::CrashVsSurvive => "agent terminates with an error",
            DivergenceKind::ErrorVsSilence => "lack of error message",
            DivergenceKind::DifferentErrors => "different error messages",
            DivergenceKind::ForwardVsError => "forwarding vs. error",
            DivergenceKind::ForwardVsDrop => "packet dropped vs. forwarded",
            DivergenceKind::MissingFeature => "missing feature",
            DivergenceKind::DifferentReplies => "different reply contents",
            DivergenceKind::Other => "other divergence",
        }
    }
}

fn has_error(o: &ObservedOutput) -> bool {
    o.events
        .iter()
        .any(|e| matches!(e, TraceEvent::Error { .. }))
}

fn has_forward(o: &ObservedOutput) -> bool {
    o.events.iter().any(|e| {
        matches!(
            e,
            TraceEvent::DataPlaneTx { .. } | TraceEvent::Flood { .. } | TraceEvent::PacketIn { .. }
        )
    })
}

fn has_normal(o: &ObservedOutput) -> bool {
    o.events
        .iter()
        .any(|e| matches!(e, TraceEvent::NormalForward { .. }))
}

fn is_silent(o: &ObservedOutput) -> bool {
    o.events
        .iter()
        .all(|e| matches!(e, TraceEvent::ProbeDropped))
}

/// Classify a single inconsistency by divergence shape.
pub fn classify(inc: &Inconsistency) -> DivergenceKind {
    classify_outputs(&inc.output_a, &inc.output_b)
}

/// Classify a pair of observed outputs by divergence shape.
///
/// The output-level form of [`classify`], shared with the witness
/// distillation pipeline, which classifies *concretely replayed* traces
/// rather than the symbolic predictions stored in an [`Inconsistency`].
pub fn classify_outputs(a: &ObservedOutput, b: &ObservedOutput) -> DivergenceKind {
    if a.crashed != b.crashed {
        return DivergenceKind::CrashVsSurvive;
    }
    if has_normal(a) != has_normal(b) {
        return DivergenceKind::MissingFeature;
    }
    match (has_error(a), has_error(b)) {
        (true, true) => {
            // Both error: compare the first error event.
            let ea = a
                .events
                .iter()
                .find(|e| matches!(e, TraceEvent::Error { .. }));
            let eb = b
                .events
                .iter()
                .find(|e| matches!(e, TraceEvent::Error { .. }));
            if ea != eb {
                DivergenceKind::DifferentErrors
            } else {
                DivergenceKind::DifferentReplies
            }
        }
        (true, false) | (false, true) => {
            let (err_side, other_side) = if has_error(a) { (a, b) } else { (b, a) };
            let _ = err_side;
            if has_forward(other_side) {
                DivergenceKind::ForwardVsError
            } else {
                DivergenceKind::ErrorVsSilence
            }
        }
        (false, false) => {
            if has_forward(a) != has_forward(b) {
                if is_silent(a) || is_silent(b) {
                    DivergenceKind::ForwardVsDrop
                } else {
                    DivergenceKind::DifferentReplies
                }
            } else if a.events != b.events {
                DivergenceKind::DifferentReplies
            } else {
                DivergenceKind::Other
            }
        }
    }
}

/// A root-cause bucket: inconsistencies sharing a divergence shape and
/// output-kind signature.
#[derive(Debug, Clone)]
pub struct RootCause {
    /// Divergence shape.
    pub kind: DivergenceKind,
    /// Output-kind signature (event kinds of both sides).
    pub signature: String,
    /// Indices into the original inconsistency list.
    pub members: Vec<usize>,
}

/// Compact signature of an observed output: the event-kind sequence plus
/// error type/code, prefixed with `crash:` for crashed agents. Two outputs
/// in the same [`group`](crate::group) bucket share a signature; the
/// witness clustering key is built from a pair of these.
pub fn signature(o: &ObservedOutput) -> String {
    let mut s = String::new();
    if o.crashed {
        s.push_str("crash:");
    }
    for e in &o.events {
        s.push_str(e.kind());
        if let TraceEvent::Error { etype, code, .. } = e {
            let _ = write!(s, "({etype},{code})");
        }
        s.push('+');
    }
    s
}

/// Deduplicate inconsistencies into root-cause buckets.
pub fn dedupe(incs: &[Inconsistency]) -> Vec<RootCause> {
    let mut buckets: BTreeMap<(DivergenceKind, String), Vec<usize>> = BTreeMap::new();
    for (i, inc) in incs.iter().enumerate() {
        let kind = classify(inc);
        let sig = format!(
            "{} / {}",
            signature(&inc.output_a),
            signature(&inc.output_b)
        );
        buckets.entry((kind, sig)).or_default().push(i);
    }
    buckets
        .into_iter()
        .map(|((kind, signature), members)| RootCause {
            kind,
            signature,
            members,
        })
        .collect()
}

/// Concretize a test's input messages under an inconsistency witness: the
/// reproduction test case ("a test case that can be used to understand and
/// trace the root cause of the inconsistency").
pub fn reproduce(test: &TestCase, inc: &Inconsistency) -> Vec<Vec<u8>> {
    test.inputs
        .iter()
        .filter_map(|i| match i {
            Input::Message(m) => Some(m.concretize(&inc.witness)),
            Input::Probe { .. } | Input::AdvanceTime { .. } => None,
        })
        .collect()
}

/// Render a short human-readable description of one inconsistency.
pub fn describe(inc: &Inconsistency) -> String {
    let kind = classify(inc);
    let mut s = format!(
        "[{}] {} vs {}: {}\n",
        inc.test,
        inc.agent_a,
        inc.agent_b,
        kind.label()
    );
    let _ = writeln!(s, "  {}: {}", inc.agent_a, signature(&inc.output_a));
    let _ = writeln!(s, "  {}: {}", inc.agent_b, signature(&inc.output_b));
    let mut vars: Vec<(String, u64)> = inc
        .witness
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    vars.sort();
    let rendered: Vec<String> = vars
        .iter()
        .take(12)
        .map(|(k, v)| format!("{k}={v:#x}"))
        .collect();
    let _ = writeln!(
        s,
        "  witness: {}{}",
        rendered.join(" "),
        if vars.len() > 12 { " ..." } else { "" }
    );
    s
}

/// Render a short human-readable description of one unverified pair — an
/// output pair the solver could not decide within its resource budget.
/// Unlike [`describe`], there is no witness line: an undecided query has
/// no model, and SOFT never fabricates one.
pub fn describe_unverified(uv: &UnverifiedPair) -> String {
    let mut s = format!(
        "[{}] {} vs {}: UNVERIFIED (solver budget exhausted)\n",
        uv.test, uv.agent_a, uv.agent_b
    );
    let _ = writeln!(s, "  {}: {}", uv.agent_a, signature(&uv.output_a));
    let _ = writeln!(s, "  {}: {}", uv.agent_b, signature(&uv.output_b));
    if let Some(n) = uv.budget.max_conflicts {
        let _ = writeln!(s, "  last attempted budget: {n} conflicts");
    }
    let _ = writeln!(
        s,
        "  rerun with a larger --solver-budget or --retry-unknown rungs to decide this pair"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_smt::{Assignment, Term};
    use soft_sym::SymBuf;

    fn out(events: Vec<TraceEvent>, crashed: bool) -> ObservedOutput {
        ObservedOutput { events, crashed }
    }

    fn err(code: u16) -> TraceEvent {
        TraceEvent::Error {
            xid: Term::bv_const(32, 0),
            etype: Term::bv_const(16, 2),
            code: Term::bv_const(16, code as u64),
        }
    }

    fn tx() -> TraceEvent {
        TraceEvent::DataPlaneTx {
            port: Term::bv_const(16, 2),
            data: SymBuf::concrete(&[1]),
        }
    }

    fn inc(a: ObservedOutput, b: ObservedOutput) -> Inconsistency {
        Inconsistency {
            test: "t".into(),
            agent_a: "a".into(),
            agent_b: "b".into(),
            output_a: a,
            output_b: b,
            witness: Assignment::new(),
        }
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(
            classify(&inc(out(vec![], true), out(vec![err(4)], false))),
            DivergenceKind::CrashVsSurvive
        );
        assert_eq!(
            classify(&inc(out(vec![err(4)], false), out(vec![], false))),
            DivergenceKind::ErrorVsSilence
        );
        assert_eq!(
            classify(&inc(out(vec![err(4)], false), out(vec![err(5)], false))),
            DivergenceKind::DifferentErrors
        );
        assert_eq!(
            classify(&inc(out(vec![tx()], false), out(vec![err(4)], false))),
            DivergenceKind::ForwardVsError
        );
        assert_eq!(
            classify(&inc(
                out(vec![tx()], false),
                out(vec![TraceEvent::ProbeDropped], false)
            )),
            DivergenceKind::ForwardVsDrop
        );
        assert_eq!(
            classify(&inc(
                out(
                    vec![TraceEvent::NormalForward {
                        data: SymBuf::concrete(&[1])
                    }],
                    false
                ),
                out(vec![err(4)], false)
            )),
            DivergenceKind::MissingFeature
        );
    }

    #[test]
    fn dedupe_merges_same_shape() {
        let incs = vec![
            inc(out(vec![err(4)], false), out(vec![], false)),
            inc(out(vec![err(4)], false), out(vec![], false)),
            inc(out(vec![err(4)], false), out(vec![err(5)], false)),
        ];
        let causes = dedupe(&incs);
        assert_eq!(causes.len(), 2);
        let sizes: Vec<usize> = causes.iter().map(|c| c.members.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn reproduce_concretizes_messages() {
        let mut buf = SymBuf::symbolic("rp", 4);
        buf.set_u8(0, 0xaa);
        let test = TestCase::new("t", "T", "d", vec![Input::Message(buf)]);
        let mut w = Assignment::new();
        w.set("rp.b1", 0x11);
        w.set("rp.b2", 0x22);
        let i = Inconsistency {
            witness: w,
            ..inc(out(vec![], false), out(vec![], true))
        };
        let msgs = reproduce(&test, &i);
        assert_eq!(msgs, vec![vec![0xaa, 0x11, 0x22, 0x00]]);
    }

    #[test]
    fn describe_unverified_has_no_witness() {
        let uv = UnverifiedPair {
            test: "t".into(),
            agent_a: "a".into(),
            agent_b: "b".into(),
            output_a: out(vec![err(4)], false),
            output_b: out(vec![], true),
            budget: soft_smt::SolverBudget::conflicts(1),
        };
        let d = describe_unverified(&uv);
        assert!(d.contains("UNVERIFIED"));
        assert!(d.contains("--solver-budget"));
        assert!(!d.contains("witness"), "an undecided pair has no witness");
    }

    #[test]
    fn describe_is_informative() {
        let mut w = Assignment::new();
        w.set("m0.b8", 0xff);
        let mut i = inc(out(vec![err(4)], false), out(vec![], true));
        i.witness = w;
        let d = describe(&i);
        assert!(d.contains("m0.b8=0xff"));
        assert!(d.contains("agent terminates"));
    }
}
