//! The inconsistency finder (§3.4, §4.2).
//!
//! Takes two grouped result sets (one per agent), iterates over all pairs
//! of *different* output results, and asks the solver whether the
//! conjunction `C_A(i) ∧ C_B(j)` is satisfiable. A satisfiable pair is an
//! inconsistency: a common input subspace on which the two agents behave
//! differently. The solver model is the concrete reproduction test case.
//!
//! No false positives by construction: a model pins the input bytes to
//! values that — by the per-agent path conditions — drive agent A to
//! output `i` and agent B to output `j ≠ i`.

use crate::group::GroupedResults;
use soft_harness::ObservedOutput;
use soft_protocol::TraceEvent;
use soft_smt::{Assignment, SatResult, Solver, SolverBudget, SolverStats, Term, VerdictCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recover the guarded data even if a sibling worker panicked while
/// holding the lock. The verdict vector is only written slot-wise, so a
/// poisoned lock still guards usable state; unfinished slots degrade to
/// [`SatResult::Unknown`] rather than aborting the run.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Condition under which two (possibly symbolic) outputs take *different
/// concrete values*.
///
/// Outputs may embed symbolic input expressions ("the output data may even
/// contain symbolic inputs", §3.3). Two structurally different outputs —
/// say `Tx{port: in_port}` vs `Tx{port: action_port}` — can still agree on
/// the sliver of input space where the embedded expressions coincide, and
/// a witness drawn from that sliver would be a false positive. The
/// inconsistency query therefore conjoins this disequality constraint, so
/// every witness provably makes the observable outputs differ.
pub(crate) fn outputs_differ(a: &ObservedOutput, b: &ObservedOutput) -> Term {
    if a.crashed != b.crashed || a.events.len() != b.events.len() {
        return Term::bool_true();
    }
    let mut diff = Term::bool_false();
    for (ea, eb) in a.events.iter().zip(&b.events) {
        diff = diff.or(event_differs(ea, eb));
        if diff.as_bool_const() == Some(true) {
            return diff;
        }
    }
    diff
}

fn terms_differ(a: &Term, b: &Term) -> Term {
    if a == b {
        Term::bool_false()
    } else if a.width() != b.width() {
        Term::bool_true()
    } else {
        a.clone().ne(b.clone())
    }
}

fn bufs_differ(a: &soft_sym::SymBuf, b: &soft_sym::SymBuf) -> Term {
    if a.len() != b.len() {
        return Term::bool_true();
    }
    let mut diff = Term::bool_false();
    for (x, y) in a.bytes().iter().zip(b.bytes()) {
        diff = diff.or(terms_differ(x, y));
        if diff.as_bool_const() == Some(true) {
            break;
        }
    }
    diff
}

fn event_differs(a: &TraceEvent, b: &TraceEvent) -> Term {
    match (a, b) {
        (
            TraceEvent::Error {
                etype: ta,
                code: ca,
                ..
            },
            TraceEvent::Error {
                etype: tb,
                code: cb,
                ..
            },
        ) => terms_differ(ta, tb).or(terms_differ(ca, cb)),
        (
            TraceEvent::PacketIn {
                in_port: ia,
                reason: ra,
                data_len: la,
                data: da,
                ..
            },
            TraceEvent::PacketIn {
                in_port: ib,
                reason: rb,
                data_len: lb,
                data: db,
                ..
            },
        ) => terms_differ(ia, ib)
            .or(terms_differ(ra, rb))
            .or(terms_differ(la, lb))
            .or(bufs_differ(da, db)),
        (
            TraceEvent::OfReply {
                msg_type: ma,
                fields: fa,
                body: ba,
            },
            TraceEvent::OfReply {
                msg_type: mb,
                fields: fb,
                body: bb,
            },
        ) => {
            if ma != mb || fa.len() != fb.len() {
                return Term::bool_true();
            }
            let mut diff = bufs_differ(ba, bb);
            for ((na, ta), (nb, tb)) in fa.iter().zip(fb) {
                if na != nb {
                    return Term::bool_true();
                }
                diff = diff.or(terms_differ(ta, tb));
            }
            diff
        }
        (
            TraceEvent::DataPlaneTx { port: pa, data: da },
            TraceEvent::DataPlaneTx { port: pb, data: db },
        ) => terms_differ(pa, pb).or(bufs_differ(da, db)),
        (
            TraceEvent::Flood {
                exclude_ingress: xa,
                data: da,
            },
            TraceEvent::Flood {
                exclude_ingress: xb,
                data: db,
            },
        ) => {
            if xa != xb {
                Term::bool_true()
            } else {
                bufs_differ(da, db)
            }
        }
        (TraceEvent::NormalForward { data: da }, TraceEvent::NormalForward { data: db }) => {
            bufs_differ(da, db)
        }
        (TraceEvent::ProbeDropped, TraceEvent::ProbeDropped) => Term::bool_false(),
        _ => Term::bool_true(), // different event kinds
    }
}

/// One discovered inconsistency.
#[derive(Debug, Clone)]
pub struct Inconsistency {
    /// Test identifier.
    pub test: String,
    /// First agent.
    pub agent_a: String,
    /// Second agent.
    pub agent_b: String,
    /// Output observed by agent A on the common inputs.
    pub output_a: ObservedOutput,
    /// Output observed by agent B on the common inputs.
    pub output_b: ObservedOutput,
    /// A concrete witness: input-byte assignment reproducing the
    /// divergence.
    pub witness: Assignment,
}

/// An output pair the solver could not decide within its resource budget.
///
/// The pair is neither an inconsistency nor proof of agreement — SOFT
/// reports it as *unverified* so a degraded run never lies in either
/// direction. Re-running with a larger `--solver-budget` retries exactly
/// these pairs (the verdict cache remembers the failed budget and only
/// shortcuts queries it has already failed at an equal-or-larger budget).
#[derive(Debug, Clone)]
pub struct UnverifiedPair {
    /// Test identifier.
    pub test: String,
    /// First agent.
    pub agent_a: String,
    /// Second agent.
    pub agent_b: String,
    /// Output of agent A whose input subspace could not be intersected.
    pub output_a: ObservedOutput,
    /// Output of agent B whose input subspace could not be intersected.
    pub output_b: ObservedOutput,
    /// The budget the query exhausted.
    pub budget: SolverBudget,
}

/// Result of crosschecking two agents on one test.
#[derive(Debug, Clone, Default)]
pub struct CrosscheckResult {
    /// The discovered inconsistencies (one per divergent output pair).
    pub inconsistencies: Vec<Inconsistency>,
    /// Solver queries issued (bounded by |RES_A| * |RES_B|).
    pub queries: usize,
    /// Queries the solver could not decide within budget
    /// (= `unverified.len()`).
    pub unknown: usize,
    /// The undecided pairs, in query order. Never silently dropped: a
    /// budget-exhausted pair is listed here instead of being misreported
    /// as consistent or inconsistent.
    pub unverified: Vec<UnverifiedPair>,
    /// Pairs that came back Unknown at the base budget but were decided
    /// on an escalated retry rung (or recovered already-decided from a
    /// journal written by such a retry).
    pub resolved_on_retry: usize,
    /// Wall-clock time of the intersection phase (Table 3 "Inconsist.
    /// checking" column).
    pub check_time: Duration,
    /// Merged per-worker solver statistics across every pass (base +
    /// escalation rungs), including the incremental-context counters
    /// (assumption probes, UNSAT-core prunes, CNF cache hits).
    pub solver: SolverStats,
}

impl CrosscheckResult {
    /// True when every queried pair was decided within budget.
    pub fn fully_verified(&self) -> bool {
        self.unverified.is_empty()
    }
}

/// Options for the inconsistency finder.
#[derive(Debug, Clone)]
pub struct CrosscheckConfig {
    /// Per-query solver resource budget (default: unlimited).
    pub solver_budget: SolverBudget,
    /// Worker threads for the query matrix (1 = sequential).
    pub jobs: usize,
    /// Budget-escalation retry rungs for Unknown verdicts: after the base
    /// pass, each still-undecided pair is re-solved up to this many times
    /// under a geometrically growing budget (default 0 = no retries; a
    /// no-op when the base budget is unlimited).
    pub retry_rungs: u32,
    /// Budget growth factor per retry rung (default 4).
    pub retry_factor: u64,
    /// Optional ceiling on the escalated conflict/propagation budgets;
    /// the ladder stops early once the cap makes a rung no larger than
    /// the previous attempt.
    pub retry_cap: Option<u64>,
    /// Give each worker a persistent incremental solving context
    /// (default: true). Only takes effect on passes whose budget is
    /// unlimited — probe outcomes under a finite budget would depend on
    /// the context's query history and so on worker claim order, which
    /// would break the jobs-count determinism guarantee. Verdicts and
    /// artifacts are byte-identical either way; this is purely a speed
    /// lever.
    pub incremental: bool,
}

impl Default for CrosscheckConfig {
    fn default() -> Self {
        CrosscheckConfig {
            solver_budget: SolverBudget::unlimited(),
            jobs: 1,
            retry_rungs: 0,
            retry_factor: 4,
            retry_cap: None,
            incremental: true,
        }
    }
}

/// Observer notified once per decided-or-exhausted verdict, in pair
/// order, as each solving pass completes — the write-ahead hook the
/// crosscheck journal plugs into. Implementations must be `Sync`.
pub trait VerdictSink: Sync {
    /// One pair's final verdict for this pass. `i`/`j` are group indices
    /// into the two result sets; `budget` is the budget the verdict was
    /// produced under.
    fn on_verdict(&self, i: usize, j: usize, verdict: &SatResult, budget: &SolverBudget);

    /// Called once per *freshly solved* verdict the moment it is
    /// produced, from whichever worker thread solved it — delivery order
    /// is scheduling-dependent, unlike [`VerdictSink::on_verdict`]'s
    /// canonical pair order. This is the streaming hook: eager witness
    /// distillation starts here instead of waiting for the pass barrier.
    /// Seeded (journal-recovered) verdicts are not re-delivered, and a
    /// worker lost mid-query degrades its slot to Unknown without a call.
    /// Default: no-op.
    fn on_decided(&self, _i: usize, _j: usize, _verdict: &SatResult, _budget: &SolverBudget) {}
}

/// Verdicts recovered from a crosscheck journal, keyed by group-index
/// pair. Seeded verdicts short-circuit re-solving on resume: decided
/// verdicts are final, and an Unknown is reusable only for budgets the
/// recorded attempt already covers.
#[derive(Debug, Clone, Default)]
pub struct CheckSeeds {
    map: std::collections::HashMap<(usize, usize), (SatResult, SolverBudget)>,
}

impl CheckSeeds {
    /// Empty seed set.
    pub fn new() -> Self {
        CheckSeeds::default()
    }

    /// Number of seeded pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no verdicts are seeded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Record one journaled verdict. Later records supersede earlier ones
    /// only when they carry more information: a decided verdict replaces
    /// an Unknown, and a bigger-budget Unknown replaces a smaller one —
    /// so a journal holding both a base-pass Unknown and a retry-rung
    /// decision for the same pair resolves to the decision.
    pub fn insert(&mut self, i: usize, j: usize, verdict: SatResult, budget: SolverBudget) {
        use std::collections::hash_map::Entry;
        match self.map.entry((i, j)) {
            Entry::Vacant(e) => {
                e.insert((verdict, budget));
            }
            Entry::Occupied(mut e) => {
                let (old_v, old_b) = e.get();
                let supersedes = match (&verdict, old_v) {
                    (SatResult::Unknown, SatResult::Unknown) => budget.covers(old_b),
                    (SatResult::Unknown, _) => false,
                    (_, SatResult::Unknown) => true,
                    // Two decided verdicts for one pair: keep the first
                    // (they must agree; the replay validation on the
                    // artifacts guards the inputs).
                    _ => false,
                };
                if supersedes {
                    e.insert((verdict, budget));
                }
            }
        }
    }

    fn get(&self, i: usize, j: usize) -> Option<&(SatResult, SolverBudget)> {
        self.map.get(&(i, j))
    }
}

/// Crosscheck two grouped result sets.
///
/// The |RES_A| × |RES_B| query matrix is embarrassingly parallel: with
/// `cfg.jobs > 1` the pairs are fanned across worker threads, each owning a
/// private [`Solver`] backed by a shared verdict cache, and the verdicts are
/// merged back in pair order — the inconsistency set (including the concrete
/// witnesses) is identical for every job count, because solver models are
/// pure functions of the canonicalized assertion set.
pub fn crosscheck(
    a: &GroupedResults,
    b: &GroupedResults,
    cfg: &CrosscheckConfig,
) -> CrosscheckResult {
    crosscheck_durable(a, b, cfg, None, None)
}

/// [`crosscheck`] with journal support: `seeds` short-circuits pairs whose
/// verdicts were recovered from a crosscheck journal, `sink` observes each
/// newly produced verdict (in pair order, once per solving pass) so the
/// journal can persist it. After the base pass, `cfg.retry_rungs` extra
/// passes re-solve the still-Unknown pairs under geometrically escalated
/// budgets — all passes share one verdict cache, whose budget-aware
/// semantics guarantee a small-budget Unknown never masks a bigger-budget
/// re-solve.
pub fn crosscheck_durable(
    a: &GroupedResults,
    b: &GroupedResults,
    cfg: &CrosscheckConfig,
    seeds: Option<&CheckSeeds>,
    sink: Option<&dyn VerdictSink>,
) -> CrosscheckResult {
    crosscheck_hooked(
        a,
        b,
        cfg,
        CheckHooks {
            seeds,
            sink,
            ..Default::default()
        },
    )
}

/// Streaming extensions layered on the canonical crosscheck pass
/// structure. Everything here is a latency lever, not a semantics lever:
/// the verdict slots are merged by pair index and published in pair
/// order, so the result (and the journal bytes a sink writes) are
/// identical with or without hooks.
#[derive(Default)]
pub struct CheckHooks<'a> {
    /// Verdicts recovered from a crosscheck journal (as in
    /// [`crosscheck_durable`]).
    pub seeds: Option<&'a CheckSeeds>,
    /// Per-pass canonical observer (the journal hook) plus the immediate
    /// [`VerdictSink::on_decided`] streaming hook.
    pub sink: Option<&'a dyn VerdictSink>,
    /// Share a verdict cache with out-of-band solver work: the eager
    /// scheduler's probes run against the same cache, so a probe that
    /// already decided a final-refinement query makes the canonical pass
    /// a cache hit.
    pub cache: Option<Arc<VerdictCache>>,
    /// Group-index pairs to solve *first* within the base pass — the
    /// scheduler passes its known-satisfiable pairs so inconsistencies
    /// (the pairs distillation will need) decide earliest.
    pub solve_first: Vec<(usize, usize)>,
}

/// [`crosscheck_durable`] with streaming hooks — see [`CheckHooks`].
pub fn crosscheck_hooked(
    a: &GroupedResults,
    b: &GroupedResults,
    cfg: &CrosscheckConfig,
    hooks: CheckHooks<'_>,
) -> CrosscheckResult {
    let seeds = hooks.seeds;
    let sink = hooks.sink;
    assert_eq!(a.test, b.test, "crosschecking different tests");
    let start = Instant::now();
    // Build the pair list (and its `outputs_differ` terms) up front and
    // sequentially: term construction is shared-interner work, and doing it
    // once keeps the parallel section pure solver queries.
    let mut pairs: Vec<(usize, usize, Term)> = Vec::new();
    for (i, ga) in a.groups.iter().enumerate() {
        for (j, gb) in b.groups.iter().enumerate() {
            if ga.output == gb.output {
                continue;
            }
            // Require that the outputs differ *semantically* on the
            // witness, not just structurally in their symbolic form.
            let differ = outputs_differ(&ga.output, &gb.output);
            if differ.as_bool_const() == Some(false) {
                continue; // structurally distinct but semantically identical
            }
            pairs.push((i, j, differ));
        }
    }

    // One (verdict, budget) slot per pair. Journaled verdicts pre-fill
    // their slots: decided ones are final; an Unknown is kept only if the
    // recorded attempt already covers the base budget (otherwise the base
    // pass must genuinely retry it).
    let mut slots: Vec<Option<(SatResult, SolverBudget)>> = pairs
        .iter()
        .map(|(i, j, _)| match seeds.and_then(|s| s.get(*i, *j)) {
            Some((v, b)) if !matches!(v, SatResult::Unknown) => Some((v.clone(), *b)),
            Some((SatResult::Unknown, b)) if b.covers(&cfg.solver_budget) => {
                Some((SatResult::Unknown, *b))
            }
            _ => None,
        })
        .collect();

    // All passes share one budget-aware verdict cache: verdicts decided in
    // the base pass shortcut identical queries on retry rungs, while
    // Unknowns recorded under a smaller budget never suppress a re-solve
    // under a larger one. A caller-provided cache extends the sharing to
    // the eager scheduler's out-of-band probes.
    let cache = hooks.cache.unwrap_or_else(|| Arc::new(VerdictCache::new()));

    // Base pass: everything the seeds did not settle. Hinted pairs go
    // first (stable partition, so pair order survives within each class);
    // the verdict slots make the solve order invisible in the output.
    let mut todo: Vec<usize> = (0..pairs.len()).filter(|&k| slots[k].is_none()).collect();
    if !hooks.solve_first.is_empty() {
        let first: std::collections::HashSet<(usize, usize)> =
            hooks.solve_first.iter().copied().collect();
        todo.sort_by_key(|&k| !first.contains(&(pairs[k].0, pairs[k].1)));
    }
    let stats: Mutex<SolverStats> = Mutex::new(SolverStats::default());
    solve_pass(
        a,
        b,
        &pairs,
        &mut slots,
        &todo,
        cfg.solver_budget,
        cfg,
        &cache,
        sink,
        &stats,
    );
    notify_sink(sink, &pairs, &slots, &todo);

    // Escalation ladder: geometrically larger budgets for the leftovers.
    // Unlimited base budgets have nothing to escalate.
    if !cfg.solver_budget.is_unlimited() {
        let mut last_budget = cfg.solver_budget;
        for rung in 1..=cfg.retry_rungs {
            let mut budget = cfg
                .solver_budget
                .scaled(cfg.retry_factor.saturating_pow(rung));
            if let Some(cap) = cfg.retry_cap {
                budget.max_conflicts = budget.max_conflicts.map(|n| n.min(cap));
                budget.max_propagations = budget.max_propagations.map(|n| n.min(cap));
            }
            // The cap (or saturation) made this rung no bigger than the
            // last attempt: further rungs cannot make progress.
            if last_budget.covers(&budget) {
                break;
            }
            let todo: Vec<usize> = (0..pairs.len())
                .filter(|&k| match &slots[k] {
                    // Re-solve Unknowns whose deciding attempt was smaller
                    // than this rung (journal-recovered Unknowns may
                    // already cover it).
                    Some((SatResult::Unknown, b)) => !b.covers(&budget),
                    Some(_) => false,
                    None => true,
                })
                .collect();
            if todo.is_empty() {
                break;
            }
            solve_pass(
                a, b, &pairs, &mut slots, &todo, budget, cfg, &cache, sink, &stats,
            );
            notify_sink(sink, &pairs, &slots, &todo);
            last_budget = budget;
        }
    }

    let mut out = CrosscheckResult {
        solver: *recover(&stats),
        ..CrosscheckResult::default()
    };
    for ((i, j, _), slot) in pairs.iter().zip(&slots) {
        out.queries += 1;
        let (verdict, budget) = slot
            .as_ref()
            .expect("every pair gets a slot in the base pass");
        match verdict {
            SatResult::Sat(witness) => {
                if *budget != cfg.solver_budget {
                    out.resolved_on_retry += 1;
                }
                out.inconsistencies.push(Inconsistency {
                    test: a.test.clone(),
                    agent_a: a.agent.clone(),
                    agent_b: b.agent.clone(),
                    output_a: a.groups[*i].output.clone(),
                    output_b: b.groups[*j].output.clone(),
                    witness: witness.as_ref().clone(),
                });
            }
            SatResult::Unsat => {
                if *budget != cfg.solver_budget {
                    out.resolved_on_retry += 1;
                }
            }
            SatResult::Unknown => {
                out.unknown += 1;
                out.unverified.push(UnverifiedPair {
                    test: a.test.clone(),
                    agent_a: a.agent.clone(),
                    agent_b: b.agent.clone(),
                    output_a: a.groups[*i].output.clone(),
                    output_b: b.groups[*j].output.clone(),
                    // The final (largest) budget the pair exhausted.
                    budget: *budget,
                });
            }
        }
    }
    out.check_time = start.elapsed();
    out
}

/// Report the verdicts a pass just produced, in pair order, so the
/// journal bytes are deterministic for every job count.
fn notify_sink(
    sink: Option<&dyn VerdictSink>,
    pairs: &[(usize, usize, Term)],
    slots: &[Option<(SatResult, SolverBudget)>],
    solved: &[usize],
) {
    if let Some(s) = sink {
        for &k in solved {
            let (i, j, _) = &pairs[k];
            if let Some((verdict, budget)) = &slots[k] {
                s.on_verdict(*i, *j, verdict, budget);
            }
        }
    }
}

/// Construct one pass-lifetime pair-query solver. This is the *single*
/// place crosscheck builds a [`Solver`] (`tools/lint_fresh_solver.sh`
/// gates against throwaway per-pair construction): a worker's solver
/// lives for the whole pass, and with `incremental` it carries a
/// persistent context so the pairs it claims share bit-blasting, learned
/// clauses, and recorded UNSAT cores. Callers own the gating rule: pass
/// `incremental` only when the *governing* budget is unlimited —
/// solve passes gate on their pass budget, the streaming scheduler on
/// the session budget (its probe budget is deliberately finite, which is
/// sound because probes only ever publish Unsat; see
/// [`CrosscheckConfig::incremental`]).
pub(crate) fn worker_solver(
    cache: Arc<VerdictCache>,
    budget: SolverBudget,
    incremental: bool,
) -> Solver {
    let mut solver = Solver::with_cache(cache); // lint-exempt: pass-lifetime worker
    solver.budget = budget;
    if incremental {
        solver.enable_incremental();
    }
    solver
}

/// Solve the `todo` subset of the pair matrix under `budget`, filling the
/// corresponding slots. Sequential for `jobs <= 1`; otherwise fanned over
/// worker threads with verdicts written back by pair index, so the merge
/// order is independent of scheduling. Each worker's solver statistics
/// are merged into `stats` when its pass share completes.
#[allow(clippy::too_many_arguments)] // private plumbing shared by every pass
fn solve_pass(
    a: &GroupedResults,
    b: &GroupedResults,
    pairs: &[(usize, usize, Term)],
    slots: &mut [Option<(SatResult, SolverBudget)>],
    todo: &[usize],
    budget: SolverBudget,
    cfg: &CrosscheckConfig,
    cache: &Arc<VerdictCache>,
    sink: Option<&dyn VerdictSink>,
    stats: &Mutex<SolverStats>,
) {
    if todo.is_empty() {
        return;
    }
    let query = |solver: &mut Solver, k: usize| {
        let (i, j, differ) = &pairs[k];
        let v = solver.check(&[
            a.groups[*i].condition.clone(),
            b.groups[*j].condition.clone(),
            differ.clone(),
        ]);
        if let Some(s) = sink {
            s.on_decided(*i, *j, &v, &budget);
        }
        v
    };
    let jobs = cfg.jobs;
    if jobs <= 1 {
        let mut solver = worker_solver(
            Arc::clone(cache),
            budget,
            cfg.incremental && budget.is_unlimited(),
        );
        for &k in todo {
            let v = query(&mut solver, k);
            slots[k] = Some((v, budget));
        }
        recover(stats).merge(&solver.stats);
        return;
    }
    let next = AtomicUsize::new(0);
    let verdicts: Mutex<Vec<Option<SatResult>>> = Mutex::new(vec![None; todo.len()]);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(todo.len()) {
            let cache = Arc::clone(cache);
            let next = &next;
            let verdicts = &verdicts;
            let query = &query;
            scope.spawn(move || {
                let mut solver =
                    worker_solver(cache, budget, cfg.incremental && budget.is_unlimited());
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= todo.len() {
                        break;
                    }
                    let v = query(&mut solver, todo[t]);
                    recover(verdicts)[t] = Some(v);
                }
                recover(stats).merge(&solver.stats);
            });
        }
    });
    // A slot can only be `None` if its worker died mid-query; degrading it
    // to Unknown turns the loss into an unverified pair instead of an
    // abort or a fabricated verdict.
    let solved = verdicts.into_inner().unwrap_or_else(|e| e.into_inner());
    for (t, v) in solved.into_iter().enumerate() {
        slots[todo[t]] = Some((v.unwrap_or(SatResult::Unknown), budget));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_paths;
    use soft_harness::PathRecord;
    use soft_protocol::TraceEvent;
    use soft_smt::Term;

    fn out(tag: u16) -> ObservedOutput {
        ObservedOutput {
            events: vec![TraceEvent::Error {
                xid: Term::bv_const(32, 0),
                etype: Term::bv_const(16, 1),
                code: Term::bv_const(16, tag as u64),
            }],
            crashed: false,
        }
    }

    fn path(cond: Term, o: ObservedOutput) -> PathRecord {
        PathRecord {
            constraint_size: soft_smt::metrics::op_count(&cond),
            condition: cond,
            output: o,
        }
    }

    /// The Figure 1/2 worked example: agent 1 treats OFPP_CONTROLLER
    /// specially, agent 2 does not — crosschecking finds exactly the
    /// p == 0xfffd inconsistency.
    #[test]
    fn figure2_example_found() {
        let p = Term::var("cc.p", 16);
        let ctrl = Term::bv_const(16, 0xfffd);
        let small = Term::bv_const(16, 25);
        // Agent 1: FWD for p < 25; CTRL for p == 0xfffd; ERR otherwise.
        let a = group_paths(
            "agent1",
            "t",
            &[
                path(p.clone().ult(small.clone()), out(100)), // FWD
                path(p.clone().eq(ctrl.clone()), out(200)),   // CTRL
                path(
                    p.clone().uge(small.clone()).and(p.clone().ne(ctrl.clone())),
                    out(300), // ERR
                ),
            ],
        )
        .expect("grouping");
        // Agent 2: FWD for p < 25; ERR otherwise.
        let b = group_paths(
            "agent2",
            "t",
            &[
                path(p.clone().ult(small.clone()), out(100)),
                path(p.clone().uge(small.clone()), out(300)),
            ],
        )
        .expect("grouping");
        let r = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert_eq!(r.inconsistencies.len(), 1, "exactly the CTRL divergence");
        let inc = &r.inconsistencies[0];
        assert_eq!(inc.witness.get("cc.p"), Some(0xfffd));
        assert_eq!(inc.output_a, out(200));
        assert_eq!(inc.output_b, out(300));
        // Query bound: |RES_A| * |RES_B| minus equal-output pairs.
        assert!(r.queries <= a.num_results() * b.num_results());
    }

    #[test]
    fn identical_agents_have_no_inconsistencies() {
        let p = Term::var("cc2.p", 8);
        let mk = |name: &str| {
            group_paths(
                name,
                "t",
                &[
                    path(p.clone().ult(Term::bv_const(8, 10)), out(1)),
                    path(p.clone().uge(Term::bv_const(8, 10)), out(2)),
                ],
            )
            .expect("grouping")
        };
        let r = crosscheck(&mk("a"), &mk("b"), &CrosscheckConfig::default());
        assert!(r.inconsistencies.is_empty());
        // Off-diagonal pairs are checked but unsatisfiable.
        assert_eq!(r.queries, 2);
    }

    #[test]
    fn witness_satisfies_both_conditions() {
        let p = Term::var("cc3.p", 8);
        let a = group_paths(
            "a",
            "t",
            &[path(p.clone().ult(Term::bv_const(8, 100)), out(1))],
        )
        .expect("grouping");
        let b = group_paths(
            "b",
            "t",
            &[path(p.clone().ugt(Term::bv_const(8, 50)), out(2))],
        )
        .expect("grouping");
        let r = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert_eq!(r.inconsistencies.len(), 1);
        let w = &r.inconsistencies[0].witness;
        assert!(w.eval_bool(&a.groups[0].condition));
        assert!(w.eval_bool(&b.groups[0].condition));
    }

    #[test]
    #[should_panic(expected = "different tests")]
    fn mismatched_tests_rejected() {
        let a = group_paths("a", "t1", &[]).expect("grouping");
        let b = group_paths("b", "t2", &[]).expect("grouping");
        crosscheck(&a, &b, &CrosscheckConfig::default());
    }

    #[test]
    fn budget_exhausted_pair_listed_as_unverified() {
        // A sum-of-squares equation the CDCL search cannot settle within a
        // one-conflict budget (same shape as the smt crate's hard query).
        let xs: Vec<Term> = (0..12).map(|i| Term::var(format!("cc5.h{i}"), 8)).collect();
        let mut sum = Term::bv_const(8, 0);
        for x in &xs {
            sum = sum.bvadd(x.clone().bvmul(x.clone()));
        }
        let hard = sum.eq(Term::bv_const(8, 0x5a));
        let a = group_paths("a", "t", &[path(hard, out(1))]).expect("grouping");
        let b = group_paths(
            "b",
            "t",
            &[path(xs[0].clone().ult(Term::bv_const(8, 200)), out(2))],
        )
        .expect("grouping");
        let capped = crosscheck(
            &a,
            &b,
            &CrosscheckConfig {
                solver_budget: SolverBudget::conflicts(1),
                ..Default::default()
            },
        );
        assert_eq!(capped.queries, 1);
        assert_eq!(capped.unknown, 1, "the capped query must come back Unknown");
        assert_eq!(capped.unverified.len(), 1, "and be listed, not dropped");
        assert!(
            capped.inconsistencies.is_empty(),
            "an undecided pair must never be reported as an inconsistency"
        );
        assert!(!capped.fully_verified());
        let uv = &capped.unverified[0];
        assert_eq!(uv.output_a, out(1));
        assert_eq!(uv.output_b, out(2));
        assert_eq!(uv.budget, SolverBudget::conflicts(1));
        // An unlimited retry decides the very same pair: the subspaces do
        // intersect, so it graduates from unverified to inconsistency.
        let full = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert!(full.fully_verified());
        assert_eq!(full.unknown, 0);
        assert_eq!(full.inconsistencies.len(), 1);
    }

    #[test]
    fn parallel_crosscheck_matches_sequential() {
        // A 3×4 group matrix with every output distinct: 12 queries, many
        // satisfiable, so witnesses exercise the deterministic-model path.
        let p = Term::var("cc4.p", 8);
        let a = group_paths(
            "a",
            "t",
            &[
                path(p.clone().ult(Term::bv_const(8, 50)), out(1)),
                path(
                    p.clone()
                        .uge(Term::bv_const(8, 50))
                        .and(p.clone().ult(Term::bv_const(8, 100))),
                    out(2),
                ),
                path(p.clone().uge(Term::bv_const(8, 100)), out(3)),
            ],
        )
        .expect("grouping");
        let b = group_paths(
            "b",
            "t",
            &[
                path(p.clone().ult(Term::bv_const(8, 30)), out(4)),
                path(
                    p.clone()
                        .uge(Term::bv_const(8, 30))
                        .and(p.clone().ult(Term::bv_const(8, 80))),
                    out(5),
                ),
                path(
                    p.clone()
                        .uge(Term::bv_const(8, 80))
                        .and(p.clone().ult(Term::bv_const(8, 200))),
                    out(6),
                ),
                path(p.clone().uge(Term::bv_const(8, 200)), out(7)),
            ],
        )
        .expect("grouping");
        let seq = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert!(!seq.inconsistencies.is_empty());
        for jobs in [2, 4] {
            let par = crosscheck(
                &a,
                &b,
                &CrosscheckConfig {
                    jobs,
                    ..Default::default()
                },
            );
            assert_eq!(par.queries, seq.queries, "jobs={jobs}");
            assert_eq!(par.unknown, seq.unknown, "jobs={jobs}");
            assert_eq!(
                par.inconsistencies.len(),
                seq.inconsistencies.len(),
                "jobs={jobs}"
            );
            for (x, y) in seq.inconsistencies.iter().zip(&par.inconsistencies) {
                assert_eq!(x.output_a, y.output_a, "jobs={jobs}");
                assert_eq!(x.output_b, y.output_b, "jobs={jobs}");
                assert_eq!(x.witness, y.witness, "jobs={jobs}");
            }
        }
    }

    /// The hard pair from `budget_exhausted_pair_listed_as_unverified`,
    /// reusable for the retry-ladder tests.
    fn hard_pair() -> (GroupedResults, GroupedResults) {
        let xs: Vec<Term> = (0..12).map(|i| Term::var(format!("cc6.h{i}"), 8)).collect();
        let mut sum = Term::bv_const(8, 0);
        for x in &xs {
            sum = sum.bvadd(x.clone().bvmul(x.clone()));
        }
        let hard = sum.eq(Term::bv_const(8, 0x5a));
        let a = group_paths("a", "t", &[path(hard, out(1))]).expect("grouping");
        let b = group_paths(
            "b",
            "t",
            &[path(xs[0].clone().ult(Term::bv_const(8, 200)), out(2))],
        )
        .expect("grouping");
        (a, b)
    }

    #[test]
    fn retry_ladder_decides_what_the_base_budget_could_not() {
        let (a, b) = hard_pair();
        // Base pass alone: Unknown.
        let base = crosscheck(
            &a,
            &b,
            &CrosscheckConfig {
                solver_budget: SolverBudget::conflicts(1),
                ..Default::default()
            },
        );
        assert_eq!(base.unknown, 1);
        assert_eq!(base.resolved_on_retry, 0);
        // With the escalation ladder the same run decides the pair. The
        // passes share one verdict cache, so this also proves a rung-N
        // Unknown cannot mask the rung-(N+1) re-solve — if it did, the
        // pair would stay Unknown forever.
        let laddered = crosscheck(
            &a,
            &b,
            &CrosscheckConfig {
                solver_budget: SolverBudget::conflicts(1),
                retry_rungs: 10,
                ..Default::default()
            },
        );
        assert!(laddered.fully_verified(), "ladder must decide the pair");
        assert_eq!(laddered.unknown, 0);
        assert_eq!(laddered.unverified.len(), 0);
        assert_eq!(laddered.inconsistencies.len(), 1);
        assert_eq!(laddered.resolved_on_retry, 1);
        // Same witness quality as anywhere else: it satisfies both sides.
        let w = &laddered.inconsistencies[0].witness;
        assert!(w.eval_bool(&a.groups[0].condition));
        assert!(w.eval_bool(&b.groups[0].condition));
    }

    #[test]
    fn retry_cap_bounds_the_ladder() {
        let (a, b) = hard_pair();
        let capped = crosscheck(
            &a,
            &b,
            &CrosscheckConfig {
                solver_budget: SolverBudget::conflicts(1),
                retry_rungs: 10,
                retry_cap: Some(2),
                ..Default::default()
            },
        );
        // Rung 1 is capped to 2 conflicts; rung 2 would also be 2, so the
        // ladder stops instead of spinning. The pair stays honestly
        // unverified, reported at the largest budget actually attempted.
        assert_eq!(capped.unknown, 1);
        assert_eq!(capped.unverified[0].budget, SolverBudget::conflicts(2));
        assert_eq!(capped.resolved_on_retry, 0);
    }

    #[test]
    fn retry_ladder_is_a_noop_for_unlimited_budgets() {
        let (a, b) = hard_pair();
        let r = crosscheck(
            &a,
            &b,
            &CrosscheckConfig {
                retry_rungs: 5,
                ..Default::default()
            },
        );
        assert!(r.fully_verified());
        assert_eq!(r.resolved_on_retry, 0, "nothing to escalate from unlimited");
    }

    #[derive(Default)]
    struct CollectVerdicts(Mutex<Vec<(usize, usize, SatResult, SolverBudget)>>);

    impl VerdictSink for CollectVerdicts {
        fn on_verdict(&self, i: usize, j: usize, verdict: &SatResult, budget: &SolverBudget) {
            recover(&self.0).push((i, j, verdict.clone(), *budget));
        }
    }

    #[test]
    fn seeded_verdicts_short_circuit_resolving() {
        let (a, b) = hard_pair();
        let cfg = CrosscheckConfig {
            solver_budget: SolverBudget::conflicts(1),
            retry_rungs: 10,
            ..Default::default()
        };
        let sink = CollectVerdicts::default();
        let first = crosscheck_durable(&a, &b, &cfg, None, Some(&sink));
        let journaled = sink.0.into_inner().unwrap_or_else(|e| e.into_inner());
        assert!(
            journaled.len() >= 2,
            "the hard pair must be journaled once per attempt (Unknown then decided)"
        );
        // Recovery: replay the journal into seeds, decided-supersedes-Unknown.
        let mut seeds = CheckSeeds::new();
        for (i, j, v, bud) in &journaled {
            seeds.insert(*i, *j, v.clone(), *bud);
        }
        let resume_sink = CollectVerdicts::default();
        let resumed = crosscheck_durable(&a, &b, &cfg, Some(&seeds), Some(&resume_sink));
        assert!(
            resume_sink
                .0
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty(),
            "a complete verdict journal owes no solver work"
        );
        assert_eq!(resumed.queries, first.queries);
        assert_eq!(resumed.unknown, first.unknown);
        assert_eq!(resumed.resolved_on_retry, first.resolved_on_retry);
        assert_eq!(resumed.inconsistencies.len(), first.inconsistencies.len());
        for (x, y) in first.inconsistencies.iter().zip(&resumed.inconsistencies) {
            assert_eq!(x.witness, y.witness, "journaled witnesses must roundtrip");
        }
    }

    #[test]
    fn seeded_unknown_at_small_budget_is_resolved_not_reused() {
        let (a, b) = hard_pair();
        // A journal written by a plain base-budget run: one Unknown at 1
        // conflict.
        let mut seeds = CheckSeeds::new();
        seeds.insert(0, 0, SatResult::Unknown, SolverBudget::conflicts(1));
        // Resuming with a retry ladder must re-solve the pair, not let the
        // recorded small-budget Unknown mask the escalated attempts.
        let cfg = CrosscheckConfig {
            solver_budget: SolverBudget::conflicts(1),
            retry_rungs: 10,
            ..Default::default()
        };
        let r = crosscheck_durable(&a, &b, &cfg, Some(&seeds), None);
        assert!(r.fully_verified());
        assert_eq!(r.resolved_on_retry, 1);
    }

    #[test]
    fn check_seeds_supersede_rules() {
        let mut s = CheckSeeds::new();
        s.insert(0, 0, SatResult::Unknown, SolverBudget::conflicts(1));
        s.insert(0, 0, SatResult::Unknown, SolverBudget::conflicts(4));
        assert!(matches!(
            s.get(0, 0),
            Some((SatResult::Unknown, b)) if *b == SolverBudget::conflicts(4)
        ));
        // A decision replaces any Unknown...
        s.insert(0, 0, SatResult::Unsat, SolverBudget::conflicts(16));
        assert!(matches!(s.get(0, 0), Some((SatResult::Unsat, _))));
        // ...and a later Unknown never downgrades a decision.
        s.insert(0, 0, SatResult::Unknown, SolverBudget::conflicts(64));
        assert!(matches!(s.get(0, 0), Some((SatResult::Unsat, _))));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[derive(Default)]
    struct CountDecided(std::sync::atomic::AtomicUsize);

    impl VerdictSink for CountDecided {
        fn on_verdict(&self, _: usize, _: usize, _: &SatResult, _: &SolverBudget) {}
        fn on_decided(&self, _: usize, _: usize, _: &SatResult, _: &SolverBudget) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn hooks_do_not_change_results() {
        let (a, b) = hard_pair();
        let cfg = CrosscheckConfig {
            solver_budget: SolverBudget::conflicts(1),
            retry_rungs: 10,
            ..Default::default()
        };
        let plain = crosscheck_durable(&a, &b, &cfg, None, None);
        // Solve-first hints, a shared external cache, and the immediate
        // on_decided hook — none of them may perturb the canonical result.
        let sink = CountDecided::default();
        let hooked = crosscheck_hooked(
            &a,
            &b,
            &cfg,
            CheckHooks {
                sink: Some(&sink),
                cache: Some(Arc::new(VerdictCache::new())),
                solve_first: vec![(0, 0)],
                ..Default::default()
            },
        );
        assert_eq!(hooked.queries, plain.queries);
        assert_eq!(hooked.unknown, plain.unknown);
        assert_eq!(hooked.resolved_on_retry, plain.resolved_on_retry);
        assert_eq!(hooked.inconsistencies.len(), plain.inconsistencies.len());
        for (x, y) in plain.inconsistencies.iter().zip(&hooked.inconsistencies) {
            assert_eq!(x.witness, y.witness);
        }
        // Every fresh solve fired the immediate hook: the base-pass
        // Unknown plus each escalation attempt.
        assert!(sink.0.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn shared_cache_lets_presolved_queries_short_circuit() {
        // Pre-solve the canonical query out of band through a shared
        // cache, the way the eager scheduler's final-refinement probe
        // does, then confirm the canonical pass reproduces the identical
        // witness (cache hits return the cached model verbatim).
        let p = Term::var("cc7.p", 8);
        let a = group_paths(
            "a",
            "t",
            &[path(p.clone().ult(Term::bv_const(8, 100)), out(1))],
        )
        .expect("grouping");
        let b = group_paths(
            "b",
            "t",
            &[path(p.clone().ugt(Term::bv_const(8, 50)), out(2))],
        )
        .expect("grouping");
        let cache = Arc::new(VerdictCache::new());
        let differ = outputs_differ(&a.groups[0].output, &b.groups[0].output);
        let mut probe = Solver::with_cache(Arc::clone(&cache));
        let probed = probe.check(&[
            a.groups[0].condition.clone(),
            b.groups[0].condition.clone(),
            differ,
        ]);
        assert!(probed.is_sat());
        let hooked = crosscheck_hooked(
            &a,
            &b,
            &CrosscheckConfig::default(),
            CheckHooks {
                cache: Some(cache),
                ..Default::default()
            },
        );
        let plain = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert_eq!(hooked.inconsistencies.len(), 1);
        assert_eq!(
            hooked.inconsistencies[0].witness,
            plain.inconsistencies[0].witness
        );
    }

    #[test]
    fn parallel_retry_ladder_matches_sequential() {
        let (a, b) = hard_pair();
        let mk = |jobs| CrosscheckConfig {
            solver_budget: SolverBudget::conflicts(1),
            jobs,
            retry_rungs: 10,
            ..Default::default()
        };
        let seq = crosscheck(&a, &b, &mk(1));
        for jobs in [2, 4] {
            let par = crosscheck(&a, &b, &mk(jobs));
            assert_eq!(par.unknown, seq.unknown, "jobs={jobs}");
            assert_eq!(par.resolved_on_retry, seq.resolved_on_retry, "jobs={jobs}");
            assert_eq!(
                par.inconsistencies.len(),
                seq.inconsistencies.len(),
                "jobs={jobs}"
            );
            for (x, y) in seq.inconsistencies.iter().zip(&par.inconsistencies) {
                assert_eq!(x.witness, y.witness, "jobs={jobs}");
            }
        }
    }
}
