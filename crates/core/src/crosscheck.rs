//! The inconsistency finder (§3.4, §4.2).
//!
//! Takes two grouped result sets (one per agent), iterates over all pairs
//! of *different* output results, and asks the solver whether the
//! conjunction `C_A(i) ∧ C_B(j)` is satisfiable. A satisfiable pair is an
//! inconsistency: a common input subspace on which the two agents behave
//! differently. The solver model is the concrete reproduction test case.
//!
//! No false positives by construction: a model pins the input bytes to
//! values that — by the per-agent path conditions — drive agent A to
//! output `i` and agent B to output `j ≠ i`.

use crate::group::GroupedResults;
use soft_harness::ObservedOutput;
use soft_openflow::TraceEvent;
use soft_smt::{Assignment, SatResult, Solver, SolverBudget, Term, VerdictCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recover the guarded data even if a sibling worker panicked while
/// holding the lock. The verdict vector is only written slot-wise, so a
/// poisoned lock still guards usable state; unfinished slots degrade to
/// [`SatResult::Unknown`] rather than aborting the run.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Condition under which two (possibly symbolic) outputs take *different
/// concrete values*.
///
/// Outputs may embed symbolic input expressions ("the output data may even
/// contain symbolic inputs", §3.3). Two structurally different outputs —
/// say `Tx{port: in_port}` vs `Tx{port: action_port}` — can still agree on
/// the sliver of input space where the embedded expressions coincide, and
/// a witness drawn from that sliver would be a false positive. The
/// inconsistency query therefore conjoins this disequality constraint, so
/// every witness provably makes the observable outputs differ.
fn outputs_differ(a: &ObservedOutput, b: &ObservedOutput) -> Term {
    if a.crashed != b.crashed || a.events.len() != b.events.len() {
        return Term::bool_true();
    }
    let mut diff = Term::bool_false();
    for (ea, eb) in a.events.iter().zip(&b.events) {
        diff = diff.or(event_differs(ea, eb));
        if diff.as_bool_const() == Some(true) {
            return diff;
        }
    }
    diff
}

fn terms_differ(a: &Term, b: &Term) -> Term {
    if a == b {
        Term::bool_false()
    } else if a.width() != b.width() {
        Term::bool_true()
    } else {
        a.clone().ne(b.clone())
    }
}

fn bufs_differ(a: &soft_sym::SymBuf, b: &soft_sym::SymBuf) -> Term {
    if a.len() != b.len() {
        return Term::bool_true();
    }
    let mut diff = Term::bool_false();
    for (x, y) in a.bytes().iter().zip(b.bytes()) {
        diff = diff.or(terms_differ(x, y));
        if diff.as_bool_const() == Some(true) {
            break;
        }
    }
    diff
}

fn event_differs(a: &TraceEvent, b: &TraceEvent) -> Term {
    match (a, b) {
        (
            TraceEvent::Error {
                etype: ta,
                code: ca,
                ..
            },
            TraceEvent::Error {
                etype: tb,
                code: cb,
                ..
            },
        ) => terms_differ(ta, tb).or(terms_differ(ca, cb)),
        (
            TraceEvent::PacketIn {
                in_port: ia,
                reason: ra,
                data_len: la,
                data: da,
                ..
            },
            TraceEvent::PacketIn {
                in_port: ib,
                reason: rb,
                data_len: lb,
                data: db,
                ..
            },
        ) => terms_differ(ia, ib)
            .or(terms_differ(ra, rb))
            .or(terms_differ(la, lb))
            .or(bufs_differ(da, db)),
        (
            TraceEvent::OfReply {
                msg_type: ma,
                fields: fa,
                body: ba,
            },
            TraceEvent::OfReply {
                msg_type: mb,
                fields: fb,
                body: bb,
            },
        ) => {
            if ma != mb || fa.len() != fb.len() {
                return Term::bool_true();
            }
            let mut diff = bufs_differ(ba, bb);
            for ((na, ta), (nb, tb)) in fa.iter().zip(fb) {
                if na != nb {
                    return Term::bool_true();
                }
                diff = diff.or(terms_differ(ta, tb));
            }
            diff
        }
        (
            TraceEvent::DataPlaneTx { port: pa, data: da },
            TraceEvent::DataPlaneTx { port: pb, data: db },
        ) => terms_differ(pa, pb).or(bufs_differ(da, db)),
        (
            TraceEvent::Flood {
                exclude_ingress: xa,
                data: da,
            },
            TraceEvent::Flood {
                exclude_ingress: xb,
                data: db,
            },
        ) => {
            if xa != xb {
                Term::bool_true()
            } else {
                bufs_differ(da, db)
            }
        }
        (TraceEvent::NormalForward { data: da }, TraceEvent::NormalForward { data: db }) => {
            bufs_differ(da, db)
        }
        (TraceEvent::ProbeDropped, TraceEvent::ProbeDropped) => Term::bool_false(),
        _ => Term::bool_true(), // different event kinds
    }
}

/// One discovered inconsistency.
#[derive(Debug, Clone)]
pub struct Inconsistency {
    /// Test identifier.
    pub test: String,
    /// First agent.
    pub agent_a: String,
    /// Second agent.
    pub agent_b: String,
    /// Output observed by agent A on the common inputs.
    pub output_a: ObservedOutput,
    /// Output observed by agent B on the common inputs.
    pub output_b: ObservedOutput,
    /// A concrete witness: input-byte assignment reproducing the
    /// divergence.
    pub witness: Assignment,
}

/// An output pair the solver could not decide within its resource budget.
///
/// The pair is neither an inconsistency nor proof of agreement — SOFT
/// reports it as *unverified* so a degraded run never lies in either
/// direction. Re-running with a larger `--solver-budget` retries exactly
/// these pairs (the verdict cache remembers the failed budget and only
/// shortcuts queries it has already failed at an equal-or-larger budget).
#[derive(Debug, Clone)]
pub struct UnverifiedPair {
    /// Test identifier.
    pub test: String,
    /// First agent.
    pub agent_a: String,
    /// Second agent.
    pub agent_b: String,
    /// Output of agent A whose input subspace could not be intersected.
    pub output_a: ObservedOutput,
    /// Output of agent B whose input subspace could not be intersected.
    pub output_b: ObservedOutput,
    /// The budget the query exhausted.
    pub budget: SolverBudget,
}

/// Result of crosschecking two agents on one test.
#[derive(Debug, Clone, Default)]
pub struct CrosscheckResult {
    /// The discovered inconsistencies (one per divergent output pair).
    pub inconsistencies: Vec<Inconsistency>,
    /// Solver queries issued (bounded by |RES_A| * |RES_B|).
    pub queries: usize,
    /// Queries the solver could not decide within budget
    /// (= `unverified.len()`).
    pub unknown: usize,
    /// The undecided pairs, in query order. Never silently dropped: a
    /// budget-exhausted pair is listed here instead of being misreported
    /// as consistent or inconsistent.
    pub unverified: Vec<UnverifiedPair>,
    /// Wall-clock time of the intersection phase (Table 3 "Inconsist.
    /// checking" column).
    pub check_time: Duration,
}

impl CrosscheckResult {
    /// True when every queried pair was decided within budget.
    pub fn fully_verified(&self) -> bool {
        self.unverified.is_empty()
    }
}

/// Options for the inconsistency finder.
#[derive(Debug, Clone)]
pub struct CrosscheckConfig {
    /// Per-query solver resource budget (default: unlimited).
    pub solver_budget: SolverBudget,
    /// Worker threads for the query matrix (1 = sequential).
    pub jobs: usize,
}

impl Default for CrosscheckConfig {
    fn default() -> Self {
        CrosscheckConfig {
            solver_budget: SolverBudget::unlimited(),
            jobs: 1,
        }
    }
}

/// Crosscheck two grouped result sets.
///
/// The |RES_A| × |RES_B| query matrix is embarrassingly parallel: with
/// `cfg.jobs > 1` the pairs are fanned across worker threads, each owning a
/// private [`Solver`] backed by a shared verdict cache, and the verdicts are
/// merged back in pair order — the inconsistency set (including the concrete
/// witnesses) is identical for every job count, because solver models are
/// pure functions of the canonicalized assertion set.
pub fn crosscheck(
    a: &GroupedResults,
    b: &GroupedResults,
    cfg: &CrosscheckConfig,
) -> CrosscheckResult {
    assert_eq!(a.test, b.test, "crosschecking different tests");
    let start = Instant::now();
    // Build the pair list (and its `outputs_differ` terms) up front and
    // sequentially: term construction is shared-interner work, and doing it
    // once keeps the parallel section pure solver queries.
    let mut pairs: Vec<(usize, usize, Term)> = Vec::new();
    for (i, ga) in a.groups.iter().enumerate() {
        for (j, gb) in b.groups.iter().enumerate() {
            if ga.output == gb.output {
                continue;
            }
            // Require that the outputs differ *semantically* on the
            // witness, not just structurally in their symbolic form.
            let differ = outputs_differ(&ga.output, &gb.output);
            if differ.as_bool_const() == Some(false) {
                continue; // structurally distinct but semantically identical
            }
            pairs.push((i, j, differ));
        }
    }
    let verdicts: Vec<SatResult> = if cfg.jobs <= 1 {
        let mut solver = Solver::new();
        solver.budget = cfg.solver_budget;
        pairs
            .iter()
            .map(|(i, j, differ)| {
                solver.check(&[
                    a.groups[*i].condition.clone(),
                    b.groups[*j].condition.clone(),
                    differ.clone(),
                ])
            })
            .collect()
    } else {
        check_pairs_parallel(a, b, &pairs, cfg)
    };
    let mut out = CrosscheckResult::default();
    for ((i, j, _), verdict) in pairs.iter().zip(verdicts) {
        out.queries += 1;
        match verdict {
            SatResult::Sat(witness) => {
                out.inconsistencies.push(Inconsistency {
                    test: a.test.clone(),
                    agent_a: a.agent.clone(),
                    agent_b: b.agent.clone(),
                    output_a: a.groups[*i].output.clone(),
                    output_b: b.groups[*j].output.clone(),
                    witness: witness.as_ref().clone(),
                });
            }
            SatResult::Unsat => {}
            SatResult::Unknown => {
                out.unknown += 1;
                out.unverified.push(UnverifiedPair {
                    test: a.test.clone(),
                    agent_a: a.agent.clone(),
                    agent_b: b.agent.clone(),
                    output_a: a.groups[*i].output.clone(),
                    output_b: b.groups[*j].output.clone(),
                    budget: cfg.solver_budget,
                });
            }
        }
    }
    out.check_time = start.elapsed();
    out
}

/// Solve the pair matrix on `cfg.jobs` threads; verdicts come back indexed
/// by pair, so the caller's merge order is independent of scheduling.
fn check_pairs_parallel(
    a: &GroupedResults,
    b: &GroupedResults,
    pairs: &[(usize, usize, Term)],
    cfg: &CrosscheckConfig,
) -> Vec<SatResult> {
    let cache = Arc::new(VerdictCache::new());
    let next = AtomicUsize::new(0);
    let verdicts: Mutex<Vec<Option<SatResult>>> = Mutex::new(vec![None; pairs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.min(pairs.len().max(1)) {
            let cache = Arc::clone(&cache);
            let next = &next;
            let verdicts = &verdicts;
            scope.spawn(move || {
                let mut solver = Solver::with_cache(cache);
                solver.budget = cfg.solver_budget;
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= pairs.len() {
                        break;
                    }
                    let (i, j, differ) = &pairs[k];
                    let v = solver.check(&[
                        a.groups[*i].condition.clone(),
                        b.groups[*j].condition.clone(),
                        differ.clone(),
                    ]);
                    recover(verdicts)[k] = Some(v);
                }
            });
        }
    });
    // A slot can only be `None` if its worker died mid-query; degrading it
    // to Unknown turns the loss into an unverified pair instead of an
    // abort or a fabricated verdict.
    verdicts
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|v| v.unwrap_or(SatResult::Unknown))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_paths;
    use soft_harness::PathRecord;
    use soft_openflow::TraceEvent;
    use soft_smt::Term;

    fn out(tag: u16) -> ObservedOutput {
        ObservedOutput {
            events: vec![TraceEvent::Error {
                xid: Term::bv_const(32, 0),
                etype: Term::bv_const(16, 1),
                code: Term::bv_const(16, tag as u64),
            }],
            crashed: false,
        }
    }

    fn path(cond: Term, o: ObservedOutput) -> PathRecord {
        PathRecord {
            constraint_size: soft_smt::metrics::op_count(&cond),
            condition: cond,
            output: o,
        }
    }

    /// The Figure 1/2 worked example: agent 1 treats OFPP_CONTROLLER
    /// specially, agent 2 does not — crosschecking finds exactly the
    /// p == 0xfffd inconsistency.
    #[test]
    fn figure2_example_found() {
        let p = Term::var("cc.p", 16);
        let ctrl = Term::bv_const(16, 0xfffd);
        let small = Term::bv_const(16, 25);
        // Agent 1: FWD for p < 25; CTRL for p == 0xfffd; ERR otherwise.
        let a = group_paths(
            "agent1",
            "t",
            &[
                path(p.clone().ult(small.clone()), out(100)), // FWD
                path(p.clone().eq(ctrl.clone()), out(200)),   // CTRL
                path(
                    p.clone().uge(small.clone()).and(p.clone().ne(ctrl.clone())),
                    out(300), // ERR
                ),
            ],
        )
        .expect("grouping");
        // Agent 2: FWD for p < 25; ERR otherwise.
        let b = group_paths(
            "agent2",
            "t",
            &[
                path(p.clone().ult(small.clone()), out(100)),
                path(p.clone().uge(small.clone()), out(300)),
            ],
        )
        .expect("grouping");
        let r = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert_eq!(r.inconsistencies.len(), 1, "exactly the CTRL divergence");
        let inc = &r.inconsistencies[0];
        assert_eq!(inc.witness.get("cc.p"), Some(0xfffd));
        assert_eq!(inc.output_a, out(200));
        assert_eq!(inc.output_b, out(300));
        // Query bound: |RES_A| * |RES_B| minus equal-output pairs.
        assert!(r.queries <= a.num_results() * b.num_results());
    }

    #[test]
    fn identical_agents_have_no_inconsistencies() {
        let p = Term::var("cc2.p", 8);
        let mk = |name: &str| {
            group_paths(
                name,
                "t",
                &[
                    path(p.clone().ult(Term::bv_const(8, 10)), out(1)),
                    path(p.clone().uge(Term::bv_const(8, 10)), out(2)),
                ],
            )
            .expect("grouping")
        };
        let r = crosscheck(&mk("a"), &mk("b"), &CrosscheckConfig::default());
        assert!(r.inconsistencies.is_empty());
        // Off-diagonal pairs are checked but unsatisfiable.
        assert_eq!(r.queries, 2);
    }

    #[test]
    fn witness_satisfies_both_conditions() {
        let p = Term::var("cc3.p", 8);
        let a = group_paths(
            "a",
            "t",
            &[path(p.clone().ult(Term::bv_const(8, 100)), out(1))],
        )
        .expect("grouping");
        let b = group_paths(
            "b",
            "t",
            &[path(p.clone().ugt(Term::bv_const(8, 50)), out(2))],
        )
        .expect("grouping");
        let r = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert_eq!(r.inconsistencies.len(), 1);
        let w = &r.inconsistencies[0].witness;
        assert!(w.eval_bool(&a.groups[0].condition));
        assert!(w.eval_bool(&b.groups[0].condition));
    }

    #[test]
    #[should_panic(expected = "different tests")]
    fn mismatched_tests_rejected() {
        let a = group_paths("a", "t1", &[]).expect("grouping");
        let b = group_paths("b", "t2", &[]).expect("grouping");
        crosscheck(&a, &b, &CrosscheckConfig::default());
    }

    #[test]
    fn budget_exhausted_pair_listed_as_unverified() {
        // A sum-of-squares equation the CDCL search cannot settle within a
        // one-conflict budget (same shape as the smt crate's hard query).
        let xs: Vec<Term> = (0..12).map(|i| Term::var(format!("cc5.h{i}"), 8)).collect();
        let mut sum = Term::bv_const(8, 0);
        for x in &xs {
            sum = sum.bvadd(x.clone().bvmul(x.clone()));
        }
        let hard = sum.eq(Term::bv_const(8, 0x5a));
        let a = group_paths("a", "t", &[path(hard, out(1))]).expect("grouping");
        let b = group_paths(
            "b",
            "t",
            &[path(xs[0].clone().ult(Term::bv_const(8, 200)), out(2))],
        )
        .expect("grouping");
        let capped = crosscheck(
            &a,
            &b,
            &CrosscheckConfig {
                solver_budget: SolverBudget::conflicts(1),
                jobs: 1,
            },
        );
        assert_eq!(capped.queries, 1);
        assert_eq!(capped.unknown, 1, "the capped query must come back Unknown");
        assert_eq!(capped.unverified.len(), 1, "and be listed, not dropped");
        assert!(
            capped.inconsistencies.is_empty(),
            "an undecided pair must never be reported as an inconsistency"
        );
        assert!(!capped.fully_verified());
        let uv = &capped.unverified[0];
        assert_eq!(uv.output_a, out(1));
        assert_eq!(uv.output_b, out(2));
        assert_eq!(uv.budget, SolverBudget::conflicts(1));
        // An unlimited retry decides the very same pair: the subspaces do
        // intersect, so it graduates from unverified to inconsistency.
        let full = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert!(full.fully_verified());
        assert_eq!(full.unknown, 0);
        assert_eq!(full.inconsistencies.len(), 1);
    }

    #[test]
    fn parallel_crosscheck_matches_sequential() {
        // A 3×4 group matrix with every output distinct: 12 queries, many
        // satisfiable, so witnesses exercise the deterministic-model path.
        let p = Term::var("cc4.p", 8);
        let a = group_paths(
            "a",
            "t",
            &[
                path(p.clone().ult(Term::bv_const(8, 50)), out(1)),
                path(
                    p.clone()
                        .uge(Term::bv_const(8, 50))
                        .and(p.clone().ult(Term::bv_const(8, 100))),
                    out(2),
                ),
                path(p.clone().uge(Term::bv_const(8, 100)), out(3)),
            ],
        )
        .expect("grouping");
        let b = group_paths(
            "b",
            "t",
            &[
                path(p.clone().ult(Term::bv_const(8, 30)), out(4)),
                path(
                    p.clone()
                        .uge(Term::bv_const(8, 30))
                        .and(p.clone().ult(Term::bv_const(8, 80))),
                    out(5),
                ),
                path(
                    p.clone()
                        .uge(Term::bv_const(8, 80))
                        .and(p.clone().ult(Term::bv_const(8, 200))),
                    out(6),
                ),
                path(p.clone().uge(Term::bv_const(8, 200)), out(7)),
            ],
        )
        .expect("grouping");
        let seq = crosscheck(&a, &b, &CrosscheckConfig::default());
        assert!(!seq.inconsistencies.is_empty());
        for jobs in [2, 4] {
            let par = crosscheck(
                &a,
                &b,
                &CrosscheckConfig {
                    jobs,
                    ..Default::default()
                },
            );
            assert_eq!(par.queries, seq.queries, "jobs={jobs}");
            assert_eq!(par.unknown, seq.unknown, "jobs={jobs}");
            assert_eq!(
                par.inconsistencies.len(),
                seq.inconsistencies.len(),
                "jobs={jobs}"
            );
            for (x, y) in seq.inconsistencies.iter().zip(&par.inconsistencies) {
                assert_eq!(x.output_a, y.output_a, "jobs={jobs}");
                assert_eq!(x.output_b, y.output_b, "jobs={jobs}");
                assert_eq!(x.witness, y.witness, "jobs={jobs}");
            }
        }
    }
}
