//! Eager crosscheck scheduling for the streaming pipeline.
//!
//! The phased flow leaves the solver idle while the explorer runs: no
//! intersection query is issued until both artifacts are on disk. The
//! streaming session instead probes a group pair as soon as *both* sides
//! have emitted at least one path for it, and re-checks refinements as
//! the groups grow.
//!
//! Soundness of partial verdicts rests on disjunction monotonicity: a
//! partial group condition is a disjunction over a *subset* of the final
//! disjuncts, so it implies the final condition. A satisfiable partial
//! probe therefore proves the final pair satisfiable — conclusive, and
//! sticky. An unsatisfiable or unknown partial probe proves nothing about
//! the final pair (later paths may add the intersecting subspace), so it
//! only parks the pair until the groups grow enough to warrant another
//! look.
//!
//! Probes never publish: the canonical crosscheck pass re-derives every
//! verdict from full-group queries in pair order, so artifacts stay
//! byte-identical to the phased flow at any `--jobs`. What the probes buy
//! is latency — solver work overlaps exploration, and the known-Sat set
//! feeds [`CheckHooks::solve_first`](crate::crosscheck::CheckHooks) so
//! the canonical pass decides real inconsistencies (the pairs eager
//! distillation is waiting on) first. Probes also share the session's
//! [`VerdictCache`], so a probe issued against an already-final pair of
//! groups *is* the canonical query and turns the later pass into a cache
//! hit.

use crate::group::GroupBuilder;
use soft_harness::ObservedOutput;
use soft_smt::{SatResult, Solver, SolverBudget, Term, VerdictCache};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Recover the guarded data even if a probing worker panicked while
/// holding the lock; the pair table is only mutated field-wise, so a
/// poisoned lock still guards usable state.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Cap on probe budgets: partial queries are advisory, so they never
/// deserve more conflicts than this even under an unlimited session
/// budget.
const PROBE_CONFLICTS: u64 = 256;

/// Per-pair probe state.
#[derive(Debug, Clone, Default)]
struct PairProbe {
    /// Path counts (a-side, b-side) at the last issued probe.
    probed: Option<(usize, usize)>,
    /// A probe for this pair is currently in flight.
    in_flight: bool,
    /// A partial probe came back Sat: conclusive and sticky.
    sat: bool,
}

/// A claimed probe: the snapshot a worker solves outside any lock.
#[derive(Debug, Clone)]
pub struct Probe {
    key: (ObservedOutput, ObservedOutput),
    cond_a: Term,
    cond_b: Term,
    counts: (usize, usize),
}

/// The eager crosscheck scheduler for one test: tracks which group pairs
/// have been probed at which sizes, claims probe work, and remembers
/// which pairs are already known satisfiable.
pub struct CheckScheduler {
    /// The probe solver, shared by every probing worker. Long-lived (the
    /// `tools/lint_fresh_solver.sh` contract: no throwaway solver per
    /// probe) and — when the *session* budget is unlimited — carrying a
    /// persistent incremental context, so successive probes of one test
    /// share bit-blasting and learned clauses. Probes still run under the
    /// capped probe budget; that is sound because a probe may only
    /// *publish* (via the shared [`VerdictCache`]) verdicts the canonical
    /// unlimited pass would re-derive identically. Under a finite session
    /// budget no incremental context is attached anywhere: a
    /// history-dependent probe outcome could then upgrade a canonical
    /// Unknown and break jobs-count determinism.
    solver: Mutex<Solver>,
    cache: Arc<VerdictCache>,
    pairs: Mutex<HashMap<(ObservedOutput, ObservedOutput), PairProbe>>,
}

impl CheckScheduler {
    /// Scheduler whose probes run under `session_budget` capped at
    /// [`PROBE_CONFLICTS`] conflicts (probes are advisory; the canonical
    /// pass spends the real budget). `incremental` opts the probe solver
    /// into a persistent incremental context — honored only when
    /// `session_budget` is unlimited, see [`CheckScheduler::solver`].
    pub fn new(session_budget: SolverBudget, incremental: bool) -> CheckScheduler {
        let cap = SolverBudget::conflicts(PROBE_CONFLICTS);
        let budget = if session_budget.covers(&cap) {
            cap
        } else {
            session_budget
        };
        let cache = Arc::new(VerdictCache::new());
        let solver = crate::crosscheck::worker_solver(
            Arc::clone(&cache),
            budget,
            incremental && session_budget.is_unlimited(),
        );
        CheckScheduler {
            solver: Mutex::new(solver),
            cache,
            pairs: Mutex::new(HashMap::new()),
        }
    }

    /// The verdict cache probes write into — hand it to
    /// [`CheckHooks::cache`](crate::crosscheck::CheckHooks) so the
    /// canonical pass reuses any probe that already ran the final query.
    pub fn cache(&self) -> Arc<VerdictCache> {
        Arc::clone(&self.cache)
    }

    /// Claim a probe for the cross product of a freshly grown bucket on
    /// one side against every bucket of the other side. `grown` is the
    /// arrival-order slot that just absorbed a path; `a_side` says which
    /// of the two builders grew. Returns the claimed probes; each must be
    /// handed to [`CheckScheduler::run`] (on any thread) to release its
    /// ticket.
    ///
    /// Claim policy per pair: skip equal outputs, skip known-Sat, skip
    /// in-flight, and re-probe only once either side has *doubled* since
    /// the last attempt — refinement re-checks stay O(log paths) per
    /// pair.
    pub fn claim(
        &self,
        a: &GroupBuilder,
        b: &GroupBuilder,
        grown: usize,
        a_side: bool,
    ) -> Vec<Probe> {
        let (grew, other) = if a_side { (a, b) } else { (b, a) };
        if grown >= grew.num_outputs() {
            return Vec::new();
        }
        let mut claimed = Vec::new();
        let mut pairs = recover(&self.pairs);
        for slot in 0..other.num_outputs() {
            let (out_a, sa, out_b, sb) = if a_side {
                (grew.output(grown), grown, other.output(slot), slot)
            } else {
                (other.output(slot), slot, grew.output(grown), grown)
            };
            if out_a == out_b {
                continue;
            }
            let na = a.partial_count(sa);
            let nb = b.partial_count(sb);
            let key = (out_a.clone(), out_b.clone());
            let st = pairs.entry(key.clone()).or_default();
            let due = !st.sat
                && !st.in_flight
                && match st.probed {
                    None => true,
                    Some((pa, pb)) => na >= pa.saturating_mul(2) || nb >= pb.saturating_mul(2),
                };
            if !due {
                continue;
            }
            st.in_flight = true;
            claimed.push(Probe {
                key,
                cond_a: a.partial_condition(sa),
                cond_b: b.partial_condition(sb),
                counts: (na, nb),
            });
        }
        claimed
    }

    /// Solve one claimed probe (outside the pair-table lock) and record
    /// the outcome. Returns the verdict for observability; conclusions
    /// are tracked internally.
    pub fn run(&self, probe: Probe) -> SatResult {
        let differ = crate::crosscheck::outputs_differ(&probe.key.0, &probe.key.1);
        let verdict = if differ.as_bool_const() == Some(false) {
            // Structurally different but semantically identical outputs:
            // the canonical pass never queries this pair either.
            SatResult::Unsat
        } else {
            recover(&self.solver).check(&[probe.cond_a.clone(), probe.cond_b.clone(), differ])
        };
        let mut pairs = recover(&self.pairs);
        let st = pairs.entry(probe.key).or_default();
        st.in_flight = false;
        st.probed = Some(probe.counts);
        if verdict.is_sat() {
            st.sat = true;
        }
        verdict
    }

    /// Pairs a partial probe already proved satisfiable, translated to
    /// canonical group indices of the *finalized* group sets — the
    /// [`solve_first`](crate::crosscheck::CheckHooks::solve_first) hint
    /// for the canonical pass.
    pub fn known_sat(
        &self,
        a: &crate::group::GroupedResults,
        b: &crate::group::GroupedResults,
    ) -> Vec<(usize, usize)> {
        let index = |g: &crate::group::GroupedResults, out: &ObservedOutput| {
            g.groups.iter().position(|grp| grp.output == *out)
        };
        let pairs = recover(&self.pairs);
        let mut hints: Vec<(usize, usize)> = pairs
            .iter()
            .filter(|(_, st)| st.sat)
            .filter_map(|((oa, ob), _)| Some((index(a, oa)?, index(b, ob)?)))
            .collect();
        hints.sort_unstable();
        hints
    }

    /// Number of pairs with at least one completed probe.
    pub fn probed_pairs(&self) -> usize {
        recover(&self.pairs)
            .values()
            .filter(|st| st.probed.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::TreeShape;
    use soft_harness::PathRecord;
    use soft_protocol::TraceEvent;

    fn out(tag: u16) -> ObservedOutput {
        ObservedOutput {
            events: vec![TraceEvent::Error {
                xid: Term::bv_const(32, 0),
                etype: Term::bv_const(16, 1),
                code: Term::bv_const(16, tag as u64),
            }],
            crashed: false,
        }
    }

    fn rec(var: &str, val: u64, tag: u16) -> PathRecord {
        let cond = Term::var(var, 8).eq(Term::bv_const(8, val));
        PathRecord {
            constraint_size: soft_smt::metrics::op_count(&cond),
            condition: cond,
            output: out(tag),
        }
    }

    #[test]
    fn partial_sat_probe_is_sticky_and_feeds_hints() {
        let mut a = GroupBuilder::new("a", "t", TreeShape::Balanced);
        let mut b = GroupBuilder::new("b", "t", TreeShape::Balanced);
        let sched = CheckScheduler::new(SolverBudget::unlimited(), true);
        // One path per side, same input point, different outputs: the
        // partial intersection is satisfiable immediately.
        let sa = a.absorb(vec![false], rec("st.x", 7, 1));
        assert!(sched.claim(&a, &b, sa, true).is_empty(), "b side empty");
        let sb = b.absorb(vec![false], rec("st.x", 7, 2));
        let probes = sched.claim(&a, &b, sb, false);
        assert_eq!(probes.len(), 1);
        assert!(sched
            .run(probes.into_iter().next().expect("probe"))
            .is_sat());
        // Sticky: growing the groups claims no new probe for the pair.
        let sa2 = a.absorb(vec![true], rec("st.x", 8, 1));
        assert_eq!(sa, sa2);
        assert!(sched.claim(&a, &b, sa2, true).is_empty());
        // The hint survives finalization, in canonical indices.
        let ga = a.finalize().expect("finalize");
        let gb = b.finalize().expect("finalize");
        assert_eq!(sched.known_sat(&ga, &gb), vec![(0, 0)]);
        assert_eq!(sched.probed_pairs(), 1);
    }

    #[test]
    fn unsat_probe_reprobes_only_after_doubling() {
        let mut a = GroupBuilder::new("a", "t", TreeShape::Balanced);
        let mut b = GroupBuilder::new("b", "t", TreeShape::Balanced);
        let sched = CheckScheduler::new(SolverBudget::unlimited(), true);
        // Disjoint single-path groups: first probe is Unsat.
        a.absorb(vec![false], rec("s2.x", 1, 1));
        let sb = b.absorb(vec![false], rec("s2.x", 9, 2));
        let probes = sched.claim(&a, &b, sb, false);
        assert_eq!(probes.len(), 1);
        assert!(sched
            .run(probes.into_iter().next().expect("probe"))
            .is_unsat());
        // One more a-side path (1 → 2 = doubled): due again, and this one
        // intersects b's group, flipping the pair to known-Sat.
        let sa = a.absorb(vec![true], rec("s2.x", 9, 1));
        let probes = sched.claim(&a, &b, sa, true);
        assert_eq!(probes.len(), 1, "doubled side must re-probe");
        assert!(sched
            .run(probes.into_iter().next().expect("probe"))
            .is_sat());
        let ga = a.finalize().expect("finalize");
        let gb = b.finalize().expect("finalize");
        assert_eq!(sched.known_sat(&ga, &gb), vec![(0, 0)]);
    }

    #[test]
    fn equal_outputs_never_probed() {
        let mut a = GroupBuilder::new("a", "t", TreeShape::Balanced);
        let mut b = GroupBuilder::new("b", "t", TreeShape::Balanced);
        let sched = CheckScheduler::new(SolverBudget::unlimited(), true);
        a.absorb(vec![false], rec("s3.x", 1, 1));
        let sb = b.absorb(vec![false], rec("s3.x", 1, 1));
        assert!(sched.claim(&a, &b, sb, false).is_empty());
        assert_eq!(sched.probed_pairs(), 0);
    }
}
