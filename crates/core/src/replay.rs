//! Concrete replay of reproduction test cases.
//!
//! SOFT's output for each inconsistency is "a test case that can be used
//! to understand and trace the root cause of the inconsistency and verify
//! if a behavior is erroneous" (§4.2). This module closes that loop inside
//! the tool: it concretizes the test's input messages under the witness,
//! runs both agents *concretely* (a single-path execution), and checks
//! that (a) the two observed outputs really differ and (b) each matches
//! what symbolic execution predicted for that input subspace.
//!
//! A successful replay is a machine-checked end-to-end validation of the
//! whole pipeline: engine, solver, grouping and intersection.

use crate::crosscheck::Inconsistency;
use soft_dataplane::Packet;
use soft_harness::{Input, ObservedOutput, TestCase};
use soft_protocol::{normalize_trace, AgentRef, TraceEvent};
use soft_smt::Assignment;
use soft_sym::{explore, ExplorerConfig, PathOutcome, Stop, SymBuf};
use std::panic::AssertUnwindSafe;

/// Why a concrete run could not produce a trustworthy observed output.
///
/// Surfaced as data (not a panic) so callers like the witness distillation
/// pipeline can report the affected witness as *unconfirmed* instead of
/// aborting a whole batch — the same never-lie discipline as `Unknown`
/// solver verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The inputs were not fully concrete: the run forked into more than
    /// one path, so there is no single observed behaviour to report.
    NotConcrete {
        /// Number of paths the run split into.
        paths: usize,
    },
    /// The engine abandoned the (single) path; a partial trace is not an
    /// observation, and fabricating one would be lying.
    Aborted(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::NotConcrete { paths } => {
                write!(f, "inputs are not fully concrete ({paths} paths explored)")
            }
            ReplayError::Aborted(reason) => write!(f, "engine aborted the replay: {reason}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The result of concretely replaying one inconsistency.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// What agent A concretely produced on the witness input.
    pub observed_a: ObservedOutput,
    /// What agent B concretely produced on the witness input.
    pub observed_b: ObservedOutput,
    /// The symbolic predictions, concretized under the witness.
    pub predicted_a: ObservedOutput,
    /// Concretized prediction for agent B.
    pub predicted_b: ObservedOutput,
}

impl ReplayOutcome {
    /// The replayed agents really behave differently (no false positive).
    pub fn diverges(&self) -> bool {
        self.observed_a != self.observed_b
    }

    /// Each agent's concrete behaviour matches what its symbolic run
    /// predicted for this input subspace.
    pub fn matches_prediction(&self) -> bool {
        self.observed_a == self.predicted_a && self.observed_b == self.predicted_b
    }
}

/// Concretize the test inputs under a witness assignment: every symbolic
/// message byte and probe-packet byte is evaluated under the model
/// (unassigned variables read 0, the solver's don't-care convention).
///
/// Already-concrete probes are cloned untouched; a symbolic probe (the
/// Table 5 ablation shape) is concretized and its framing re-derived from
/// the now-concrete structure bytes.
pub fn concretize_inputs(test: &TestCase, witness: &Assignment) -> Vec<Input> {
    test.inputs
        .iter()
        .map(|i| match i {
            Input::Message(m) => Input::Message(SymBuf::concrete(&m.concretize(witness))),
            Input::Probe { in_port, packet } if packet.buf.as_concrete().is_none() => {
                let raw = SymBuf::concrete(&packet.buf.concretize(witness));
                Input::Probe {
                    in_port: *in_port,
                    packet: Packet::parse(&raw)
                        .expect("a fully concrete buffer always has parseable framing"),
                }
            }
            other => other.clone(),
        })
        .collect()
}

fn concretize_output(o: &ObservedOutput, witness: &Assignment) -> ObservedOutput {
    ObservedOutput {
        events: o.events.iter().map(|e| e.concretize(witness)).collect(),
        crashed: o.crashed,
    }
}

/// Run one agent concretely on pre-concretized inputs, capturing its
/// normalized output trace.
///
/// The replayed agent gets the same failure containment as phase 1: a
/// Rust panic while processing the inputs is an *observable crash* of the
/// agent (externally, the TCP connection dies), recorded in the output —
/// never an abort of the replay harness. Conditions the engine cannot
/// vouch for — inputs that fork, an engine-aborted path — come back as
/// [`ReplayError`] instead of a fabricated observation.
pub fn run_concrete(
    kind: impl Into<AgentRef>,
    inputs: &[Input],
) -> Result<ObservedOutput, ReplayError> {
    run_concrete_inner(kind.into(), inputs, true)
}

/// As [`run_concrete`], but the trace keeps its raw transaction ids and
/// buffer identifiers instead of being normalized. The over-the-wire
/// conformance harness needs the real xids to frame replies the way a
/// live switch would; normalization would erase exactly the field the
/// peer uses to correlate them.
pub fn run_concrete_raw(
    kind: impl Into<AgentRef>,
    inputs: &[Input],
) -> Result<ObservedOutput, ReplayError> {
    run_concrete_inner(kind.into(), inputs, false)
}

fn run_concrete_inner(
    kind: AgentRef,
    inputs: &[Input],
    normalize: bool,
) -> Result<ObservedOutput, ReplayError> {
    let ex = explore(&ExplorerConfig::default(), |ctx| {
        let drive = AssertUnwindSafe(|| {
            let mut agent = kind.make();
            agent.on_connect(ctx)?;
            for input in inputs {
                match input {
                    Input::Message(m) => agent.handle_message(ctx, m)?,
                    Input::Probe { in_port, packet } => {
                        let before = ctx.trace_len();
                        agent.handle_packet(ctx, *in_port, packet)?;
                        if ctx.trace_len() == before {
                            ctx.emit(TraceEvent::ProbeDropped);
                        }
                    }
                    Input::AdvanceTime { now } => agent.handle_time(ctx, *now)?,
                }
            }
            Ok(())
        });
        std::panic::catch_unwind(drive)
            .unwrap_or_else(|_| Err(Stop::crash("agent panicked during concrete replay")))
    });
    if ex.stats.paths != 1 {
        return Err(ReplayError::NotConcrete {
            paths: ex.stats.paths,
        });
    }
    let p = &ex.paths[0];
    // An engine-aborted replay has no trustworthy output; surfacing a
    // partial trace as "what the agent did" would be fabrication.
    if let PathOutcome::Aborted(reason) = &p.outcome {
        return Err(ReplayError::Aborted(reason.clone()));
    }
    Ok(ObservedOutput {
        events: if normalize {
            normalize_trace(&p.trace)
        } else {
            p.trace.clone()
        },
        crashed: matches!(p.outcome, PathOutcome::Crashed(_)),
    })
}

/// Replay an inconsistency concretely against the two agents it names.
///
/// A witness only ever comes from a `Sat` verdict: budget-exhausted
/// (`Unknown`) pairs are reported as
/// [`UnverifiedPair`](crate::crosscheck::UnverifiedPair)s, which carry no
/// witness and therefore cannot reach this function — replay never
/// fabricates a reproduction from an undecided query.
pub fn replay(
    test: &TestCase,
    inc: &Inconsistency,
    a: impl Into<AgentRef>,
    b: impl Into<AgentRef>,
) -> ReplayOutcome {
    assert_eq!(inc.test, test.id, "replaying against the wrong test");
    let inputs = concretize_inputs(test, &inc.witness);
    let must_run = |kind: AgentRef| {
        run_concrete(kind, &inputs)
            .unwrap_or_else(|e| panic!("concretized reproduction failed to replay: {e}"))
    };
    ReplayOutcome {
        observed_a: must_run(a.into()),
        observed_b: must_run(b.into()),
        predicted_a: concretize_output(&inc.output_a, &inc.witness),
        predicted_b: concretize_output(&inc.output_b, &inc.witness),
    }
}
