//! The SOFT pipeline facade.
//!
//! Ties together the two phases: (1) per-vendor symbolic execution of an
//! agent over a test input (via `soft-harness`), and (2) grouping +
//! crosschecking of the intermediate results. The phases communicate only
//! through [`soft_harness::TestRunFile`] artifacts, so they can run on
//! different machines, at different times, by different parties — the
//! deployment model of §2.4.

use crate::crosscheck::{crosscheck, CrosscheckConfig, CrosscheckResult};
use crate::group::{group_paths, GroupError, GroupedResults};
use soft_harness::{run_test, TestCase, TestRun, TestRunFile};
use soft_protocol::AgentRef;
use soft_sym::ExplorerConfig;

/// SOFT configuration.
#[derive(Debug, Clone, Default)]
pub struct Soft {
    /// Symbolic exploration configuration (phase 1).
    pub explorer: ExplorerConfig,
    /// Inconsistency-finder configuration (phase 2).
    pub checker: CrosscheckConfig,
}

/// The outcome of crosschecking two agents on one test, with all the
/// intermediate artifacts kept for inspection.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// Phase-1 run of agent A.
    pub run_a: TestRun,
    /// Phase-1 run of agent B.
    pub run_b: TestRun,
    /// Grouped results of agent A.
    pub grouped_a: GroupedResults,
    /// Grouped results of agent B.
    pub grouped_b: GroupedResults,
    /// The crosscheck result.
    pub result: CrosscheckResult,
}

impl Soft {
    /// Default configuration (exhaustive exploration, unlimited solver).
    pub fn new() -> Soft {
        Soft::default()
    }

    /// Set both phases' parallelism knobs at once (the CLI's `--jobs`).
    /// Results are deterministic for any value; only wall-clock changes.
    pub fn with_jobs(mut self, jobs: usize) -> Soft {
        self.explorer.workers = jobs.max(1);
        self.checker.jobs = jobs.max(1);
        self
    }

    /// Phase 1: symbolically execute one agent on one test, producing the
    /// per-path conditions and outputs.
    pub fn phase1(&self, agent: impl Into<AgentRef>, test: &TestCase) -> TestRun {
        run_test(agent, test, &self.explorer)
    }

    /// Phase 1, shipped: the serializable artifact a vendor exports.
    pub fn phase1_artifact(&self, agent: impl Into<AgentRef>, test: &TestCase) -> TestRunFile {
        TestRunFile::from_run(&self.phase1(agent, test))
    }

    /// Group a phase-1 run by output result.
    pub fn group(&self, run: &TestRun) -> Result<GroupedResults, GroupError> {
        group_paths(&run.agent, &run.test, &run.paths)
    }

    /// Group a shipped phase-1 artifact (no agent access needed).
    pub fn group_artifact(&self, file: &TestRunFile) -> Result<GroupedResults, String> {
        let paths = file.to_paths()?;
        group_paths(&file.agent, &file.test, &paths).map_err(|e| e.to_string())
    }

    /// Phase 2: find inconsistencies between two grouped result sets.
    pub fn phase2(&self, a: &GroupedResults, b: &GroupedResults) -> CrosscheckResult {
        crosscheck(a, b, &self.checker)
    }

    /// Run the whole pipeline for one agent pair on one test.
    pub fn run_pair(
        &self,
        a: impl Into<AgentRef>,
        b: impl Into<AgentRef>,
        test: &TestCase,
    ) -> Result<PairReport, GroupError> {
        let run_a = self.phase1(a, test);
        let run_b = self.phase1(b, test);
        let grouped_a = self.group(&run_a)?;
        let grouped_b = self.group(&run_b)?;
        let result = self.phase2(&grouped_a, &grouped_b);
        Ok(PairReport {
            run_a,
            run_b,
            grouped_a,
            grouped_b,
            result,
        })
    }
}
