//! Regression testing across versions of *one* implementation.
//!
//! §2.4: "SOFT can automate performing regression testing. In addition, it
//! can be used to compare against a well-known set of path conditions that
//! are bootstrapped from unit tests." The mechanics are the crosscheck —
//! but the framing differs: the baseline is a previous version of the same
//! agent (or a blessed artifact checked into the repository), and beyond
//! pairwise intersections the interesting questions are *which output
//! classes appeared, which disappeared, and where behaviour shifted*.

use crate::crosscheck::{crosscheck, CrosscheckConfig, Inconsistency};
use crate::group::GroupedResults;
use soft_harness::ObservedOutput;
use soft_smt::Term;
use std::collections::{HashMap, HashSet};

/// The outcome of comparing a current run against a baseline.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// Output classes present in the current version but not the baseline
    /// (new behaviours — possibly new features, possibly new bugs).
    pub new_outputs: Vec<ObservedOutput>,
    /// Output classes the baseline had but the current version lost
    /// (removed behaviours).
    pub removed_outputs: Vec<ObservedOutput>,
    /// Input subspaces where the same input now produces a different
    /// output than the baseline (behaviour shifts), with witnesses.
    pub shifts: Vec<Inconsistency>,
    /// Solver queries spent on the shift analysis.
    pub queries: usize,
}

impl RegressionReport {
    /// True when the current version is behaviourally identical to the
    /// baseline on the tested input space.
    pub fn is_clean(&self) -> bool {
        self.new_outputs.is_empty() && self.removed_outputs.is_empty() && self.shifts.is_empty()
    }
}

/// The solver-free core of a regression diff: which of `current`'s
/// groups are *provably unchanged* from `baseline`?
///
/// A group is unchanged when `baseline` has a group with the same output
/// class and a structurally identical path condition. A crosscheck
/// verdict is a pure function of the two groups' conditions, their
/// outputs, and the budget, so any stored verdict whose two endpoint
/// groups are unchanged can be reused verbatim — no solving. Everything
/// else is impacted and must re-solve. This is the invalidation rule
/// behind `soft serve`'s diff-based partial re-audit.
#[derive(Debug, Clone, Default)]
pub struct ConditionDiff {
    /// Per current group: `Some(bi)` when it exactly matches baseline
    /// group `bi`, `None` when it is new or its condition changed.
    pub unchanged: Vec<Option<usize>>,
    /// Count of current groups with no exact baseline counterpart.
    pub impacted: usize,
}

impl ConditionDiff {
    /// Baseline-index → current-index map over unchanged groups (the
    /// direction stored verdicts are translated in).
    pub fn baseline_to_current(&self) -> HashMap<usize, usize> {
        self.unchanged
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|bi| (bi, i)))
            .collect()
    }
}

/// Diff `current` against `baseline` without any solver work (see
/// [`ConditionDiff`]). Both must be grouped results for the same test.
pub fn condition_diff(baseline: &GroupedResults, current: &GroupedResults) -> ConditionDiff {
    assert_eq!(
        baseline.test, current.test,
        "regression comparison across different tests"
    );
    // Outputs are unique per grouping (groups are keyed by output), so
    // this map is injective.
    let by_output: HashMap<&ObservedOutput, usize> = baseline
        .groups
        .iter()
        .enumerate()
        .map(|(i, g)| (&g.output, i))
        .collect();
    let unchanged: Vec<Option<usize>> = current
        .groups
        .iter()
        .map(|g| {
            by_output.get(&g.output).copied().filter(|&bi| {
                Term::structural_cmp(&baseline.groups[bi].condition, &g.condition)
                    == std::cmp::Ordering::Equal
            })
        })
        .collect();
    let impacted = unchanged.iter().filter(|u| u.is_none()).count();
    ConditionDiff {
        unchanged,
        impacted,
    }
}

/// Compare `current` against `baseline` (both must be grouped results for
/// the same test; typically the same agent id across versions).
pub fn regression_check(
    baseline: &GroupedResults,
    current: &GroupedResults,
    cfg: &CrosscheckConfig,
) -> RegressionReport {
    assert_eq!(
        baseline.test, current.test,
        "regression comparison across different tests"
    );
    let base_set: HashSet<&ObservedOutput> = baseline.groups.iter().map(|g| &g.output).collect();
    let cur_set: HashSet<&ObservedOutput> = current.groups.iter().map(|g| &g.output).collect();
    let new_outputs = current
        .groups
        .iter()
        .filter(|g| !base_set.contains(&g.output))
        .map(|g| g.output.clone())
        .collect();
    let removed_outputs = baseline
        .groups
        .iter()
        .filter(|g| !cur_set.contains(&g.output))
        .map(|g| g.output.clone())
        .collect();
    // Behaviour shifts: same machinery as interoperability crosschecking.
    let result = crosscheck(baseline, current, cfg);
    RegressionReport {
        new_outputs,
        removed_outputs,
        shifts: result.inconsistencies,
        queries: result.queries,
    }
}
