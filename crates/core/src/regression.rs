//! Regression testing across versions of *one* implementation.
//!
//! §2.4: "SOFT can automate performing regression testing. In addition, it
//! can be used to compare against a well-known set of path conditions that
//! are bootstrapped from unit tests." The mechanics are the crosscheck —
//! but the framing differs: the baseline is a previous version of the same
//! agent (or a blessed artifact checked into the repository), and beyond
//! pairwise intersections the interesting questions are *which output
//! classes appeared, which disappeared, and where behaviour shifted*.

use crate::crosscheck::{crosscheck, CrosscheckConfig, Inconsistency};
use crate::group::GroupedResults;
use soft_harness::ObservedOutput;
use std::collections::HashSet;

/// The outcome of comparing a current run against a baseline.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// Output classes present in the current version but not the baseline
    /// (new behaviours — possibly new features, possibly new bugs).
    pub new_outputs: Vec<ObservedOutput>,
    /// Output classes the baseline had but the current version lost
    /// (removed behaviours).
    pub removed_outputs: Vec<ObservedOutput>,
    /// Input subspaces where the same input now produces a different
    /// output than the baseline (behaviour shifts), with witnesses.
    pub shifts: Vec<Inconsistency>,
    /// Solver queries spent on the shift analysis.
    pub queries: usize,
}

impl RegressionReport {
    /// True when the current version is behaviourally identical to the
    /// baseline on the tested input space.
    pub fn is_clean(&self) -> bool {
        self.new_outputs.is_empty() && self.removed_outputs.is_empty() && self.shifts.is_empty()
    }
}

/// Compare `current` against `baseline` (both must be grouped results for
/// the same test; typically the same agent id across versions).
pub fn regression_check(
    baseline: &GroupedResults,
    current: &GroupedResults,
    cfg: &CrosscheckConfig,
) -> RegressionReport {
    assert_eq!(
        baseline.test, current.test,
        "regression comparison across different tests"
    );
    let base_set: HashSet<&ObservedOutput> = baseline.groups.iter().map(|g| &g.output).collect();
    let cur_set: HashSet<&ObservedOutput> = current.groups.iter().map(|g| &g.output).collect();
    let new_outputs = current
        .groups
        .iter()
        .filter(|g| !base_set.contains(&g.output))
        .map(|g| g.output.clone())
        .collect();
    let removed_outputs = baseline
        .groups
        .iter()
        .filter(|g| !cur_set.contains(&g.output))
        .map(|g| g.output.clone())
        .collect();
    // Behaviour shifts: same machinery as interoperability crosschecking.
    let result = crosscheck(baseline, current, cfg);
    RegressionReport {
        new_outputs,
        removed_outputs,
        shifts: result.inconsistencies,
        queries: result.queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_paths;
    use crate::Soft;
    use soft_agents::AgentKind;
    use soft_harness::suite;

    #[test]
    fn same_version_is_clean() {
        let soft = Soft::new();
        let test = suite::queue_config();
        let run = soft.phase1(AgentKind::Reference, &test);
        let g1 = group_paths("v1", &run.test, &run.paths).expect("grouping");
        let g2 = group_paths("v2", &run.test, &run.paths).expect("grouping");
        let report = regression_check(&g1, &g2, &CrosscheckConfig::default());
        assert!(report.is_clean(), "identical versions must be clean");
    }

    #[test]
    fn modified_switch_regresses_against_reference() {
        // The Modified Switch *is* a "new version" of the Reference Switch
        // with behaviour changes; regression mode must flag them.
        let soft = Soft::new();
        let test = suite::packet_out();
        let base = soft
            .group(&soft.phase1(AgentKind::Reference, &test))
            .expect("grouping");
        let cur = soft
            .group(&soft.phase1(AgentKind::Modified, &test))
            .expect("grouping");
        let report = regression_check(&base, &cur, &CrosscheckConfig::default());
        assert!(!report.is_clean());
        assert!(
            !report.shifts.is_empty(),
            "behaviour shifts must carry witnesses"
        );
        // The flood-ingress mutation changes an output class.
        assert!(
            !report.new_outputs.is_empty() || !report.removed_outputs.is_empty(),
            "the mutations change the output-class inventory"
        );
    }

    #[test]
    fn consistent_test_stays_clean_across_agents() {
        // Set Config behaves identically on Ref and OVS (Table 3: 0
        // inconsistencies): as a pseudo-regression it must be clean on
        // shifts, though output inventories can legitimately coincide.
        let soft = Soft::new();
        let test = suite::set_config();
        let base = soft
            .group(&soft.phase1(AgentKind::Reference, &test))
            .expect("grouping");
        let cur = soft
            .group(&soft.phase1(AgentKind::OpenVSwitch, &test))
            .expect("grouping");
        let report = regression_check(&base, &cur, &CrosscheckConfig::default());
        assert!(report.shifts.is_empty());
        assert!(report.new_outputs.is_empty() && report.removed_outputs.is_empty());
    }

    #[test]
    #[should_panic(expected = "different tests")]
    fn mismatched_tests_rejected() {
        let soft = Soft::new();
        let a = soft
            .group(&soft.phase1(AgentKind::Reference, &suite::queue_config()))
            .expect("grouping");
        let b = soft
            .group(&soft.phase1(AgentKind::Reference, &suite::short_symb()))
            .expect("grouping");
        regression_check(&a, &b, &CrosscheckConfig::default());
    }
}
