//! Randomized-but-deterministic tests for the data-plane substrate
//! (seeded generators, fixed corpus per run).

use soft_dataplane::{MatchFields, Packet, ProbeSpec};
use soft_openflow::consts::wildcards as wc;
use soft_smt::Term;

/// splitmix64: deterministic stream from any seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn mac(&mut self) -> [u8; 6] {
        let v = self.next();
        [
            v as u8,
            (v >> 8) as u8,
            (v >> 16) as u8,
            (v >> 24) as u8,
            (v >> 32) as u8,
            (v >> 40) as u8,
        ]
    }
}

fn arb_spec(rng: &mut Rng) -> ProbeSpec {
    ProbeSpec {
        dl_src: rng.mac(),
        dl_dst: rng.mac(),
        vlan: (rng.below(2) == 0).then(|| (rng.below(8) as u8, rng.below(4096) as u16)),
        nw_tos: rng.next() as u8,
        nw_src: rng.next() as u32,
        nw_dst: rng.next() as u32,
        tp_src: rng.next() as u16,
        tp_dst: rng.next() as u16,
        payload_len: rng.below(32) as usize,
    }
}

fn arb_port(rng: &mut Rng) -> u16 {
    1 + rng.below(99) as u16
}

/// Exact match fields extracted from the packet itself.
fn exact_match_of(p: &Packet, in_port: u16) -> MatchFields {
    MatchFields {
        wildcards: Term::bv_const(32, 0),
        in_port: Term::bv_const(16, in_port as u64),
        dl_src: p.dl_src(),
        dl_dst: p.dl_dst(),
        dl_vlan: p.dl_vlan(),
        dl_vlan_pcp: p.dl_vlan_pcp(),
        dl_type: p.dl_type(),
        nw_tos: p.nw_tos(),
        nw_proto: p.nw_proto(),
        nw_src: p.nw_src(),
        nw_dst: p.nw_dst(),
        tp_src: p.tp_src(),
        tp_dst: p.tp_dst(),
    }
}

const CASES: u64 = 64;

/// A full wildcard matches every packet.
#[test]
fn wildcard_all_matches_any_packet() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd4fa_0000 + case);
        let spec = arb_spec(&mut rng);
        let port = arb_port(&mut rng);
        let p = Packet::from_spec(&spec);
        let m = MatchFields::wildcard_all();
        for (label, cond) in m.conditions(&Term::bv_const(16, port as u64), &p) {
            assert_eq!(cond.as_bool_const(), Some(true), "{label} failed");
        }
    }
}

/// The exact match extracted from a packet matches it.
#[test]
fn exact_match_matches_self() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd4fa_1000 + case);
        let spec = arb_spec(&mut rng);
        let port = arb_port(&mut rng);
        let p = Packet::from_spec(&spec);
        let m = exact_match_of(&p, port);
        for (label, cond) in m.conditions(&Term::bv_const(16, port as u64), &p) {
            assert_eq!(cond.as_bool_const(), Some(true), "{label} failed");
        }
    }
}

/// Changing the ingress port breaks exactly the in_port condition.
#[test]
fn wrong_in_port_fails_only_in_port() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd4fa_2000 + case);
        let spec = arb_spec(&mut rng);
        let port = arb_port(&mut rng);
        let p = Packet::from_spec(&spec);
        let m = exact_match_of(&p, port);
        let conds = m.conditions(&Term::bv_const(16, port as u64 + 1), &p);
        assert_eq!(conds[0].1.as_bool_const(), Some(false));
        for (label, cond) in &conds[1..] {
            assert_eq!(cond.as_bool_const(), Some(true), "{label} failed");
        }
    }
}

/// Packet parse of serialized bytes reconstructs the framing.
#[test]
fn parse_reconstructs_framing() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd4fa_3000 + case);
        let spec = arb_spec(&mut rng);
        let p = Packet::from_spec(&spec);
        let bytes = p.buf.as_concrete().expect("probe concrete");
        let q = Packet::parse(&soft_sym::SymBuf::concrete(&bytes)).expect("parses");
        assert_eq!(q.vlan, p.vlan);
        assert_eq!(q.dl_vlan(), p.dl_vlan());
        assert_eq!(q.nw_src(), p.nw_src());
        assert_eq!(q.tp_dst(), p.tp_dst());
    }
}

/// Field rewrites read back what was written.
#[test]
fn rewrites_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd4fa_4000 + case);
        let spec = arb_spec(&mut rng);
        let vid = rng.below(4096);
        let tos = rng.next() as u8;
        let ip = rng.next() as u32;
        let tp = rng.next() as u16;
        let mut p = Packet::from_spec(&spec);
        p.set_vlan_vid(&Term::bv_const(16, vid), true);
        assert_eq!(p.dl_vlan().as_bv_const(), Some(vid & 0xfff));
        if p.has_ip() {
            p.set_nw_src(&Term::bv_const(32, ip as u64));
            assert_eq!(p.nw_src().as_bv_const(), Some(ip as u64));
            p.set_nw_tos(&Term::bv_const(8, tos as u64), true);
            assert_eq!(p.nw_tos().as_bv_const(), Some((tos & 0xfc) as u64));
        }
        if p.has_l4() {
            p.set_tp_dst(&Term::bv_const(16, tp as u64));
            assert_eq!(p.tp_dst().as_bv_const(), Some(tp as u64));
        }
    }
}

/// Inserting then stripping a VLAN tag restores the original frame.
#[test]
fn vlan_insert_strip_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd4fa_5000 + case);
        let spec = ProbeSpec {
            vlan: None,
            ..arb_spec(&mut rng)
        };
        let vid = rng.below(4096);
        let orig = Packet::from_spec(&spec);
        let mut p = orig.clone();
        p.set_vlan_vid(&Term::bv_const(16, vid), true);
        assert!(p.vlan);
        p.strip_vlan();
        assert_eq!(p, orig);
    }
}

/// CIDR wildcard semantics agree with a direct prefix computation.
#[test]
fn cidr_matches_prefix_semantics() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd4fa_6000 + case);
        let entry_ip = rng.next() as u32;
        let pkt_ip = rng.next() as u32;
        let n = rng.below(64) as u32;
        let spec = ProbeSpec {
            nw_src: pkt_ip,
            ..Default::default()
        };
        let p = Packet::from_spec(&spec);
        let mut m = MatchFields::wildcard_all();
        m.wildcards = Term::bv_const(32, ((n & 0x3f) << wc::NW_SRC_SHIFT) as u64);
        m.nw_src = Term::bv_const(32, entry_ip as u64);
        let cond = m
            .conditions(&Term::bv_const(16, 1), &p)
            .into_iter()
            .find(|(l, _)| *l == "match.nw_src")
            .unwrap()
            .1;
        let expected = if n >= 32 {
            true
        } else {
            (entry_ip >> n) == (pkt_ip >> n)
        };
        assert_eq!(cond.as_bool_const(), Some(expected));
    }
}

/// Truncation never exceeds the packet length and preserves prefixes.
#[test]
fn truncation_is_prefix() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd4fa_7000 + case);
        let spec = arb_spec(&mut rng);
        let n = rng.below(200) as usize;
        let p = Packet::from_spec(&spec);
        let t = p.truncated(n);
        assert_eq!(t.len(), n.min(p.len()));
        let full = p.buf.as_concrete().unwrap();
        let tr = t.as_concrete().unwrap();
        assert_eq!(&full[..tr.len()], &tr[..]);
    }
}
