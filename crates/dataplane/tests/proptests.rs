//! Property-based tests for the data-plane substrate.

use proptest::prelude::*;
use soft_dataplane::{MatchFields, Packet, ProbeSpec};
use soft_openflow::consts::wildcards as wc;
use soft_smt::Term;

fn arb_spec() -> impl Strategy<Value = ProbeSpec> {
    (
        any::<[u8; 6]>(),
        any::<[u8; 6]>(),
        proptest::option::of((0u8..8, 0u16..4096)),
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        0usize..32,
    )
        .prop_map(
            |(dl_src, dl_dst, vlan, nw_tos, nw_src, nw_dst, tp_src, tp_dst, payload_len)| {
                ProbeSpec {
                    dl_src,
                    dl_dst,
                    vlan,
                    nw_tos,
                    nw_src,
                    nw_dst,
                    tp_src,
                    tp_dst,
                    payload_len,
                }
            },
        )
}

/// Exact match fields extracted from the packet itself.
fn exact_match_of(p: &Packet, in_port: u16) -> MatchFields {
    MatchFields {
        wildcards: Term::bv_const(32, 0),
        in_port: Term::bv_const(16, in_port as u64),
        dl_src: p.dl_src(),
        dl_dst: p.dl_dst(),
        dl_vlan: p.dl_vlan(),
        dl_vlan_pcp: p.dl_vlan_pcp(),
        dl_type: p.dl_type(),
        nw_tos: p.nw_tos(),
        nw_proto: p.nw_proto(),
        nw_src: p.nw_src(),
        nw_dst: p.nw_dst(),
        tp_src: p.tp_src(),
        tp_dst: p.tp_dst(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A full wildcard matches every packet.
    #[test]
    fn wildcard_all_matches_any_packet(spec in arb_spec(), port in 1u16..100) {
        let p = Packet::from_spec(&spec);
        let m = MatchFields::wildcard_all();
        for (label, cond) in m.conditions(&Term::bv_const(16, port as u64), &p) {
            prop_assert_eq!(cond.as_bool_const(), Some(true), "{} failed", label);
        }
    }

    /// The exact match extracted from a packet matches it.
    #[test]
    fn exact_match_matches_self(spec in arb_spec(), port in 1u16..100) {
        let p = Packet::from_spec(&spec);
        let m = exact_match_of(&p, port);
        for (label, cond) in m.conditions(&Term::bv_const(16, port as u64), &p) {
            prop_assert_eq!(cond.as_bool_const(), Some(true), "{} failed", label);
        }
    }

    /// Changing the ingress port breaks exactly the in_port condition.
    #[test]
    fn wrong_in_port_fails_only_in_port(spec in arb_spec(), port in 1u16..100) {
        let p = Packet::from_spec(&spec);
        let m = exact_match_of(&p, port);
        let conds = m.conditions(&Term::bv_const(16, port as u64 + 1), &p);
        prop_assert_eq!(conds[0].1.as_bool_const(), Some(false));
        for (label, cond) in &conds[1..] {
            prop_assert_eq!(cond.as_bool_const(), Some(true), "{} failed", label);
        }
    }

    /// Packet parse of serialized bytes reconstructs the framing.
    #[test]
    fn parse_reconstructs_framing(spec in arb_spec()) {
        let p = Packet::from_spec(&spec);
        let bytes = p.buf.as_concrete().expect("probe concrete");
        let q = Packet::parse(&soft_sym::SymBuf::concrete(&bytes)).expect("parses");
        prop_assert_eq!(q.vlan, p.vlan);
        prop_assert_eq!(q.dl_vlan(), p.dl_vlan());
        prop_assert_eq!(q.nw_src(), p.nw_src());
        prop_assert_eq!(q.tp_dst(), p.tp_dst());
    }

    /// Field rewrites read back what was written.
    #[test]
    fn rewrites_roundtrip(spec in arb_spec(), vid in 0u64..4096, tos in any::<u8>(),
                          ip in any::<u32>(), tp in any::<u16>()) {
        let mut p = Packet::from_spec(&spec);
        p.set_vlan_vid(&Term::bv_const(16, vid), true);
        prop_assert_eq!(p.dl_vlan().as_bv_const(), Some(vid & 0xfff));
        if p.has_ip() {
            p.set_nw_src(&Term::bv_const(32, ip as u64));
            prop_assert_eq!(p.nw_src().as_bv_const(), Some(ip as u64));
            p.set_nw_tos(&Term::bv_const(8, tos as u64), true);
            prop_assert_eq!(p.nw_tos().as_bv_const(), Some((tos & 0xfc) as u64));
        }
        if p.has_l4() {
            p.set_tp_dst(&Term::bv_const(16, tp as u64));
            prop_assert_eq!(p.tp_dst().as_bv_const(), Some(tp as u64));
        }
    }

    /// Inserting then stripping a VLAN tag restores the original frame.
    #[test]
    fn vlan_insert_strip_roundtrip(spec in arb_spec(), vid in 0u64..4096) {
        prop_assume!(spec.vlan.is_none());
        let orig = Packet::from_spec(&spec);
        let mut p = orig.clone();
        p.set_vlan_vid(&Term::bv_const(16, vid), true);
        prop_assert!(p.vlan);
        p.strip_vlan();
        prop_assert_eq!(p, orig);
    }

    /// CIDR wildcard semantics agree with a direct prefix computation.
    #[test]
    fn cidr_matches_prefix_semantics(entry_ip in any::<u32>(), pkt_ip in any::<u32>(),
                                     n in 0u32..64) {
        let spec = ProbeSpec { nw_src: pkt_ip, ..Default::default() };
        let p = Packet::from_spec(&spec);
        let mut m = MatchFields::wildcard_all();
        m.wildcards = Term::bv_const(32, ((n & 0x3f) << wc::NW_SRC_SHIFT) as u64);
        m.nw_src = Term::bv_const(32, entry_ip as u64);
        let cond = m
            .conditions(&Term::bv_const(16, 1), &p)
            .into_iter()
            .find(|(l, _)| *l == "match.nw_src")
            .unwrap()
            .1;
        let expected = if n >= 32 {
            true
        } else {
            (entry_ip >> n) == (pkt_ip >> n)
        };
        prop_assert_eq!(cond.as_bool_const(), Some(expected));
    }

    /// Truncation never exceeds the packet length and preserves prefixes.
    #[test]
    fn truncation_is_prefix(spec in arb_spec(), n in 0usize..200) {
        let p = Packet::from_spec(&spec);
        let t = p.truncated(n);
        prop_assert_eq!(t.len(), n.min(p.len()));
        let full = p.buf.as_concrete().unwrap();
        let tr = t.as_concrete().unwrap();
        prop_assert_eq!(&full[..tr.len()], &tr[..]);
    }
}
