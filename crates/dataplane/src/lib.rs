//! # soft-dataplane — packet and flow-table substrate
//!
//! The data-plane model underneath the OpenFlow agents: concrete probe
//! packets (whose field values may become symbolic after actions rewrite
//! them), OpenFlow 1.0 12-tuple match condition construction, and flow
//! entries. Matching semantics shared by all agents live here; validation
//! quirks — the behaviour SOFT exists to compare — stay in `soft-agents`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod packet;

pub use flow::{FlowEntry, MatchFields};
pub use packet::{eth_probe, tcp_probe, Packet, ProbeSpec};
