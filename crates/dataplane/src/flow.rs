//! Flow match primitives.
//!
//! OpenFlow 1.0 matching is a 12-tuple with per-field wildcard bits (and
//! CIDR-style prefix wildcards for the IP addresses). Flow mods installed
//! from symbolic messages have symbolic match fields, so "does this probe
//! packet match this entry" is a symbolic condition; agents evaluate it
//! field by field with short-circuiting, exactly as the C implementations
//! iterate `flow_fields_match`. This module provides the shared condition
//! construction; validation quirks stay in the agents.

use crate::packet::Packet;
use soft_openflow::consts::wildcards as wc;
use soft_openflow::layout::ofp_match as om;
use soft_smt::Term;
use soft_sym::SymBuf;

/// The 12-tuple match of a flow entry, plus wildcards. Every field is a
/// term (possibly symbolic).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MatchFields {
    /// Wildcard bit set (32-bit).
    pub wildcards: Term,
    /// Ingress port (16-bit).
    pub in_port: Term,
    /// Ethernet source (48-bit).
    pub dl_src: Term,
    /// Ethernet destination (48-bit).
    pub dl_dst: Term,
    /// VLAN id (16-bit; 0xffff = untagged).
    pub dl_vlan: Term,
    /// VLAN priority (8-bit).
    pub dl_vlan_pcp: Term,
    /// Ethertype (16-bit).
    pub dl_type: Term,
    /// IP ToS (8-bit).
    pub nw_tos: Term,
    /// IP protocol (8-bit).
    pub nw_proto: Term,
    /// IP source (32-bit).
    pub nw_src: Term,
    /// IP destination (32-bit).
    pub nw_dst: Term,
    /// Transport source port (16-bit).
    pub tp_src: Term,
    /// Transport destination port (16-bit).
    pub tp_dst: Term,
}

impl MatchFields {
    /// Parse an `ofp_match` struct from `buf` starting at `off`.
    pub fn parse(buf: &SymBuf, off: usize) -> MatchFields {
        MatchFields {
            wildcards: buf.u32(off + om::WILDCARDS),
            in_port: buf.u16(off + om::IN_PORT),
            dl_src: buf.u48(off + om::DL_SRC),
            dl_dst: buf.u48(off + om::DL_DST),
            dl_vlan: buf.u16(off + om::DL_VLAN),
            dl_vlan_pcp: buf.u8(off + om::DL_VLAN_PCP),
            dl_type: buf.u16(off + om::DL_TYPE),
            nw_tos: buf.u8(off + om::NW_TOS),
            nw_proto: buf.u8(off + om::NW_PROTO),
            nw_src: buf.u32(off + om::NW_SRC),
            nw_dst: buf.u32(off + om::NW_DST),
            tp_src: buf.u16(off + om::TP_SRC),
            tp_dst: buf.u16(off + om::TP_DST),
        }
    }

    /// A fully-wildcarded concrete match.
    pub fn wildcard_all() -> MatchFields {
        MatchFields {
            wildcards: Term::bv_const(32, wc::ALL as u64),
            in_port: Term::bv_const(16, 0),
            dl_src: Term::bv_const(48, 0),
            dl_dst: Term::bv_const(48, 0),
            dl_vlan: Term::bv_const(16, 0),
            dl_vlan_pcp: Term::bv_const(8, 0),
            dl_type: Term::bv_const(16, 0),
            nw_tos: Term::bv_const(8, 0),
            nw_proto: Term::bv_const(8, 0),
            nw_src: Term::bv_const(32, 0),
            nw_dst: Term::bv_const(32, 0),
            tp_src: Term::bv_const(16, 0),
            tp_dst: Term::bv_const(16, 0),
        }
    }

    /// Condition: the given wildcard bit is set.
    pub fn wc_bit(&self, bit: u32) -> Term {
        self.wildcards
            .clone()
            .bvand(Term::bv_const(32, bit as u64))
            .ne(Term::bv_const(32, 0))
    }

    /// Condition: the prefix-wildcard field leaves at least `n >= 32` bits
    /// wildcarded, or the top `32 - n` bits agree.
    fn cidr_condition(&self, shift: u32, field: &Term, key: &Term) -> Term {
        let n = self
            .wildcards
            .clone()
            .bvlshr(Term::bv_const(32, shift as u64))
            .bvand(Term::bv_const(32, 0x3f));
        let all_wild = n.clone().uge(Term::bv_const(32, 32));
        let hi_equal = field.clone().bvlshr(n.clone()).eq(key.clone().bvlshr(n));
        all_wild.or(hi_equal)
    }

    /// The per-field match conditions against a packet arriving on
    /// `in_port`, in the order the reference implementation checks them.
    /// Each entry is `(site-label, wildcarded-or-equal condition)`; agents
    /// branch on them sequentially and bail at the first false.
    pub fn conditions(&self, in_port: &Term, pkt: &Packet) -> Vec<(&'static str, Term)> {
        vec![
            (
                "match.in_port",
                self.wc_bit(wc::IN_PORT)
                    .or(self.in_port.clone().eq(in_port.clone())),
            ),
            (
                "match.dl_src",
                self.wc_bit(wc::DL_SRC)
                    .or(self.dl_src.clone().eq(pkt.dl_src())),
            ),
            (
                "match.dl_dst",
                self.wc_bit(wc::DL_DST)
                    .or(self.dl_dst.clone().eq(pkt.dl_dst())),
            ),
            (
                "match.dl_vlan",
                self.wc_bit(wc::DL_VLAN)
                    .or(self.dl_vlan.clone().eq(pkt.dl_vlan())),
            ),
            (
                "match.dl_vlan_pcp",
                self.wc_bit(wc::DL_VLAN_PCP)
                    .or(self.dl_vlan_pcp.clone().eq(pkt.dl_vlan_pcp())),
            ),
            (
                "match.dl_type",
                self.wc_bit(wc::DL_TYPE)
                    .or(self.dl_type.clone().eq(pkt.dl_type())),
            ),
            (
                "match.nw_tos",
                self.wc_bit(wc::NW_TOS)
                    .or(self.nw_tos.clone().eq(pkt.nw_tos())),
            ),
            (
                "match.nw_proto",
                self.wc_bit(wc::NW_PROTO)
                    .or(self.nw_proto.clone().eq(pkt.nw_proto())),
            ),
            (
                "match.nw_src",
                self.cidr_condition(wc::NW_SRC_SHIFT, &self.nw_src, &pkt.nw_src()),
            ),
            (
                "match.nw_dst",
                self.cidr_condition(wc::NW_DST_SHIFT, &self.nw_dst, &pkt.nw_dst()),
            ),
            (
                "match.tp_src",
                self.wc_bit(wc::TP_SRC)
                    .or(self.tp_src.clone().eq(pkt.tp_src())),
            ),
            (
                "match.tp_dst",
                self.wc_bit(wc::TP_DST)
                    .or(self.tp_dst.clone().eq(pkt.tp_dst())),
            ),
        ]
    }
}

/// A flow-table entry as installed by a Flow Mod. All value fields may be
/// symbolic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowEntry {
    /// Match fields.
    pub fields: MatchFields,
    /// Priority (16-bit term).
    pub priority: Term,
    /// Raw action-list bytes, re-parsed at packet-apply time (like the C
    /// agents, which store the wire form).
    pub actions: SymBuf,
    /// Opaque cookie.
    pub cookie: Term,
    /// Idle timeout (seconds).
    pub idle_timeout: Term,
    /// Hard timeout (seconds).
    pub hard_timeout: Term,
    /// Flow mod flags as installed (16-bit term).
    pub flags: Term,
    /// Whether this is an emergency entry (Reference Switch only).
    pub emergency: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::tcp_probe;
    use soft_smt::{Assignment, Solver};

    #[test]
    fn wildcard_all_matches_everything() {
        let m = MatchFields::wildcard_all();
        let p = tcp_probe();
        for (label, cond) in m.conditions(&Term::bv_const(16, 1), &p) {
            assert_eq!(
                cond.as_bool_const(),
                Some(true),
                "{label} should fold to true under full wildcard"
            );
        }
    }

    #[test]
    fn exact_match_conditions_fold_for_concrete_entry() {
        let p = tcp_probe();
        let mut m = MatchFields::wildcard_all();
        m.wildcards = Term::bv_const(32, 0);
        m.in_port = Term::bv_const(16, 1);
        m.dl_src = p.dl_src();
        m.dl_dst = p.dl_dst();
        m.dl_vlan = p.dl_vlan();
        m.dl_vlan_pcp = p.dl_vlan_pcp();
        m.dl_type = p.dl_type();
        m.nw_tos = p.nw_tos();
        m.nw_proto = p.nw_proto();
        m.nw_src = p.nw_src();
        m.nw_dst = p.nw_dst();
        m.tp_src = p.tp_src();
        m.tp_dst = p.tp_dst();
        for (label, cond) in m.conditions(&Term::bv_const(16, 1), &p) {
            assert_eq!(cond.as_bool_const(), Some(true), "{label} must match");
        }
        // Changing one field breaks exactly that condition.
        m.tp_dst = Term::bv_const(16, 81);
        let conds = m.conditions(&Term::bv_const(16, 1), &p);
        assert_eq!(conds[11].1.as_bool_const(), Some(false));
    }

    #[test]
    fn symbolic_match_parses_and_constrains() {
        let buf = SymBuf::symbolic("mf", om::SIZE);
        let m = MatchFields::parse(&buf, 0);
        let p = tcp_probe();
        let conds = m.conditions(&Term::bv_const(16, 1), &p);
        assert_eq!(conds.len(), 12);
        // The dl_type condition is satisfiable both ways.
        let mut s = Solver::new();
        let c = &conds[5].1;
        assert!(s.check_one(c).is_sat());
        assert!(s.check_one(&c.clone().not()).is_sat());
    }

    #[test]
    fn cidr_wildcard_semantics() {
        // Entry nw_src = 10.0.0.0 with 8 wildcarded bits matches 10.0.0.x.
        let mut m = MatchFields::wildcard_all();
        m.wildcards = Term::bv_const(32, (8 << wc::NW_SRC_SHIFT) as u64);
        m.nw_src = Term::bv_const(32, 0x0a00_0000);
        let p = tcp_probe(); // nw_src = 10.0.0.1
        let conds = m.conditions(&Term::bv_const(16, 1), &p);
        let c = conds
            .iter()
            .find(|(l, _)| *l == "match.nw_src")
            .map(|(_, c)| c.clone())
            .unwrap();
        assert_eq!(c.as_bool_const(), Some(true));

        // With 0 wildcarded bits it must not match 10.0.0.1.
        let mut m2 = m.clone();
        m2.wildcards = Term::bv_const(32, 0);
        let c2 = m2.conditions(&Term::bv_const(16, 1), &p)[8].1.clone();
        assert_eq!(c2.as_bool_const(), Some(false));

        // n >= 32 wildcards everything.
        let mut m3 = m.clone();
        m3.wildcards = Term::bv_const(32, (63 << wc::NW_SRC_SHIFT) as u64);
        m3.nw_src = Term::bv_const(32, 0xdead_beef);
        let c3 = m3.conditions(&Term::bv_const(16, 1), &p)[8].1.clone();
        assert_eq!(c3.as_bool_const(), Some(true));
    }

    #[test]
    fn symbolic_wildcards_cidr_solvable() {
        let buf = SymBuf::symbolic("cd", om::SIZE);
        let m = MatchFields::parse(&buf, 0);
        let p = tcp_probe();
        let c = m.conditions(&Term::bv_const(16, 1), &p)[8].1.clone();
        let mut s = Solver::new();
        // There must be a model where the CIDR condition holds with a
        // nonzero mask count.
        let n_nonzero = m
            .wildcards
            .clone()
            .bvlshr(Term::bv_const(32, wc::NW_SRC_SHIFT as u64))
            .bvand(Term::bv_const(32, 0x3f))
            .ne(Term::bv_const(32, 0));
        let r = s.check(&[c.clone(), n_nonzero]);
        assert!(r.is_sat());
        let model = r.model().unwrap();
        // Sanity: evaluate the condition under the model.
        let mut a = Assignment::new();
        for (k, v) in model.iter() {
            a.set(k, v);
        }
        assert!(a.eval_bool(&c));
    }
}
