//! Data-plane packet model.
//!
//! Probe packets are *structurally concrete*: their framing (Ethernet,
//! optional 802.1Q tag, IPv4, TCP/UDP) is fixed, while field values may
//! become symbolic after OpenFlow actions rewrite them. [`Packet`] tracks
//! the framing offsets so set-field actions and flow-key extraction work on
//! both concrete probes and action-rewritten packets.

use soft_smt::Term;
use soft_sym::SymBuf;

/// EtherType for IPv4.
pub const ETH_TYPE_IP: u16 = 0x0800;
/// EtherType for 802.1Q VLAN tagging.
pub const ETH_TYPE_VLAN: u16 = 0x8100;
/// EtherType for ARP.
pub const ETH_TYPE_ARP: u16 = 0x0806;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;
/// IP protocol number for ICMP.
pub const IPPROTO_ICMP: u8 = 1;

/// Parameters for constructing a concrete probe packet.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Ethernet source address.
    pub dl_src: [u8; 6],
    /// Ethernet destination address.
    pub dl_dst: [u8; 6],
    /// Optional 802.1Q tag (pcp, vid).
    pub vlan: Option<(u8, u16)>,
    /// IPv4 ToS byte.
    pub nw_tos: u8,
    /// IPv4 source.
    pub nw_src: u32,
    /// IPv4 destination.
    pub nw_dst: u32,
    /// TCP source port.
    pub tp_src: u16,
    /// TCP destination port.
    pub tp_dst: u16,
    /// TCP payload length (padding bytes).
    pub payload_len: usize,
}

impl Default for ProbeSpec {
    fn default() -> Self {
        ProbeSpec {
            dl_src: [0x02, 0x00, 0x00, 0x00, 0x00, 0x01],
            dl_dst: [0x02, 0x00, 0x00, 0x00, 0x00, 0x02],
            vlan: None,
            nw_tos: 0,
            nw_src: 0x0a00_0001,
            nw_dst: 0x0a00_0002,
            tp_src: 1234,
            tp_dst: 80,
            // 14 eth + 20 ip + 20 tcp + 14 payload = 68 bytes total.
            payload_len: 14,
        }
    }
}

/// Build the standard concrete TCP probe used after state-changing
/// messages (§3.3 "we inject a concrete packet through the data plane
/// interface as a simple state probe").
pub fn tcp_probe() -> Packet {
    Packet::from_spec(&ProbeSpec::default())
}

/// Build a short Ethernet-only probe (used by the Eth FlowMod test).
pub fn eth_probe() -> Packet {
    let spec = ProbeSpec::default();
    let mut raw = Vec::new();
    raw.extend_from_slice(&spec.dl_dst);
    raw.extend_from_slice(&spec.dl_src);
    // A non-IP ethertype so L3 parsing does not apply.
    raw.extend_from_slice(&0x88b5u16.to_be_bytes()); // local experimental
    raw.extend_from_slice(&[0u8; 6]); // small payload
    Packet {
        buf: SymBuf::concrete(&raw),
        vlan: false,
        l3: L3::None,
    }
}

/// Layer-3 framing of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L3 {
    /// No parseable L3 (unknown ethertype).
    None,
    /// IPv4 with a TCP/UDP header following.
    Ipv4WithL4,
    /// IPv4 without a parseable L4.
    Ipv4,
}

/// A data-plane packet with known framing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Raw bytes (values possibly symbolic).
    pub buf: SymBuf,
    /// Whether an 802.1Q tag is present.
    pub vlan: bool,
    /// L3 framing.
    l3: L3,
}

impl Packet {
    /// Build a concrete packet from a probe spec.
    pub fn from_spec(spec: &ProbeSpec) -> Packet {
        let mut raw = Vec::new();
        raw.extend_from_slice(&spec.dl_dst);
        raw.extend_from_slice(&spec.dl_src);
        if let Some((pcp, vid)) = spec.vlan {
            raw.extend_from_slice(&ETH_TYPE_VLAN.to_be_bytes());
            let tci = ((pcp as u16) << 13) | (vid & 0x0fff);
            raw.extend_from_slice(&tci.to_be_bytes());
        }
        raw.extend_from_slice(&ETH_TYPE_IP.to_be_bytes());
        // IPv4 header (20 bytes, checksum modelled as identity/zero per
        // the paper's §4.1 simplification).
        let total_len = (20 + 20 + spec.payload_len) as u16;
        raw.push(0x45); // version + ihl
        raw.push(spec.nw_tos);
        raw.extend_from_slice(&total_len.to_be_bytes());
        raw.extend_from_slice(&[0, 0, 0, 0]); // id + flags/frag
        raw.push(64); // ttl
        raw.push(IPPROTO_TCP);
        raw.extend_from_slice(&[0, 0]); // checksum (identity model)
        raw.extend_from_slice(&spec.nw_src.to_be_bytes());
        raw.extend_from_slice(&spec.nw_dst.to_be_bytes());
        // TCP header (20 bytes).
        raw.extend_from_slice(&spec.tp_src.to_be_bytes());
        raw.extend_from_slice(&spec.tp_dst.to_be_bytes());
        raw.extend_from_slice(&[0; 8]); // seq + ack
        raw.push(0x50); // data offset
        raw.push(0x02); // flags (SYN)
        raw.extend_from_slice(&[0xff, 0xff]); // window
        raw.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        raw.extend_from_slice(&vec![0xab; spec.payload_len]);
        Packet {
            buf: SymBuf::concrete(&raw),
            vlan: spec.vlan.is_some(),
            l3: L3::Ipv4WithL4,
        }
    }

    /// Parse framing from a buffer whose *structure* bytes (ethertypes,
    /// IHL, IP protocol) are concrete — true for all probe payloads in the
    /// test suite. Field values may still be symbolic.
    ///
    /// Returns `None` when a structure byte is symbolic (the caller should
    /// then treat the packet as opaque).
    pub fn parse(buf: &SymBuf) -> Option<Packet> {
        if buf.len() < 14 {
            return Some(Packet {
                buf: buf.clone(),
                vlan: false,
                l3: L3::None,
            });
        }
        let ethertype = buf.u16(12).as_bv_const()? as u16;
        let (vlan, eff_type, l3_off) = if ethertype == ETH_TYPE_VLAN {
            if buf.len() < 18 {
                return Some(Packet {
                    buf: buf.clone(),
                    vlan: true,
                    l3: L3::None,
                });
            }
            (true, buf.u16(16).as_bv_const()? as u16, 18usize)
        } else {
            (false, ethertype, 14usize)
        };
        let l3 = if eff_type == ETH_TYPE_IP && buf.len() >= l3_off + 20 {
            let vihl = buf.u8(l3_off).as_bv_const()?;
            let proto = buf.u8(l3_off + 9).as_bv_const()? as u8;
            let has_l4 = vihl == 0x45
                && (proto == IPPROTO_TCP || proto == IPPROTO_UDP)
                && buf.len() >= l3_off + 24;
            if has_l4 {
                L3::Ipv4WithL4
            } else {
                L3::Ipv4
            }
        } else {
            L3::None
        };
        Some(Packet {
            buf: buf.clone(),
            vlan,
            l3,
        })
    }

    /// A fully symbolic packet of the given length (the "Symbolic Probe"
    /// ablation variant of Table 5). The framing is *undetermined*: agents
    /// classify it by branching on the (symbolic) ethertype bytes, the way
    /// `flow_extract` parses an incoming frame.
    pub fn symbolic(tag: &str, len: usize) -> Packet {
        Packet {
            buf: SymBuf::symbolic(tag, len),
            vlan: false,
            l3: L3::None,
        }
    }

    /// True if the framing-determining bytes (outer ethertype) are
    /// symbolic, i.e. [`Packet::parse`] could not have classified this
    /// packet and the agent must branch to do so.
    pub fn framing_symbolic(&self) -> bool {
        self.buf.len() >= 14 && self.buf.u16(12).as_bv_const().is_none()
    }

    /// Assemble a packet with explicitly chosen framing over `buf` (used
    /// by agents after branching on a symbolic ethertype).
    pub fn with_framing(buf: SymBuf, vlan: bool, has_ip: bool, has_l4: bool) -> Packet {
        let l3 = if has_l4 {
            L3::Ipv4WithL4
        } else if has_ip {
            L3::Ipv4
        } else {
            L3::None
        };
        Packet { buf, vlan, l3 }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the packet has no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    // ------------------------------------------------------------- offsets

    fn l3_off(&self) -> usize {
        if self.vlan {
            18
        } else {
            14
        }
    }

    fn l4_off(&self) -> usize {
        self.l3_off() + 20
    }

    /// True if the packet carries an IPv4 header.
    pub fn has_ip(&self) -> bool {
        !matches!(self.l3, L3::None)
    }

    /// True if the packet carries a TCP/UDP header.
    pub fn has_l4(&self) -> bool {
        matches!(self.l3, L3::Ipv4WithL4)
    }

    // ------------------------------------------------------ field readers

    /// Ethernet destination (48-bit term).
    pub fn dl_dst(&self) -> Term {
        self.buf.u48(0)
    }

    /// Ethernet source (48-bit term).
    pub fn dl_src(&self) -> Term {
        self.buf.u48(6)
    }

    /// The effective ethertype (inner type when VLAN-tagged).
    pub fn dl_type(&self) -> Term {
        if self.vlan {
            self.buf.u16(16)
        } else {
            self.buf.u16(12)
        }
    }

    /// VLAN id (12-bit value zero-extended to 16), or 0xffff if untagged
    /// (OpenFlow 1.0's OFP_VLAN_NONE).
    pub fn dl_vlan(&self) -> Term {
        if self.vlan {
            self.buf.u16(14).bvand(Term::bv_const(16, 0x0fff))
        } else {
            Term::bv_const(16, 0xffff)
        }
    }

    /// VLAN priority (3 bits, in the low bits of an 8-bit term).
    pub fn dl_vlan_pcp(&self) -> Term {
        if self.vlan {
            self.buf.u16(14).extract(15, 13).zext(8)
        } else {
            Term::bv_const(8, 0)
        }
    }

    /// IPv4 ToS byte (zero if no IP header).
    pub fn nw_tos(&self) -> Term {
        if self.has_ip() {
            self.buf.u8(self.l3_off() + 1)
        } else {
            Term::bv_const(8, 0)
        }
    }

    /// IPv4 protocol (zero if no IP header).
    pub fn nw_proto(&self) -> Term {
        if self.has_ip() {
            self.buf.u8(self.l3_off() + 9)
        } else {
            Term::bv_const(8, 0)
        }
    }

    /// IPv4 source (zero if no IP header).
    pub fn nw_src(&self) -> Term {
        if self.has_ip() {
            self.buf.u32(self.l3_off() + 12)
        } else {
            Term::bv_const(32, 0)
        }
    }

    /// IPv4 destination (zero if no IP header).
    pub fn nw_dst(&self) -> Term {
        if self.has_ip() {
            self.buf.u32(self.l3_off() + 16)
        } else {
            Term::bv_const(32, 0)
        }
    }

    /// Transport source port (zero if no L4 header).
    pub fn tp_src(&self) -> Term {
        if self.has_l4() {
            self.buf.u16(self.l4_off())
        } else {
            Term::bv_const(16, 0)
        }
    }

    /// Transport destination port (zero if no L4 header).
    pub fn tp_dst(&self) -> Term {
        if self.has_l4() {
            self.buf.u16(self.l4_off() + 2)
        } else {
            Term::bv_const(16, 0)
        }
    }

    // ------------------------------------------------------ field writers

    fn set_u48(&mut self, off: usize, v: &Term) {
        assert_eq!(v.width(), 48);
        for i in 0..6 {
            let hi = 47 - 8 * i as u32;
            self.buf
                .set_byte_term(off + i, v.clone().extract(hi, hi - 7));
        }
    }

    /// Set the Ethernet source address.
    pub fn set_dl_src(&mut self, v: &Term) {
        self.set_u48(6, v);
    }

    /// Set the Ethernet destination address.
    pub fn set_dl_dst(&mut self, v: &Term) {
        self.set_u48(0, v);
    }

    /// Set (or add) the 802.1Q VLAN id. `vid` is a 16-bit term of which the
    /// low 12 bits are used; `mask_to_12` controls whether the value is
    /// masked (Reference Switch behaviour) or written raw.
    pub fn set_vlan_vid(&mut self, vid: &Term, mask_to_12: bool) {
        assert_eq!(vid.width(), 16);
        let vid12 = if mask_to_12 {
            vid.clone().bvand(Term::bv_const(16, 0x0fff))
        } else {
            vid.clone()
        };
        if self.vlan {
            let old_tci = self.buf.u16(14);
            let pcp_bits = old_tci.bvand(Term::bv_const(16, 0xf000));
            let new_tci = pcp_bits.bvor(vid12);
            self.buf.set_u16_term(14, &new_tci);
        } else {
            self.insert_vlan_tag(vid12);
        }
    }

    /// Set the 802.1Q priority bits (`pcp` is an 8-bit term; low 3 bits
    /// used, optionally masked).
    pub fn set_vlan_pcp(&mut self, pcp: &Term, mask_to_3: bool) {
        assert_eq!(pcp.width(), 8);
        let p3 = if mask_to_3 {
            pcp.clone().bvand(Term::bv_const(8, 0x07))
        } else {
            pcp.clone()
        };
        let shifted = p3.zext(16).bvshl(Term::bv_const(16, 13));
        if self.vlan {
            let old_tci = self.buf.u16(14);
            let vid_bits = old_tci.bvand(Term::bv_const(16, 0x1fff));
            self.buf.set_u16_term(14, &vid_bits.bvor(shifted));
        } else {
            self.insert_vlan_tag(Term::bv_const(16, 0));
            let old_tci = self.buf.u16(14);
            self.buf.set_u16_term(14, &old_tci.bvor(shifted));
        }
    }

    fn insert_vlan_tag(&mut self, tci: Term) {
        let mut nb = SymBuf::empty();
        let bytes = self.buf.bytes().to_vec();
        for b in &bytes[..12] {
            nb.push(b.clone());
        }
        nb.push(Term::bv_const(8, (ETH_TYPE_VLAN >> 8) as u64));
        nb.push(Term::bv_const(8, (ETH_TYPE_VLAN & 0xff) as u64));
        nb.push(tci.clone().extract(15, 8));
        nb.push(tci.extract(7, 0));
        for b in &bytes[12..] {
            nb.push(b.clone());
        }
        self.buf = nb;
        self.vlan = true;
    }

    /// Remove the 802.1Q tag if present.
    pub fn strip_vlan(&mut self) {
        if !self.vlan {
            return;
        }
        let bytes = self.buf.bytes().to_vec();
        let mut nb = SymBuf::empty();
        for b in &bytes[..12] {
            nb.push(b.clone());
        }
        for b in &bytes[16..] {
            nb.push(b.clone());
        }
        self.buf = nb;
        self.vlan = false;
    }

    /// Set the IPv4 source address (no-op without an IP header, matching
    /// both agents' behaviour on non-IP packets).
    pub fn set_nw_src(&mut self, v: &Term) {
        if self.has_ip() {
            let off = self.l3_off() + 12;
            self.buf.set_u32_term(off, v);
        }
    }

    /// Set the IPv4 destination address.
    pub fn set_nw_dst(&mut self, v: &Term) {
        if self.has_ip() {
            let off = self.l3_off() + 16;
            self.buf.set_u32_term(off, v);
        }
    }

    /// Set the IPv4 ToS byte. `mask_to_dscp` keeps only the high 6 bits
    /// (Reference Switch auto-masking).
    pub fn set_nw_tos(&mut self, v: &Term, mask_to_dscp: bool) {
        assert_eq!(v.width(), 8);
        if self.has_ip() {
            let tos = if mask_to_dscp {
                v.clone().bvand(Term::bv_const(8, 0xfc))
            } else {
                v.clone()
            };
            let off = self.l3_off() + 1;
            self.buf.set_byte_term(off, tos);
        }
    }

    /// Set the transport source port.
    pub fn set_tp_src(&mut self, v: &Term) {
        if self.has_l4() {
            let off = self.l4_off();
            self.buf.set_u16_term(off, v);
        }
    }

    /// Set the transport destination port.
    pub fn set_tp_dst(&mut self, v: &Term) {
        if self.has_l4() {
            let off = self.l4_off() + 2;
            self.buf.set_u16_term(off, v);
        }
    }

    /// First `n` bytes of the packet (for truncated Packet In data).
    pub fn truncated(&self, n: usize) -> SymBuf {
        self.buf.slice(0, n.min(self.buf.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tcp_probe_is_68_bytes() {
        let p = tcp_probe();
        assert_eq!(p.len(), 68);
        assert!(p.has_ip());
        assert!(p.has_l4());
        assert_eq!(p.dl_type().as_bv_const(), Some(ETH_TYPE_IP as u64));
        assert_eq!(p.nw_proto().as_bv_const(), Some(IPPROTO_TCP as u64));
        assert_eq!(p.tp_dst().as_bv_const(), Some(80));
        assert_eq!(p.dl_vlan().as_bv_const(), Some(0xffff), "untagged");
    }

    #[test]
    fn vlan_tagged_probe_reads_tag_fields() {
        let spec = ProbeSpec {
            vlan: Some((5, 100)),
            ..Default::default()
        };
        let p = Packet::from_spec(&spec);
        assert_eq!(p.dl_vlan().as_bv_const(), Some(100));
        assert_eq!(p.dl_vlan_pcp().as_bv_const(), Some(5));
        assert_eq!(p.dl_type().as_bv_const(), Some(ETH_TYPE_IP as u64));
        assert_eq!(p.len(), 72);
    }

    #[test]
    fn set_vlan_on_untagged_inserts_tag() {
        let mut p = tcp_probe();
        let before = p.len();
        p.set_vlan_vid(&Term::bv_const(16, 42), true);
        assert!(p.vlan);
        assert_eq!(p.len(), before + 4);
        assert_eq!(p.dl_vlan().as_bv_const(), Some(42));
        // Inner fields unchanged.
        assert_eq!(p.tp_dst().as_bv_const(), Some(80));
        assert_eq!(p.nw_proto().as_bv_const(), Some(IPPROTO_TCP as u64));
    }

    #[test]
    fn set_vlan_masking_semantics() {
        let mut masked = tcp_probe();
        masked.set_vlan_vid(&Term::bv_const(16, 0x1fff), true);
        assert_eq!(masked.dl_vlan().as_bv_const(), Some(0x0fff));
        let mut raw = tcp_probe();
        raw.set_vlan_vid(&Term::bv_const(16, 0x1fff), false);
        // Raw write spills into the pcp/cfi bits.
        assert_eq!(raw.buf.u16(14).as_bv_const(), Some(0x1fff));
    }

    #[test]
    fn strip_vlan_removes_tag() {
        let spec = ProbeSpec {
            vlan: Some((1, 7)),
            ..Default::default()
        };
        let mut p = Packet::from_spec(&spec);
        let tagged_len = p.len();
        p.strip_vlan();
        assert!(!p.vlan);
        assert_eq!(p.len(), tagged_len - 4);
        assert_eq!(p.dl_vlan().as_bv_const(), Some(0xffff));
        assert_eq!(p.tp_dst().as_bv_const(), Some(80));
        // Stripping again is a no-op.
        p.strip_vlan();
        assert_eq!(p.len(), tagged_len - 4);
    }

    #[test]
    fn set_nw_and_tp_fields() {
        let mut p = tcp_probe();
        p.set_nw_src(&Term::bv_const(32, 0xc0a80001));
        p.set_nw_dst(&Term::bv_const(32, 0xc0a80002));
        p.set_tp_src(&Term::bv_const(16, 5555));
        p.set_tp_dst(&Term::bv_const(16, 443));
        assert_eq!(p.nw_src().as_bv_const(), Some(0xc0a80001));
        assert_eq!(p.nw_dst().as_bv_const(), Some(0xc0a80002));
        assert_eq!(p.tp_src().as_bv_const(), Some(5555));
        assert_eq!(p.tp_dst().as_bv_const(), Some(443));
    }

    #[test]
    fn tos_masking() {
        let mut p = tcp_probe();
        p.set_nw_tos(&Term::bv_const(8, 0xff), true);
        assert_eq!(p.nw_tos().as_bv_const(), Some(0xfc));
        p.set_nw_tos(&Term::bv_const(8, 0xff), false);
        assert_eq!(p.nw_tos().as_bv_const(), Some(0xff));
    }

    #[test]
    fn dl_addr_rewrites() {
        let mut p = tcp_probe();
        p.set_dl_src(&Term::bv_const(48, 0x0102_0304_0506));
        p.set_dl_dst(&Term::bv_const(48, 0x0a0b_0c0d_0e0f));
        assert_eq!(p.dl_src().as_bv_const(), Some(0x0102_0304_0506));
        assert_eq!(p.dl_dst().as_bv_const(), Some(0x0a0b_0c0d_0e0f));
    }

    #[test]
    fn eth_probe_has_no_l3() {
        let p = eth_probe();
        assert!(!p.has_ip());
        assert_eq!(p.nw_src().as_bv_const(), Some(0));
        assert_eq!(p.tp_dst().as_bv_const(), Some(0));
        // Setting L3 fields is a no-op.
        let mut p2 = p.clone();
        p2.set_nw_src(&Term::bv_const(32, 1));
        assert_eq!(p2, p);
    }

    #[test]
    fn truncation() {
        let p = tcp_probe();
        assert_eq!(p.truncated(10).len(), 10);
        assert_eq!(p.truncated(1000).len(), 68);
        assert_eq!(p.truncated(0).len(), 0);
    }

    #[test]
    fn symbolic_values_survive_rewrites() {
        let mut p = tcp_probe();
        let v = Term::var("pk.vid", 16);
        p.set_vlan_vid(&v, true);
        // The VLAN field is now symbolic but the structure is concrete.
        assert!(p.dl_vlan().as_bv_const().is_none());
        assert_eq!(p.dl_type().as_bv_const(), Some(ETH_TYPE_IP as u64));
    }
}
