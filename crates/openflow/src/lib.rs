//! # soft-openflow — OpenFlow 1.0 protocol definitions
//!
//! Wire-level constants, struct layouts, symbolic test-message builders and
//! parsing shared by the agents under test and the SOFT harness. (The
//! protocol-generic output trace-event model lives in `soft-protocol`.) The protocol version is 1.0, matching the two agents the
//! paper evaluates (the reference switch released with spec v1.0.0 and
//! Open vSwitch 1.0.0).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod consts;
pub mod decode;
pub mod layout;
pub mod parse;
