//! Parsing concrete OpenFlow 1.0 wire bytes into structured messages.
//!
//! The inverse of [`crate::builder`]: used by the trace-driven workflow
//! (§6.3 discusses deriving test inputs from recorded traces à la
//! OFRewind) and by tests that need to inspect reproduction messages. The
//! parser is strict about framing and tolerant about semantics — semantic
//! validation is the agents' job, and *differs* between them; that
//! difference is the whole point of SOFT.

use crate::consts::{msg_type, OFP_VERSION};
use crate::layout;

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer than 8 bytes.
    TooShort,
    /// Version byte differs from OpenFlow 1.0.
    BadVersion(u8),
    /// Header length field disagrees with the byte count.
    LengthMismatch {
        /// Value of the header length field.
        declared: u16,
        /// Actual number of bytes supplied.
        actual: usize,
    },
    /// The body is too short for the declared message type.
    TruncatedBody(u8),
    /// Action list geometry is invalid (not a multiple of 8, or overruns).
    BadActionList,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::TooShort => write!(f, "message shorter than a header"),
            ParseError::BadVersion(v) => write!(f, "unsupported OpenFlow version {v:#x}"),
            ParseError::LengthMismatch { declared, actual } => {
                write!(f, "length field {declared} but {actual} bytes supplied")
            }
            ParseError::TruncatedBody(t) => write!(f, "body too short for message type {t}"),
            ParseError::BadActionList => write!(f, "invalid action list geometry"),
        }
    }
}

impl std::error::Error for ParseError {}

/// One parsed action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawAction {
    /// `ofp_action_type` value.
    pub atype: u16,
    /// Declared action length.
    pub len: u16,
    /// Argument bytes (after type/len).
    pub args: Vec<u8>,
}

/// A parsed OpenFlow 1.0 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Hello (no body).
    Hello,
    /// Echo request with payload.
    EchoRequest(Vec<u8>),
    /// Echo reply with payload.
    EchoReply(Vec<u8>),
    /// Features request.
    FeaturesRequest,
    /// Get-config request.
    GetConfigRequest,
    /// Barrier request.
    BarrierRequest,
    /// Set-config.
    SetConfig {
        /// Fragment flags.
        flags: u16,
        /// Miss send length.
        miss_send_len: u16,
    },
    /// Packet-out.
    PacketOut {
        /// Buffer id.
        buffer_id: u32,
        /// Declared ingress port.
        in_port: u16,
        /// Parsed actions.
        actions: Vec<RawAction>,
        /// Trailing packet data.
        data: Vec<u8>,
    },
    /// Flow-mod.
    FlowMod {
        /// Raw 40-byte match struct.
        match_bytes: [u8; 40],
        /// Cookie.
        cookie: u64,
        /// Command.
        command: u16,
        /// Idle timeout.
        idle_timeout: u16,
        /// Hard timeout.
        hard_timeout: u16,
        /// Priority.
        priority: u16,
        /// Buffer id.
        buffer_id: u32,
        /// Out-port filter.
        out_port: u16,
        /// Flags.
        flags: u16,
        /// Parsed actions.
        actions: Vec<RawAction>,
    },
    /// Stats request.
    StatsRequest {
        /// Statistics type.
        stype: u16,
        /// Flags.
        flags: u16,
        /// Body bytes.
        body: Vec<u8>,
    },
    /// Queue get-config request.
    QueueGetConfigRequest {
        /// Queried port.
        port: u16,
    },
    /// Any other message type: raw body kept for round-tripping.
    Other {
        /// Message type byte.
        mtype: u8,
        /// Body bytes (after the header).
        body: Vec<u8>,
    },
}

/// Parsed header + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// Transaction id from the header.
    pub xid: u32,
    /// The message payload.
    pub message: Message,
}

fn u16_at(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

fn parse_actions(b: &[u8]) -> Result<Vec<RawAction>, ParseError> {
    if !b.len().is_multiple_of(layout::action::BASE_SIZE) {
        return Err(ParseError::BadActionList);
    }
    let mut actions = Vec::new();
    let mut off = 0;
    while off < b.len() {
        let atype = u16_at(b, off);
        let len = u16_at(b, off + 2);
        if len as usize != layout::action::BASE_SIZE {
            // Only 8-byte actions appear in this tool's messages; reject
            // anything else rather than misparse.
            return Err(ParseError::BadActionList);
        }
        actions.push(RawAction {
            atype,
            len,
            args: b[off + 4..off + 8].to_vec(),
        });
        off += layout::action::BASE_SIZE;
    }
    Ok(actions)
}

/// Parse one framed OpenFlow message.
pub fn parse(bytes: &[u8]) -> Result<Parsed, ParseError> {
    if bytes.len() < layout::header::SIZE {
        return Err(ParseError::TooShort);
    }
    if bytes[0] != OFP_VERSION {
        return Err(ParseError::BadVersion(bytes[0]));
    }
    let declared = u16_at(bytes, layout::header::LENGTH);
    if declared as usize != bytes.len() {
        return Err(ParseError::LengthMismatch {
            declared,
            actual: bytes.len(),
        });
    }
    let mtype = bytes[1];
    let xid = u32_at(bytes, layout::header::XID);
    let body = &bytes[layout::header::SIZE..];
    let message = match mtype {
        msg_type::HELLO => Message::Hello,
        msg_type::ECHO_REQUEST => Message::EchoRequest(body.to_vec()),
        msg_type::ECHO_REPLY => Message::EchoReply(body.to_vec()),
        msg_type::FEATURES_REQUEST => Message::FeaturesRequest,
        msg_type::GET_CONFIG_REQUEST => Message::GetConfigRequest,
        msg_type::BARRIER_REQUEST => Message::BarrierRequest,
        msg_type::SET_CONFIG => {
            if bytes.len() < layout::switch_config::SIZE {
                return Err(ParseError::TruncatedBody(mtype));
            }
            Message::SetConfig {
                flags: u16_at(bytes, layout::switch_config::FLAGS),
                miss_send_len: u16_at(bytes, layout::switch_config::MISS_SEND_LEN),
            }
        }
        msg_type::PACKET_OUT => {
            if bytes.len() < layout::packet_out::FIXED_SIZE {
                return Err(ParseError::TruncatedBody(mtype));
            }
            let actions_len = u16_at(bytes, layout::packet_out::ACTIONS_LEN) as usize;
            let actions_end = layout::packet_out::FIXED_SIZE + actions_len;
            if actions_end > bytes.len() {
                return Err(ParseError::BadActionList);
            }
            Message::PacketOut {
                buffer_id: u32_at(bytes, layout::packet_out::BUFFER_ID),
                in_port: u16_at(bytes, layout::packet_out::IN_PORT),
                actions: parse_actions(&bytes[layout::packet_out::ACTIONS..actions_end])?,
                data: bytes[actions_end..].to_vec(),
            }
        }
        msg_type::FLOW_MOD => {
            if bytes.len() < layout::flow_mod::FIXED_SIZE {
                return Err(ParseError::TruncatedBody(mtype));
            }
            let mut match_bytes = [0u8; 40];
            match_bytes
                .copy_from_slice(&bytes[layout::flow_mod::MATCH..layout::flow_mod::MATCH + 40]);
            Message::FlowMod {
                match_bytes,
                cookie: u64::from_be_bytes(
                    bytes[layout::flow_mod::COOKIE..layout::flow_mod::COOKIE + 8]
                        .try_into()
                        .expect("8 bytes"),
                ),
                command: u16_at(bytes, layout::flow_mod::COMMAND),
                idle_timeout: u16_at(bytes, layout::flow_mod::IDLE_TIMEOUT),
                hard_timeout: u16_at(bytes, layout::flow_mod::HARD_TIMEOUT),
                priority: u16_at(bytes, layout::flow_mod::PRIORITY),
                buffer_id: u32_at(bytes, layout::flow_mod::BUFFER_ID),
                out_port: u16_at(bytes, layout::flow_mod::OUT_PORT),
                flags: u16_at(bytes, layout::flow_mod::FLAGS),
                actions: parse_actions(&bytes[layout::flow_mod::ACTIONS..])?,
            }
        }
        msg_type::STATS_REQUEST => {
            if bytes.len() < layout::stats_request::FIXED_SIZE {
                return Err(ParseError::TruncatedBody(mtype));
            }
            Message::StatsRequest {
                stype: u16_at(bytes, layout::stats_request::TYPE),
                flags: u16_at(bytes, layout::stats_request::FLAGS),
                body: bytes[layout::stats_request::BODY..].to_vec(),
            }
        }
        msg_type::QUEUE_GET_CONFIG_REQUEST => {
            if bytes.len() < layout::queue_config_request::SIZE {
                return Err(ParseError::TruncatedBody(mtype));
            }
            Message::QueueGetConfigRequest {
                port: u16_at(bytes, layout::queue_config_request::PORT),
            }
        }
        other => Message::Other {
            mtype: other,
            body: body.to_vec(),
        },
    };
    Ok(Parsed { xid, message })
}

fn push_action(out: &mut Vec<u8>, a: &RawAction) {
    out.extend_from_slice(&a.atype.to_be_bytes());
    out.extend_from_slice(&a.len.to_be_bytes());
    out.extend_from_slice(&a.args);
}

/// Reassemble the wire bytes of a parsed message: the inverse of [`parse`].
///
/// For every byte string accepted by [`parse`] with a canonical body
/// (no trailing slack beyond the declared structs), `unparse(&parse(b)?)`
/// returns `b` exactly. The witness distillation pipeline uses this
/// round-trip as its wire-validity oracle: a distilled reproduction whose
/// bytes do not survive `parse` ∘ `unparse` losslessly is *not* a valid
/// canonical OpenFlow 1.0 message and is reported unconfirmed.
pub fn unparse(p: &Parsed) -> Vec<u8> {
    let (mtype, body): (u8, Vec<u8>) = match &p.message {
        Message::Hello => (msg_type::HELLO, Vec::new()),
        Message::EchoRequest(b) => (msg_type::ECHO_REQUEST, b.clone()),
        Message::EchoReply(b) => (msg_type::ECHO_REPLY, b.clone()),
        Message::FeaturesRequest => (msg_type::FEATURES_REQUEST, Vec::new()),
        Message::GetConfigRequest => (msg_type::GET_CONFIG_REQUEST, Vec::new()),
        Message::BarrierRequest => (msg_type::BARRIER_REQUEST, Vec::new()),
        Message::SetConfig {
            flags,
            miss_send_len,
        } => {
            let mut b = Vec::new();
            b.extend_from_slice(&flags.to_be_bytes());
            b.extend_from_slice(&miss_send_len.to_be_bytes());
            (msg_type::SET_CONFIG, b)
        }
        Message::PacketOut {
            buffer_id,
            in_port,
            actions,
            data,
        } => {
            let mut b = Vec::new();
            b.extend_from_slice(&buffer_id.to_be_bytes());
            b.extend_from_slice(&in_port.to_be_bytes());
            let actions_len: usize = actions.iter().map(|a| a.len as usize).sum();
            b.extend_from_slice(&(actions_len as u16).to_be_bytes());
            for a in actions {
                push_action(&mut b, a);
            }
            b.extend_from_slice(data);
            (msg_type::PACKET_OUT, b)
        }
        Message::FlowMod {
            match_bytes,
            cookie,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            flags,
            actions,
        } => {
            let mut b = Vec::new();
            b.extend_from_slice(match_bytes);
            b.extend_from_slice(&cookie.to_be_bytes());
            b.extend_from_slice(&command.to_be_bytes());
            b.extend_from_slice(&idle_timeout.to_be_bytes());
            b.extend_from_slice(&hard_timeout.to_be_bytes());
            b.extend_from_slice(&priority.to_be_bytes());
            b.extend_from_slice(&buffer_id.to_be_bytes());
            b.extend_from_slice(&out_port.to_be_bytes());
            b.extend_from_slice(&flags.to_be_bytes());
            for a in actions {
                push_action(&mut b, a);
            }
            (msg_type::FLOW_MOD, b)
        }
        Message::StatsRequest { stype, flags, body } => {
            let mut b = Vec::new();
            b.extend_from_slice(&stype.to_be_bytes());
            b.extend_from_slice(&flags.to_be_bytes());
            b.extend_from_slice(body);
            (msg_type::STATS_REQUEST, b)
        }
        Message::QueueGetConfigRequest { port } => {
            let mut b = Vec::new();
            b.extend_from_slice(&port.to_be_bytes());
            b.extend_from_slice(&[0, 0]); // pad
            (msg_type::QUEUE_GET_CONFIG_REQUEST, b)
        }
        Message::Other { mtype, body } => (*mtype, body.clone()),
    };
    let mut out = Vec::with_capacity(layout::header::SIZE + body.len());
    out.push(OFP_VERSION);
    out.push(mtype);
    out.extend_from_slice(&((layout::header::SIZE + body.len()) as u16).to_be_bytes());
    out.extend_from_slice(&p.xid.to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// `parse` then `unparse`: true when `bytes` is a canonical, losslessly
/// round-trippable OpenFlow 1.0 message.
pub fn roundtrips(bytes: &[u8]) -> bool {
    matches!(parse(bytes), Ok(p) if unparse(&p) == bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{self, ActionSpec, FlowModSpec};

    #[test]
    fn parses_header_only_messages() {
        let m = builder::hello(7).as_concrete().unwrap();
        let p = parse(&m).unwrap();
        assert_eq!(p.xid, 7);
        assert_eq!(p.message, Message::Hello);

        for (msg, expect) in builder::concrete_suite(1).iter().zip([
            Message::EchoRequest(vec![]),
            Message::FeaturesRequest,
            Message::GetConfigRequest,
            Message::BarrierRequest,
        ]) {
            let p = parse(&msg.as_concrete().unwrap()).unwrap();
            assert_eq!(p.message, expect);
        }
    }

    #[test]
    fn parses_concrete_flow_mod() {
        let built = builder::flow_mod("pt0", &FlowModSpec::concrete_add(3));
        let bytes = built.as_concrete().expect("concrete_add is concrete");
        let p = parse(&bytes).unwrap();
        match p.message {
            Message::FlowMod {
                command,
                priority,
                buffer_id,
                actions,
                ..
            } => {
                assert_eq!(command, 0);
                assert_eq!(priority, 0x8000);
                assert_eq!(buffer_id, crate::consts::NO_BUFFER);
                assert_eq!(actions.len(), 1);
                assert_eq!(actions[0].atype, crate::consts::action::OUTPUT);
                assert_eq!(&actions[0].args[..2], &3u16.to_be_bytes());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_packet_out_payload() {
        let payload = [0xaa, 0xbb, 0xcc];
        let mut m = builder::packet_out("pt1", &[ActionSpec::Output(2)], &payload);
        m.set_u32(8, 5);
        m.set_u16(12, 1);
        let p = parse(&m.as_concrete().unwrap()).unwrap();
        match p.message {
            Message::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                assert_eq!(buffer_id, 5);
                assert_eq!(in_port, 1);
                assert_eq!(actions.len(), 1);
                assert_eq!(data, payload);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn framing_errors() {
        assert_eq!(parse(&[1, 0, 0]), Err(ParseError::TooShort));
        assert_eq!(
            parse(&[9, 0, 0, 8, 0, 0, 0, 0]),
            Err(ParseError::BadVersion(9))
        );
        assert_eq!(
            parse(&[1, 0, 0, 12, 0, 0, 0, 0]),
            Err(ParseError::LengthMismatch {
                declared: 12,
                actual: 8
            })
        );
    }

    #[test]
    fn truncated_bodies_rejected() {
        // Set config needs 12 bytes; declare 10 honestly.
        let mut b = vec![1, msg_type::SET_CONFIG, 0, 10, 0, 0, 0, 0, 0, 0];
        b[3] = 10;
        assert_eq!(
            parse(&b),
            Err(ParseError::TruncatedBody(msg_type::SET_CONFIG))
        );
    }

    #[test]
    fn unparse_round_trips_builder_messages() {
        let mut msgs = vec![builder::hello(7).as_concrete().unwrap()];
        msgs.extend(
            builder::concrete_suite(3)
                .iter()
                .map(|m| m.as_concrete().unwrap()),
        );
        msgs.push(
            builder::flow_mod("rt0", &FlowModSpec::concrete_add(3))
                .as_concrete()
                .unwrap(),
        );
        let mut po = builder::packet_out("rt1", &[ActionSpec::Output(2)], &[0xaa, 0xbb]);
        po.set_u32(8, crate::consts::NO_BUFFER);
        po.set_u16(12, 1);
        msgs.push(po.as_concrete().unwrap());
        for b in msgs {
            assert!(roundtrips(&b), "lossy round-trip for {b:02x?}");
            assert_eq!(unparse(&parse(&b).unwrap()), b);
        }
    }

    #[test]
    fn unparse_rejects_non_canonical_framing() {
        // Queue-config with a nonzero pad byte parses (the parser is
        // tolerant) but does not round-trip (the pad is not preserved).
        let b = vec![
            1,
            msg_type::QUEUE_GET_CONFIG_REQUEST,
            0,
            12,
            0,
            0,
            0,
            0,
            0,
            1,
            0xaa,
            0,
        ];
        assert!(parse(&b).is_ok());
        assert!(!roundtrips(&b));
        // A malformed message does not round-trip either.
        assert!(!roundtrips(&[1, 0, 0]));
    }

    #[test]
    fn unknown_types_kept_raw() {
        let b = vec![1, 42, 0, 9, 0, 0, 0, 1, 0xee];
        let p = parse(&b).unwrap();
        assert_eq!(
            p.message,
            Message::Other {
                mtype: 42,
                body: vec![0xee]
            }
        );
    }
}
