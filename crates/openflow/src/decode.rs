//! Incremental, resumable OpenFlow frame decoding.
//!
//! [`parse`](crate::parse::parse) validates one *complete* message buffer;
//! this module solves the prior problem: carving complete frames out of a
//! TCP byte stream that arrives in arbitrary fragments. The decoder is
//! push-based and resumable — feed it whatever `read` returned (even one
//! byte at a time) and pop frames as they complete. Partial frames stay
//! buffered across calls, so a reader interrupted mid-frame loses nothing.
//!
//! Framing comes from the OpenFlow 1.0 header alone: byte 2..4 carry the
//! big-endian total message length. A declared length shorter than the
//! 8-byte header can never frame a valid message and would desynchronize
//! the stream permanently, so it is a hard [`DecodeError`] — the caller
//! must drop the connection rather than guess at message boundaries.

/// Byte length of the fixed OpenFlow header.
pub const HEADER_LEN: usize = 8;

/// Why a byte stream cannot be framed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The header declares a length shorter than the header itself; no
    /// consistent framing of the remaining stream exists.
    RuntLength {
        /// The declared `ofp_header.length`.
        declared: u16,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::RuntLength { declared } => write!(
                f,
                "header declares length {declared} < {HEADER_LEN}; stream framing is lost"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Push-based OpenFlow frame reassembler.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw stream bytes (whatever the last `read` produced).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one is buffered. `Ok(None)` means
    /// more bytes are needed; call [`push`](Self::push) and try again.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, DecodeError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared = u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize;
        if declared < HEADER_LEN {
            return Err(DecodeError::RuntLength {
                declared: declared as u16,
            });
        }
        if self.buf.len() < declared {
            return Ok(None);
        }
        let rest = self.buf.split_off(declared);
        let frame = std::mem::replace(&mut self.buf, rest);
        Ok(Some(frame))
    }

    /// True if bytes of an incomplete frame are pending — an EOF here is a
    /// torn frame, not a clean close.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Number of buffered (not yet framed) bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Abandon framing and recover the raw buffered bytes, leaving the
    /// decoder empty. Used by pass-through layers that must hand an
    /// unframable or torn tail downstream verbatim.
    pub fn take_buffered(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

/// The `ofp_header.type` byte of a complete frame.
pub fn frame_type(frame: &[u8]) -> u8 {
    frame.get(1).copied().unwrap_or(0)
}

/// The `ofp_header.xid` of a complete frame.
pub fn frame_xid(frame: &[u8]) -> u32 {
    match frame.get(4..8) {
        Some(b) => u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(t: u8, len: u16, xid: u32, pad_to: usize) -> Vec<u8> {
        let mut m = vec![crate::consts::OFP_VERSION, t];
        m.extend_from_slice(&len.to_be_bytes());
        m.extend_from_slice(&xid.to_be_bytes());
        m.resize(pad_to, 0);
        m
    }

    #[test]
    fn whole_frame_pops_at_once() {
        let mut d = FrameDecoder::new();
        let m = msg(2, 12, 7, 12);
        d.push(&m);
        assert_eq!(d.next_frame().unwrap(), Some(m.clone()));
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(!d.mid_frame());
        assert_eq!(frame_type(&m), 2);
        assert_eq!(frame_xid(&m), 7);
    }

    #[test]
    fn one_byte_at_a_time_reassembles() {
        let mut d = FrameDecoder::new();
        let m = msg(0, 16, 0xdead_beef, 16);
        for (i, b) in m.iter().enumerate() {
            assert_eq!(d.next_frame().unwrap(), None, "frame popped early at {i}");
            d.push(&[*b]);
            assert!(d.mid_frame());
        }
        assert_eq!(d.next_frame().unwrap(), Some(m));
        assert!(!d.mid_frame());
    }

    #[test]
    fn coalesced_frames_split_correctly() {
        let mut d = FrameDecoder::new();
        let a = msg(2, 8, 1, 8);
        let b = msg(3, 10, 2, 10);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        joined.extend_from_slice(&b[..3]); // trailing partial frame
        d.push(&joined);
        assert_eq!(d.next_frame().unwrap(), Some(a));
        assert_eq!(d.next_frame().unwrap(), Some(b.clone()));
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(d.mid_frame());
        assert_eq!(d.buffered(), 3);
        d.push(&b[3..]);
        assert_eq!(d.next_frame().unwrap(), Some(b));
    }

    #[test]
    fn runt_length_is_fatal() {
        let mut d = FrameDecoder::new();
        d.push(&msg(2, 7, 0, 8));
        assert_eq!(d.next_frame(), Err(DecodeError::RuntLength { declared: 7 }));
    }
}
