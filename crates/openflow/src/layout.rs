//! Wire-format struct offsets and sizes for OpenFlow 1.0.
//!
//! All offsets are byte offsets from the start of the enclosing struct.
//! Field reads over [`soft_sym::SymBuf`] use these constants, so agent code
//! reads fields by name instead of magic numbers.

/// `ofp_header`: version(1) type(1) length(2) xid(4).
pub mod header {
    /// Total header size.
    pub const SIZE: usize = 8;
    /// Protocol version byte.
    pub const VERSION: usize = 0;
    /// Message type byte.
    pub const TYPE: usize = 1;
    /// Total message length (u16).
    pub const LENGTH: usize = 2;
    /// Transaction id (u32).
    pub const XID: usize = 4;
}

/// `ofp_match` (40 bytes), embedded in flow_mod / flow stats requests.
pub mod ofp_match {
    /// Total struct size.
    pub const SIZE: usize = 40;
    /// Wildcard flags (u32).
    pub const WILDCARDS: usize = 0;
    /// Input switch port (u16).
    pub const IN_PORT: usize = 4;
    /// Ethernet source address (6 bytes).
    pub const DL_SRC: usize = 6;
    /// Ethernet destination address (6 bytes).
    pub const DL_DST: usize = 12;
    /// Input VLAN id (u16).
    pub const DL_VLAN: usize = 18;
    /// Input VLAN priority (u8).
    pub const DL_VLAN_PCP: usize = 20;
    /// (1 byte pad at 21.)
    /// Ethernet frame type (u16).
    pub const DL_TYPE: usize = 22;
    /// IP ToS, actually DSCP field (u8).
    pub const NW_TOS: usize = 24;
    /// IP protocol or lower 8 bits of ARP opcode (u8).
    pub const NW_PROTO: usize = 25;
    /// (2 bytes pad at 26.)
    /// IP source address (u32).
    pub const NW_SRC: usize = 28;
    /// IP destination address (u32).
    pub const NW_DST: usize = 32;
    /// TCP/UDP source port (u16).
    pub const TP_SRC: usize = 36;
    /// TCP/UDP destination port (u16).
    pub const TP_DST: usize = 38;
}

/// `ofp_flow_mod` (72 bytes before the action list).
pub mod flow_mod {
    /// Offset of the embedded ofp_match.
    pub const MATCH: usize = 8;
    /// Opaque controller cookie (u64).
    pub const COOKIE: usize = 48;
    /// Flow mod command (u16).
    pub const COMMAND: usize = 56;
    /// Idle time before discarding, seconds (u16).
    pub const IDLE_TIMEOUT: usize = 58;
    /// Max time before discarding, seconds (u16).
    pub const HARD_TIMEOUT: usize = 60;
    /// Priority level (u16).
    pub const PRIORITY: usize = 62;
    /// Buffered packet to apply to, or 0xffffffff (u32).
    pub const BUFFER_ID: usize = 64;
    /// For DELETE*: require matching entries to output here (u16).
    pub const OUT_PORT: usize = 68;
    /// Flow mod flags (u16).
    pub const FLAGS: usize = 70;
    /// Start of the action list.
    pub const ACTIONS: usize = 72;
    /// Fixed-size prefix before the action list.
    pub const FIXED_SIZE: usize = 72;
}

/// `ofp_packet_out` (16 bytes before the action list).
pub mod packet_out {
    /// Buffered packet id, or 0xffffffff (u32).
    pub const BUFFER_ID: usize = 8;
    /// Packet's input port, or OFPP_NONE (u16).
    pub const IN_PORT: usize = 12;
    /// Size of the action list in bytes (u16).
    pub const ACTIONS_LEN: usize = 14;
    /// Start of the action list; packet data follows it.
    pub const ACTIONS: usize = 16;
    /// Fixed-size prefix before the action list.
    pub const FIXED_SIZE: usize = 16;
}

/// Action headers. Every OpenFlow 1.0 action starts with type(2) len(2).
pub mod action {
    /// Offset of the action type (u16).
    pub const TYPE: usize = 0;
    /// Offset of the action length (u16), multiple of 8.
    pub const LEN: usize = 2;
    /// All actions used in the evaluation are 8 bytes (ENQUEUE is 16).
    pub const BASE_SIZE: usize = 8;
    /// `ofp_action_output`: port (u16) at 4, max_len (u16) at 6.
    pub const OUTPUT_PORT: usize = 4;
    /// `ofp_action_output.max_len`.
    pub const OUTPUT_MAX_LEN: usize = 6;
    /// `ofp_action_vlan_vid.vlan_vid` (u16) at 4.
    pub const VLAN_VID: usize = 4;
    /// `ofp_action_vlan_pcp.vlan_pcp` (u8) at 4.
    pub const VLAN_PCP: usize = 4;
    /// `ofp_action_dl_addr.dl_addr` (6 bytes) at 4.
    pub const DL_ADDR: usize = 4;
    /// `ofp_action_nw_addr.nw_addr` (u32) at 4.
    pub const NW_ADDR: usize = 4;
    /// `ofp_action_nw_tos.nw_tos` (u8) at 4.
    pub const NW_TOS: usize = 4;
    /// `ofp_action_tp_port.tp_port` (u16) at 4.
    pub const TP_PORT: usize = 4;
    /// `ofp_action_enqueue.port` (u16) at 4 (queue id u32 at 12, len 16).
    pub const ENQUEUE_PORT: usize = 4;
}

/// `ofp_switch_config`: header + flags(2) + miss_send_len(2).
pub mod switch_config {
    /// Total message size.
    pub const SIZE: usize = 12;
    /// Fragment handling flags (u16).
    pub const FLAGS: usize = 8;
    /// Max bytes of new flow that datapath sends to controller (u16).
    pub const MISS_SEND_LEN: usize = 10;
}

/// `ofp_stats_request`: header + type(2) + flags(2) + body.
pub mod stats_request {
    /// Fixed-size prefix before the body.
    pub const FIXED_SIZE: usize = 12;
    /// Statistics type (u16).
    pub const TYPE: usize = 8;
    /// Flags (u16), none defined for requests in 1.0.
    pub const FLAGS: usize = 10;
    /// Body start (e.g. ofp_flow_stats_request).
    pub const BODY: usize = 12;
    /// `ofp_flow_stats_request`: match(40) + table_id(1) + pad(1) + out_port(2).
    pub const FLOW_BODY_SIZE: usize = 44;
    /// Offset of table_id within the flow stats body.
    pub const FLOW_TABLE_ID: usize = BODY + 40;
    /// Offset of out_port within the flow stats body.
    pub const FLOW_OUT_PORT: usize = BODY + 42;
}

/// `ofp_queue_get_config_request`: header + port(2) + pad(2).
pub mod queue_config_request {
    /// Total message size.
    pub const SIZE: usize = 12;
    /// Port to query (u16).
    pub const PORT: usize = 8;
}

/// Field-boundary enumeration over concrete message bytes.
///
/// The witness minimizer shrinks free bytes *field-wise* — canonicalizing
/// a whole `buffer_id` or `wildcards` at once before falling back to
/// single bytes — so it needs the byte ranges of every protocol field for
/// a given message. Spans are derived from the struct offsets above;
/// bytes not covered by a known field (unknown message types, packet-out
/// payload) fall back to single-byte spans.
pub mod spans {
    use super::*;
    use crate::consts::msg_type;

    fn push_match(s: &mut Vec<(usize, usize)>, base: usize) {
        for (off, width) in [
            (ofp_match::WILDCARDS, 4),
            (ofp_match::IN_PORT, 2),
            (ofp_match::DL_SRC, 6),
            (ofp_match::DL_DST, 6),
            (ofp_match::DL_VLAN, 2),
            (ofp_match::DL_VLAN_PCP, 1),
            (ofp_match::DL_VLAN_PCP + 1, 1), // pad
            (ofp_match::DL_TYPE, 2),
            (ofp_match::NW_TOS, 1),
            (ofp_match::NW_PROTO, 1),
            (ofp_match::NW_PROTO + 1, 2), // pad
            (ofp_match::NW_SRC, 4),
            (ofp_match::NW_DST, 4),
            (ofp_match::TP_SRC, 2),
            (ofp_match::TP_DST, 2),
        ] {
            s.push((base + off, base + off + width));
        }
    }

    /// One 8-byte action slot at `off`: type(2) len(2) arg(2) arg(2).
    fn push_action(s: &mut Vec<(usize, usize)>, off: usize) {
        s.push((off + action::TYPE, off + action::TYPE + 2));
        s.push((off + action::LEN, off + action::LEN + 2));
        s.push((off + 4, off + 6));
        s.push((off + 6, off + 8));
    }

    /// Byte ranges `(start, end)` of the protocol fields of one concrete
    /// message, covering `[0, bytes.len())` exactly: contiguous,
    /// non-overlapping, sorted by offset. Bytes outside any known field
    /// are returned as single-byte spans.
    pub fn message_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
        let len = bytes.len();
        let mut s: Vec<(usize, usize)> = Vec::new();
        if len >= header::SIZE {
            s.push((header::VERSION, header::VERSION + 1));
            s.push((header::TYPE, header::TYPE + 1));
            s.push((header::LENGTH, header::LENGTH + 2));
            s.push((header::XID, header::XID + 4));
            match bytes[header::TYPE] {
                msg_type::SET_CONFIG if len >= switch_config::SIZE => {
                    s.push((switch_config::FLAGS, switch_config::FLAGS + 2));
                    s.push((
                        switch_config::MISS_SEND_LEN,
                        switch_config::MISS_SEND_LEN + 2,
                    ));
                }
                msg_type::PACKET_OUT if len >= packet_out::FIXED_SIZE => {
                    s.push((packet_out::BUFFER_ID, packet_out::BUFFER_ID + 4));
                    s.push((packet_out::IN_PORT, packet_out::IN_PORT + 2));
                    s.push((packet_out::ACTIONS_LEN, packet_out::ACTIONS_LEN + 2));
                    let actions_len = u16::from_be_bytes([
                        bytes[packet_out::ACTIONS_LEN],
                        bytes[packet_out::ACTIONS_LEN + 1],
                    ]) as usize;
                    let actions_end = (packet_out::ACTIONS + actions_len).min(len);
                    let mut off = packet_out::ACTIONS;
                    while off + action::BASE_SIZE <= actions_end {
                        push_action(&mut s, off);
                        off += action::BASE_SIZE;
                    }
                    // Payload data after the action list: single bytes.
                }
                msg_type::FLOW_MOD if len >= flow_mod::FIXED_SIZE => {
                    push_match(&mut s, flow_mod::MATCH);
                    s.push((flow_mod::COOKIE, flow_mod::COOKIE + 8));
                    s.push((flow_mod::COMMAND, flow_mod::COMMAND + 2));
                    s.push((flow_mod::IDLE_TIMEOUT, flow_mod::IDLE_TIMEOUT + 2));
                    s.push((flow_mod::HARD_TIMEOUT, flow_mod::HARD_TIMEOUT + 2));
                    s.push((flow_mod::PRIORITY, flow_mod::PRIORITY + 2));
                    s.push((flow_mod::BUFFER_ID, flow_mod::BUFFER_ID + 4));
                    s.push((flow_mod::OUT_PORT, flow_mod::OUT_PORT + 2));
                    s.push((flow_mod::FLAGS, flow_mod::FLAGS + 2));
                    let mut off = flow_mod::ACTIONS;
                    while off + action::BASE_SIZE <= len {
                        push_action(&mut s, off);
                        off += action::BASE_SIZE;
                    }
                }
                msg_type::STATS_REQUEST if len >= stats_request::FIXED_SIZE => {
                    s.push((stats_request::TYPE, stats_request::TYPE + 2));
                    s.push((stats_request::FLAGS, stats_request::FLAGS + 2));
                    if len == stats_request::FIXED_SIZE + stats_request::FLOW_BODY_SIZE {
                        push_match(&mut s, stats_request::BODY);
                        s.push((
                            stats_request::FLOW_TABLE_ID,
                            stats_request::FLOW_TABLE_ID + 1,
                        ));
                        s.push((
                            stats_request::FLOW_TABLE_ID + 1,
                            stats_request::FLOW_TABLE_ID + 2,
                        )); // pad
                        s.push((
                            stats_request::FLOW_OUT_PORT,
                            stats_request::FLOW_OUT_PORT + 2,
                        ));
                    }
                }
                msg_type::QUEUE_GET_CONFIG_REQUEST if len >= queue_config_request::SIZE => {
                    s.push((queue_config_request::PORT, queue_config_request::PORT + 2));
                    s.push((
                        queue_config_request::PORT + 2,
                        queue_config_request::PORT + 4,
                    ));
                    // pad
                }
                _ => {}
            }
        }
        // Keep only spans fully inside the message, then fill every
        // uncovered byte with a single-byte span.
        s.retain(|&(_, end)| end <= len);
        let mut covered = vec![false; len];
        for &(a, b) in &s {
            for c in covered.iter_mut().take(b).skip(a) {
                *c = true;
            }
        }
        for (i, c) in covered.iter().enumerate() {
            if !*c {
                s.push((i, i + 1));
            }
        }
        s.sort_unstable();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_sizes_match_spec() {
        assert_eq!(header::SIZE, 8);
        assert_eq!(ofp_match::SIZE, 40);
        assert_eq!(flow_mod::FIXED_SIZE, 72);
        assert_eq!(packet_out::FIXED_SIZE, 16);
        assert_eq!(switch_config::SIZE, 12);
        assert_eq!(stats_request::FIXED_SIZE, 12);
    }

    #[test]
    fn match_field_offsets_are_contiguous() {
        assert_eq!(ofp_match::IN_PORT, 4);
        assert_eq!(ofp_match::DL_SRC + 6, ofp_match::DL_DST);
        assert_eq!(ofp_match::DL_DST + 6, ofp_match::DL_VLAN);
        assert_eq!(ofp_match::TP_DST + 2, ofp_match::SIZE);
    }

    #[test]
    fn flow_mod_layout_is_contiguous() {
        assert_eq!(flow_mod::MATCH + ofp_match::SIZE, flow_mod::COOKIE);
        assert_eq!(flow_mod::COOKIE + 8, flow_mod::COMMAND);
        assert_eq!(flow_mod::FLAGS + 2, flow_mod::ACTIONS);
    }

    /// Spans must partition the message exactly: contiguous, sorted,
    /// non-overlapping, covering every byte.
    fn assert_partition(bytes: &[u8]) {
        let s = spans::message_spans(bytes);
        let mut expect = 0;
        for &(a, b) in &s {
            assert_eq!(a, expect, "gap or overlap at {a} in {s:?}");
            assert!(b > a);
            expect = b;
        }
        assert_eq!(expect, bytes.len(), "spans must cover the whole message");
    }

    #[test]
    fn spans_partition_every_message_shape() {
        use crate::consts::msg_type;
        // hello, queue config, set config, stats(flow), flow_mod+1 action,
        // packet_out with 2 actions + 3 payload bytes, unknown type, runt.
        let mk = |mtype: u8, body: usize| {
            let mut b = vec![1u8, mtype, 0, 0, 0, 0, 0, 0];
            b.extend(std::iter::repeat_n(0u8, body));
            let n = b.len() as u16;
            b[2..4].copy_from_slice(&n.to_be_bytes());
            b
        };
        assert_partition(&mk(msg_type::HELLO, 0));
        assert_partition(&mk(msg_type::QUEUE_GET_CONFIG_REQUEST, 4));
        assert_partition(&mk(msg_type::SET_CONFIG, 4));
        assert_partition(&mk(
            msg_type::STATS_REQUEST,
            4 + stats_request::FLOW_BODY_SIZE,
        ));
        assert_partition(&mk(msg_type::FLOW_MOD, 64 + action::BASE_SIZE));
        let mut po = mk(msg_type::PACKET_OUT, 8 + 2 * action::BASE_SIZE + 3);
        po[packet_out::ACTIONS_LEN + 1] = 2 * action::BASE_SIZE as u8;
        assert_partition(&po);
        assert_partition(&mk(42, 5));
        assert_partition(&[1, 0, 0]); // shorter than a header
    }

    #[test]
    fn spans_are_field_grained() {
        let mut qc = vec![1u8, 20, 0, 12, 0, 0, 0, 0, 0, 0, 0, 0];
        qc[3] = 12;
        let s = spans::message_spans(&qc);
        // version, type, length, xid, port, pad
        assert_eq!(s, vec![(0, 1), (1, 2), (2, 4), (4, 8), (8, 10), (10, 12)]);
    }
}
