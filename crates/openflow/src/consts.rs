//! OpenFlow 1.0 protocol constants.
//!
//! Transcribed from the OpenFlow Switch Specification v1.0.0 — the version
//! both agents in the paper's evaluation implement.

/// Protocol version byte for OpenFlow 1.0.
pub const OFP_VERSION: u8 = 0x01;

/// OpenFlow message types (`ofp_type`).
pub mod msg_type {
    /// Symmetric hello at connection setup.
    pub const HELLO: u8 = 0;
    /// Error notification.
    pub const ERROR: u8 = 1;
    /// Echo request (keep-alive).
    pub const ECHO_REQUEST: u8 = 2;
    /// Echo reply.
    pub const ECHO_REPLY: u8 = 3;
    /// Vendor extension.
    pub const VENDOR: u8 = 4;
    /// Controller asks for datapath features.
    pub const FEATURES_REQUEST: u8 = 5;
    /// Datapath features description.
    pub const FEATURES_REPLY: u8 = 6;
    /// Controller asks for current config.
    pub const GET_CONFIG_REQUEST: u8 = 7;
    /// Current config description.
    pub const GET_CONFIG_REPLY: u8 = 8;
    /// Controller sets switch config.
    pub const SET_CONFIG: u8 = 9;
    /// Packet forwarded to the controller.
    pub const PACKET_IN: u8 = 10;
    /// Flow removed notification.
    pub const FLOW_REMOVED: u8 = 11;
    /// Port status change notification.
    pub const PORT_STATUS: u8 = 12;
    /// Controller instructs the switch to send a packet.
    pub const PACKET_OUT: u8 = 13;
    /// Flow table modification.
    pub const FLOW_MOD: u8 = 14;
    /// Port modification.
    pub const PORT_MOD: u8 = 15;
    /// Statistics request.
    pub const STATS_REQUEST: u8 = 16;
    /// Statistics reply.
    pub const STATS_REPLY: u8 = 17;
    /// Barrier request.
    pub const BARRIER_REQUEST: u8 = 18;
    /// Barrier reply.
    pub const BARRIER_REPLY: u8 = 19;
    /// Queue configuration request.
    pub const QUEUE_GET_CONFIG_REQUEST: u8 = 20;
    /// Queue configuration reply.
    pub const QUEUE_GET_CONFIG_REPLY: u8 = 21;
}

/// Special port numbers (`ofp_port`), 16-bit in OpenFlow 1.0.
pub mod port {
    /// Maximum number of physical switch ports.
    pub const OFPP_MAX: u16 = 0xff00;
    /// Send back out the input port (must be explicit).
    pub const OFPP_IN_PORT: u16 = 0xfff8;
    /// Submit to the flow table (Packet Out only).
    pub const OFPP_TABLE: u16 = 0xfff9;
    /// Process with normal L2/L3 switching.
    pub const OFPP_NORMAL: u16 = 0xfffa;
    /// Flood along the minimum spanning tree, excluding the ingress port.
    pub const OFPP_FLOOD: u16 = 0xfffb;
    /// Send out all ports except the ingress port.
    pub const OFPP_ALL: u16 = 0xfffc;
    /// Send to the controller.
    pub const OFPP_CONTROLLER: u16 = 0xfffd;
    /// Local openflow "port".
    pub const OFPP_LOCAL: u16 = 0xfffe;
    /// Wildcard / not associated with any port.
    pub const OFPP_NONE: u16 = 0xffff;
}

/// Action types (`ofp_action_type`).
pub mod action {
    /// Output to switch port.
    pub const OUTPUT: u16 = 0;
    /// Set the 802.1q VLAN id.
    pub const SET_VLAN_VID: u16 = 1;
    /// Set the 802.1q priority.
    pub const SET_VLAN_PCP: u16 = 2;
    /// Strip the 802.1q header.
    pub const STRIP_VLAN: u16 = 3;
    /// Set ethernet source address.
    pub const SET_DL_SRC: u16 = 4;
    /// Set ethernet destination address.
    pub const SET_DL_DST: u16 = 5;
    /// Set IP source address.
    pub const SET_NW_SRC: u16 = 6;
    /// Set IP destination address.
    pub const SET_NW_DST: u16 = 7;
    /// Set IP ToS (DSCP field, 6 bits).
    pub const SET_NW_TOS: u16 = 8;
    /// Set TCP/UDP source port.
    pub const SET_TP_SRC: u16 = 9;
    /// Set TCP/UDP destination port.
    pub const SET_TP_DST: u16 = 10;
    /// Output to queue.
    pub const ENQUEUE: u16 = 11;
    /// Vendor extension action.
    pub const VENDOR: u16 = 0xffff;
}

/// Error types (`ofp_error_type`).
pub mod error_type {
    /// Hello protocol failed.
    pub const HELLO_FAILED: u16 = 0;
    /// Request was not understood.
    pub const BAD_REQUEST: u16 = 1;
    /// Error in action description.
    pub const BAD_ACTION: u16 = 2;
    /// Problem modifying flow entry.
    pub const FLOW_MOD_FAILED: u16 = 3;
    /// Problem modifying port.
    pub const PORT_MOD_FAILED: u16 = 4;
    /// Queue operation failed.
    pub const QUEUE_OP_FAILED: u16 = 5;
}

/// `ofp_bad_request_code`.
pub mod bad_request {
    /// ofp_header.version not supported.
    pub const BAD_VERSION: u16 = 0;
    /// ofp_header.type not supported.
    pub const BAD_TYPE: u16 = 1;
    /// ofp_stats_request.type not supported.
    pub const BAD_STAT: u16 = 2;
    /// Vendor not supported.
    pub const BAD_VENDOR: u16 = 3;
    /// Vendor subtype not supported.
    pub const BAD_SUBTYPE: u16 = 4;
    /// Permissions error.
    pub const EPERM: u16 = 5;
    /// Wrong request length for type.
    pub const BAD_LEN: u16 = 6;
    /// Specified buffer has already been used.
    pub const BUFFER_EMPTY: u16 = 7;
    /// Specified buffer does not exist.
    pub const BUFFER_UNKNOWN: u16 = 8;
}

/// `ofp_bad_action_code`.
pub mod bad_action {
    /// Unknown action type.
    pub const BAD_TYPE: u16 = 0;
    /// Length problem in actions.
    pub const BAD_LEN: u16 = 1;
    /// Unknown vendor id specified.
    pub const BAD_VENDOR: u16 = 2;
    /// Unknown action type for vendor id.
    pub const BAD_VENDOR_TYPE: u16 = 3;
    /// Problem validating output action.
    pub const BAD_OUT_PORT: u16 = 4;
    /// Bad action argument.
    pub const BAD_ARGUMENT: u16 = 5;
    /// Permissions error.
    pub const EPERM: u16 = 6;
    /// Can't handle this many actions.
    pub const TOO_MANY: u16 = 7;
    /// Problem validating output queue.
    pub const BAD_QUEUE: u16 = 8;
}

/// `ofp_flow_mod_failed_code`.
pub mod flow_mod_failed {
    /// Flow not added because of full tables.
    pub const ALL_TABLES_FULL: u16 = 0;
    /// Attempted to add overlapping flow with CHECK_OVERLAP.
    pub const OVERLAP: u16 = 1;
    /// Permissions error.
    pub const EPERM: u16 = 2;
    /// Emergency flow mod has non-zero timeouts.
    pub const BAD_EMERG_TIMEOUT: u16 = 3;
    /// Unknown command.
    pub const BAD_COMMAND: u16 = 4;
    /// Unsupported action list.
    pub const UNSUPPORTED: u16 = 5;
}

/// `ofp_queue_op_failed_code`.
pub mod queue_op_failed {
    /// Invalid port (or port does not exist).
    pub const BAD_PORT: u16 = 0;
    /// Queue does not exist.
    pub const BAD_QUEUE: u16 = 1;
    /// Permissions error.
    pub const EPERM: u16 = 2;
}

/// Flow mod commands (`ofp_flow_mod_command`).
pub mod flow_mod_cmd {
    /// New flow.
    pub const ADD: u16 = 0;
    /// Modify all matching flows.
    pub const MODIFY: u16 = 1;
    /// Modify strictly matching flows.
    pub const MODIFY_STRICT: u16 = 2;
    /// Delete all matching flows.
    pub const DELETE: u16 = 3;
    /// Delete strictly matching flows.
    pub const DELETE_STRICT: u16 = 4;
}

/// Flow mod flags (`ofp_flow_mod_flags`).
pub mod flow_mod_flags {
    /// Send flow removed message when flow expires or is deleted.
    pub const SEND_FLOW_REM: u16 = 1 << 0;
    /// Check for overlapping entries first.
    pub const CHECK_OVERLAP: u16 = 1 << 1;
    /// Remark this is for emergency.
    pub const EMERG: u16 = 1 << 2;
}

/// Flow wildcards (`ofp_flow_wildcards`).
pub mod wildcards {
    /// Switch input port.
    pub const IN_PORT: u32 = 1 << 0;
    /// VLAN id.
    pub const DL_VLAN: u32 = 1 << 1;
    /// Ethernet source address.
    pub const DL_SRC: u32 = 1 << 2;
    /// Ethernet destination address.
    pub const DL_DST: u32 = 1 << 3;
    /// Ethernet frame type.
    pub const DL_TYPE: u32 = 1 << 4;
    /// IP protocol.
    pub const NW_PROTO: u32 = 1 << 5;
    /// TCP/UDP source port.
    pub const TP_SRC: u32 = 1 << 6;
    /// TCP/UDP destination port.
    pub const TP_DST: u32 = 1 << 7;
    /// IP source address wildcard bit shift (6-bit field).
    pub const NW_SRC_SHIFT: u32 = 8;
    /// IP source address wildcard bit count mask.
    pub const NW_SRC_MASK: u32 = 0x3f << NW_SRC_SHIFT;
    /// IP destination address wildcard bit shift (6-bit field).
    pub const NW_DST_SHIFT: u32 = 14;
    /// IP destination address wildcard bit count mask.
    pub const NW_DST_MASK: u32 = 0x3f << NW_DST_SHIFT;
    /// VLAN priority.
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    /// IP ToS (DSCP field).
    pub const NW_TOS: u32 = 1 << 21;
    /// Everything wildcarded.
    pub const ALL: u32 = (1 << 22) - 1;
}

/// Switch config flags (`ofp_config_flags`).
pub mod config_flags {
    /// No special handling for fragments.
    pub const FRAG_NORMAL: u16 = 0;
    /// Drop fragments.
    pub const FRAG_DROP: u16 = 1;
    /// Reassemble (only if OFPC_IP_REASM capability set).
    pub const FRAG_REASM: u16 = 2;
    /// Mask selecting the fragment-handling bits.
    pub const FRAG_MASK: u16 = 3;
}

/// Stats request/reply types (`ofp_stats_types`).
pub mod stats_type {
    /// Description of this OpenFlow switch.
    pub const DESC: u16 = 0;
    /// Individual flow statistics.
    pub const FLOW: u16 = 1;
    /// Aggregate flow statistics.
    pub const AGGREGATE: u16 = 2;
    /// Flow table statistics.
    pub const TABLE: u16 = 3;
    /// Physical port statistics.
    pub const PORT: u16 = 4;
    /// Queue statistics for a port.
    pub const QUEUE: u16 = 5;
    /// Vendor extension.
    pub const VENDOR: u16 = 0xffff;
}

/// `ofp_packet_in_reason`.
pub mod packet_in_reason {
    /// No matching flow.
    pub const NO_MATCH: u8 = 0;
    /// Action explicitly output to controller.
    pub const ACTION: u8 = 1;
}

/// Buffer id meaning "no buffer" in packet_out / flow_mod.
pub const NO_BUFFER: u32 = 0xffff_ffff;

/// Default miss_send_len (bytes of packet sent to controller on table miss).
pub const DEFAULT_MISS_SEND_LEN: u16 = 128;
