//! Symbolic test-message construction.
//!
//! This implements §3.2 of the paper: inputs are *structured* symbolic
//! messages. A message starts fully symbolic (every byte a fresh variable
//! named `{tag}.b{offset}`) and the fields that must be concrete for
//! tractable exploration — protocol version, message type, total length,
//! action-list geometry — are overwritten with constants. Anything left
//! symbolic keeps its byte variables, so path conditions from different
//! agents fed the same spec refer to the same variables and can be
//! conjoined by the crosschecking phase.

use crate::consts::{action, msg_type, OFP_VERSION};
use crate::layout;
use soft_sym::SymBuf;

/// How one action slot in an action list is constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionSpec {
    /// Fully symbolic action: type and argument bytes symbolic, length
    /// concretized to 8 (§3.2.1: "we predetermine the number of action
    /// items and the relative lengths as concrete values").
    Symbolic,
    /// An OUTPUT action with symbolic port and max_len.
    SymbolicOutput,
    /// Concrete OUTPUT action to the given port.
    Output(u16),
    /// Concrete SET_VLAN_VID action.
    SetVlanVid(u16),
    /// Concrete SET_VLAN_PCP action.
    SetVlanPcp(u8),
    /// Concrete SET_NW_TOS action.
    SetNwTos(u8),
    /// Concrete STRIP_VLAN action.
    StripVlan,
}

impl ActionSpec {
    fn write(&self, m: &mut SymBuf, off: usize) {
        // Every action slot is 8 bytes with a concrete length field.
        m.set_u16(off + layout::action::LEN, layout::action::BASE_SIZE as u16);
        match self {
            ActionSpec::Symbolic => {
                // type + 4 argument bytes stay symbolic
            }
            ActionSpec::SymbolicOutput => {
                m.set_u16(off + layout::action::TYPE, action::OUTPUT);
                // port and max_len stay symbolic
            }
            ActionSpec::Output(port) => {
                m.set_u16(off + layout::action::TYPE, action::OUTPUT);
                m.set_u16(off + layout::action::OUTPUT_PORT, *port);
                m.set_u16(off + layout::action::OUTPUT_MAX_LEN, 0);
            }
            ActionSpec::SetVlanVid(vid) => {
                m.set_u16(off + layout::action::TYPE, action::SET_VLAN_VID);
                m.set_u16(off + layout::action::VLAN_VID, *vid);
                m.set_u16(off + 6, 0);
            }
            ActionSpec::SetVlanPcp(pcp) => {
                m.set_u16(off + layout::action::TYPE, action::SET_VLAN_PCP);
                m.set_u8(off + layout::action::VLAN_PCP, *pcp);
                m.set_u8(off + 5, 0);
                m.set_u16(off + 6, 0);
            }
            ActionSpec::SetNwTos(tos) => {
                m.set_u16(off + layout::action::TYPE, action::SET_NW_TOS);
                m.set_u8(off + layout::action::NW_TOS, *tos);
                m.set_u8(off + 5, 0);
                m.set_u16(off + 6, 0);
            }
            ActionSpec::StripVlan => {
                m.set_u16(off + layout::action::TYPE, action::STRIP_VLAN);
                m.set_u32(off + 4, 0);
            }
        }
    }
}

/// How the 40-byte `ofp_match` of a flow mod is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMode {
    /// All 40 bytes symbolic.
    Symbolic,
    /// Concrete match wildcarding everything (the "Concrete Match"
    /// ablation variant of Table 5).
    WildcardAll,
    /// Ethernet-related fields symbolic; network/transport fields
    /// concretized and wildcarded (the "Eth FlowMod" test of Table 1).
    EthOnly,
}

fn write_header(m: &mut SymBuf, mtype: u8, len: u16, xid: u32) {
    m.set_u8(layout::header::VERSION, OFP_VERSION);
    m.set_u8(layout::header::TYPE, mtype);
    m.set_u16(layout::header::LENGTH, len);
    m.set_u32(layout::header::XID, xid);
}

/// An 8-byte concrete message with no body (Hello, Echo Request,
/// Features Request, Get Config Request, Barrier Request).
pub fn concrete_header_only(mtype: u8, xid: u32) -> SymBuf {
    let mut m = SymBuf::concrete(&[0; layout::header::SIZE]);
    write_header(&mut m, mtype, layout::header::SIZE as u16, xid);
    m
}

/// Hello message (sent by both sides at connection setup).
pub fn hello(xid: u32) -> SymBuf {
    concrete_header_only(msg_type::HELLO, xid)
}

/// The "Concrete" test of Table 1: the four concrete 8-byte messages that
/// have no variable fields.
pub fn concrete_suite(xid: u32) -> Vec<SymBuf> {
    vec![
        concrete_header_only(msg_type::ECHO_REQUEST, xid),
        concrete_header_only(msg_type::FEATURES_REQUEST, xid + 1),
        concrete_header_only(msg_type::GET_CONFIG_REQUEST, xid + 2),
        concrete_header_only(msg_type::BARRIER_REQUEST, xid + 3),
    ]
}

/// Symbolic Packet Out (Table 1 "Packet Out"): concrete header and action
/// geometry; buffer_id, in_port and action arguments symbolic; `payload`
/// appended as the packet data.
pub fn packet_out(tag: &str, actions: &[ActionSpec], payload: &[u8]) -> SymBuf {
    let actions_len = actions.len() * layout::action::BASE_SIZE;
    let total = layout::packet_out::FIXED_SIZE + actions_len + payload.len();
    let mut m = SymBuf::symbolic(tag, total);
    write_header(&mut m, msg_type::PACKET_OUT, total as u16, 0);
    m.set_u16(layout::packet_out::ACTIONS_LEN, actions_len as u16);
    for (i, a) in actions.iter().enumerate() {
        a.write(
            &mut m,
            layout::packet_out::ACTIONS + i * layout::action::BASE_SIZE,
        );
    }
    let data_off = layout::packet_out::FIXED_SIZE + actions_len;
    for (i, &b) in payload.iter().enumerate() {
        m.set_u8(data_off + i, b);
    }
    m
}

/// Options for building a (partially) symbolic Flow Mod.
#[derive(Debug, Clone)]
pub struct FlowModSpec {
    /// Match construction mode.
    pub match_mode: MatchMode,
    /// Action slots.
    pub actions: Vec<ActionSpec>,
    /// Concretize the command field (None = symbolic).
    pub command: Option<u16>,
    /// Concretize the buffer id (None = symbolic).
    pub buffer_id: Option<u32>,
    /// Concretize the priority (None = symbolic).
    pub priority: Option<u16>,
    /// Concretize idle/hard timeouts (None = symbolic).
    pub timeouts: Option<(u16, u16)>,
    /// Concretize the flags field (None = symbolic).
    pub flags: Option<u16>,
    /// Concretize the out_port field (None = symbolic).
    pub out_port: Option<u16>,
    /// Concretize the cookie (None = symbolic).
    pub cookie: Option<u64>,
}

impl FlowModSpec {
    /// The Table 1 "FlowMod" test: symbolic match, 1 symbolic action and a
    /// symbolic output action, everything else pinned to an ADD of an
    /// unbuffered flow (keeping the focus on match/action handling).
    pub fn symbolic_default() -> FlowModSpec {
        FlowModSpec {
            match_mode: MatchMode::Symbolic,
            actions: vec![ActionSpec::Symbolic, ActionSpec::SymbolicOutput],
            command: None,
            buffer_id: None,
            priority: Some(0x8000),
            timeouts: Some((0, 0)),
            flags: None,
            out_port: Some(crate::consts::port::OFPP_NONE),
            cookie: Some(0),
        }
    }

    /// The Table 1 "Eth FlowMod" test: non-Ethernet fields concretized.
    pub fn eth_default() -> FlowModSpec {
        FlowModSpec {
            match_mode: MatchMode::EthOnly,
            ..FlowModSpec::symbolic_default()
        }
    }

    /// A fully concrete ADD flow mod (first message of "CS FlowMods").
    pub fn concrete_add(out_port: u16) -> FlowModSpec {
        FlowModSpec {
            match_mode: MatchMode::WildcardAll,
            actions: vec![ActionSpec::Output(out_port)],
            command: Some(crate::consts::flow_mod_cmd::ADD),
            buffer_id: Some(crate::consts::NO_BUFFER),
            priority: Some(0x8000),
            timeouts: Some((0, 0)),
            flags: Some(0),
            out_port: Some(crate::consts::port::OFPP_NONE),
            cookie: Some(0),
        }
    }
}

/// Build a Flow Mod message per `spec`, with symbolic bytes named from
/// `tag`.
pub fn flow_mod(tag: &str, spec: &FlowModSpec) -> SymBuf {
    use layout::flow_mod as fm;
    use layout::ofp_match as om;
    let actions_len = spec.actions.len() * layout::action::BASE_SIZE;
    let total = fm::FIXED_SIZE + actions_len;
    let mut m = SymBuf::symbolic(tag, total);
    write_header(&mut m, msg_type::FLOW_MOD, total as u16, 0);
    match spec.match_mode {
        MatchMode::Symbolic => {}
        MatchMode::WildcardAll => {
            for i in 0..om::SIZE {
                m.set_u8(fm::MATCH + i, 0);
            }
            m.set_u32(fm::MATCH + om::WILDCARDS, crate::consts::wildcards::ALL);
        }
        MatchMode::EthOnly => {
            // Wildcards symbolic; nw/tp fields concretized to zero, pads
            // zeroed, dl fields left symbolic.
            m.set_u8(fm::MATCH + om::NW_TOS, 0);
            m.set_u8(fm::MATCH + om::NW_PROTO, 0);
            m.set_u16(fm::MATCH + 26, 0); // pad
            m.set_u32(fm::MATCH + om::NW_SRC, 0);
            m.set_u32(fm::MATCH + om::NW_DST, 0);
            m.set_u16(fm::MATCH + om::TP_SRC, 0);
            m.set_u16(fm::MATCH + om::TP_DST, 0);
            m.set_u8(fm::MATCH + 21, 0); // pad
        }
    }
    if let Some(c) = spec.cookie {
        m.set_u32(fm::COOKIE, (c >> 32) as u32);
        m.set_u32(fm::COOKIE + 4, c as u32);
    }
    if let Some(cmd) = spec.command {
        m.set_u16(fm::COMMAND, cmd);
    }
    if let Some((idle, hard)) = spec.timeouts {
        m.set_u16(fm::IDLE_TIMEOUT, idle);
        m.set_u16(fm::HARD_TIMEOUT, hard);
    }
    if let Some(p) = spec.priority {
        m.set_u16(fm::PRIORITY, p);
    }
    if let Some(b) = spec.buffer_id {
        m.set_u32(fm::BUFFER_ID, b);
    }
    if let Some(op) = spec.out_port {
        m.set_u16(fm::OUT_PORT, op);
    }
    if let Some(f) = spec.flags {
        m.set_u16(fm::FLAGS, f);
    }
    for (i, a) in spec.actions.iter().enumerate() {
        a.write(&mut m, fm::ACTIONS + i * layout::action::BASE_SIZE);
    }
    m
}

/// Symbolic Stats Request (Table 1 "Stats Request"): type, flags, and body
/// symbolic; sized to carry a flow-stats body so every request type is
/// reachable ("it covers all possible statistics requests").
pub fn stats_request(tag: &str) -> SymBuf {
    let total = layout::stats_request::FIXED_SIZE + layout::stats_request::FLOW_BODY_SIZE;
    let mut m = SymBuf::symbolic(tag, total);
    write_header(&mut m, msg_type::STATS_REQUEST, total as u16, 0);
    m
}

/// Symbolic Set Config (Table 1 "Set Config"): flags and miss_send_len
/// symbolic.
pub fn set_config(tag: &str) -> SymBuf {
    let mut m = SymBuf::symbolic(tag, layout::switch_config::SIZE);
    write_header(
        &mut m,
        msg_type::SET_CONFIG,
        layout::switch_config::SIZE as u16,
        0,
    );
    m
}

/// Symbolic Queue Get Config Request: port symbolic. (Drives the Reference
/// Switch's port-0 memory error, §5.1.2.)
pub fn queue_config_request(tag: &str) -> SymBuf {
    let mut m = SymBuf::symbolic(tag, layout::queue_config_request::SIZE);
    write_header(
        &mut m,
        msg_type::QUEUE_GET_CONFIG_REQUEST,
        layout::queue_config_request::SIZE as u16,
        0,
    );
    m
}

/// The Table 1 "Short Symb" test: a 10-byte message in which only the
/// version byte is concrete — even the type and length are symbolic.
pub fn short_symbolic(tag: &str) -> SymBuf {
    let mut m = SymBuf::symbolic(tag, 10);
    m.set_u8(layout::header::VERSION, OFP_VERSION);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::port;

    #[test]
    fn header_only_messages_are_concrete() {
        let h = hello(7);
        let bytes = h.as_concrete().expect("hello must be concrete");
        assert_eq!(bytes, vec![1, 0, 0, 8, 0, 0, 0, 7]);
        assert_eq!(concrete_suite(0).len(), 4);
        for m in concrete_suite(0) {
            assert!(m.as_concrete().is_some());
        }
    }

    #[test]
    fn packet_out_geometry() {
        let payload = [0xaa; 20];
        let m = packet_out(
            "po",
            &[ActionSpec::Symbolic, ActionSpec::SymbolicOutput],
            &payload,
        );
        assert_eq!(m.len(), 16 + 16 + 20);
        // Header concrete.
        assert_eq!(m.u8(0).as_bv_const(), Some(1));
        assert_eq!(m.u8(1).as_bv_const(), Some(13));
        assert_eq!(m.u16(2).as_bv_const(), Some(52));
        // actions_len concrete.
        assert_eq!(m.u16(14).as_bv_const(), Some(16));
        // buffer_id and in_port symbolic.
        assert!(m.u32(8).as_bv_const().is_none());
        assert!(m.u16(12).as_bv_const().is_none());
        // action 0: type symbolic, len concrete 8.
        assert!(m.u16(16).as_bv_const().is_none());
        assert_eq!(m.u16(18).as_bv_const(), Some(8));
        // action 1: type concrete OUTPUT, port symbolic.
        assert_eq!(m.u16(24).as_bv_const(), Some(0));
        assert!(m.u16(28).as_bv_const().is_none());
        // payload concrete.
        assert_eq!(m.u8(32).as_bv_const(), Some(0xaa));
    }

    #[test]
    fn flow_mod_symbolic_default() {
        let m = flow_mod("fm", &FlowModSpec::symbolic_default());
        assert_eq!(m.len(), 72 + 16);
        assert_eq!(m.u8(1).as_bv_const(), Some(14));
        // Match symbolic.
        assert!(m.u32(8).as_bv_const().is_none());
        // Command symbolic, priority concrete.
        assert!(m.u16(56).as_bv_const().is_none());
        assert_eq!(m.u16(62).as_bv_const(), Some(0x8000));
        assert_eq!(m.u16(68).as_bv_const(), Some(port::OFPP_NONE as u64));
    }

    #[test]
    fn flow_mod_concrete_add_is_fully_concrete() {
        let m = flow_mod("cfm", &FlowModSpec::concrete_add(3));
        assert!(
            m.as_concrete().is_some(),
            "concrete_add must have no symbolic bytes"
        );
    }

    #[test]
    fn eth_flow_mod_concretizes_network_fields() {
        let m = flow_mod("efm", &FlowModSpec::eth_default());
        use layout::flow_mod as fm;
        use layout::ofp_match as om;
        assert_eq!(m.u32(fm::MATCH + om::NW_SRC).as_bv_const(), Some(0));
        assert_eq!(m.u16(fm::MATCH + om::TP_DST).as_bv_const(), Some(0));
        // dl fields still symbolic
        assert!(m.u16(fm::MATCH + om::DL_VLAN).as_bv_const().is_none());
        assert!(m.u48(fm::MATCH + om::DL_SRC).as_bv_const().is_none());
    }

    #[test]
    fn stats_request_shape() {
        let m = stats_request("sr");
        assert_eq!(m.len(), 56);
        assert_eq!(m.u8(1).as_bv_const(), Some(16));
        assert!(m.u16(8).as_bv_const().is_none(), "stats type symbolic");
    }

    #[test]
    fn short_symbolic_only_version_concrete() {
        let m = short_symbolic("ss");
        assert_eq!(m.len(), 10);
        assert_eq!(m.u8(0).as_bv_const(), Some(1));
        for i in 1..10 {
            assert!(
                m.u8(i).as_bv_const().is_none(),
                "byte {i} should be symbolic"
            );
        }
    }

    #[test]
    fn variable_names_are_stable_across_builds() {
        // Two builds with the same tag must produce identical terms — the
        // cross-agent alignment property.
        let a = flow_mod("stable", &FlowModSpec::symbolic_default());
        let b = flow_mod("stable", &FlowModSpec::symbolic_default());
        assert_eq!(a, b);
    }
}
