//! Property-based tests for the message builders: every construction must
//! satisfy the wire-format invariants §3.2.1 relies on (concrete version,
//! type, length; length field equal to the actual byte count; concrete
//! action geometry).

use proptest::prelude::*;
use soft_openflow::builder::{self, ActionSpec, FlowModSpec, MatchMode};
use soft_openflow::consts::OFP_VERSION;
use soft_openflow::layout;

fn arb_action() -> impl Strategy<Value = ActionSpec> {
    prop_oneof![
        Just(ActionSpec::Symbolic),
        Just(ActionSpec::SymbolicOutput),
        any::<u16>().prop_map(ActionSpec::Output),
        (0u16..0x2000).prop_map(ActionSpec::SetVlanVid),
        any::<u8>().prop_map(ActionSpec::SetVlanPcp),
        any::<u8>().prop_map(ActionSpec::SetNwTos),
        Just(ActionSpec::StripVlan),
    ]
}

fn arb_flow_mod_spec() -> impl Strategy<Value = FlowModSpec> {
    (
        prop_oneof![
            Just(MatchMode::Symbolic),
            Just(MatchMode::WildcardAll),
            Just(MatchMode::EthOnly)
        ],
        proptest::collection::vec(arb_action(), 1..5),
        proptest::option::of(0u16..6),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u16>()),
        proptest::option::of((any::<u16>(), any::<u16>())),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(
            |(match_mode, actions, command, buffer_id, priority, timeouts, flags)| FlowModSpec {
                match_mode,
                actions,
                command,
                buffer_id,
                priority,
                timeouts,
                flags,
                out_port: Some(soft_openflow::consts::port::OFPP_NONE),
                cookie: Some(0),
            },
        )
}

/// Structural invariants every built message must satisfy.
fn check_invariants(m: &soft_sym::SymBuf, expected_type: u8) {
    assert_eq!(m.u8(0).as_bv_const(), Some(OFP_VERSION as u64), "version concrete");
    assert_eq!(m.u8(1).as_bv_const(), Some(expected_type as u64), "type concrete");
    assert_eq!(
        m.u16(2).as_bv_const(),
        Some(m.len() as u64),
        "length field equals actual length"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flow mods always have concrete framing and concrete 8-byte action
    /// slot lengths, for any spec.
    #[test]
    fn flow_mod_invariants(spec in arb_flow_mod_spec()) {
        let m = builder::flow_mod("bp0", &spec);
        check_invariants(&m, soft_openflow::consts::msg_type::FLOW_MOD);
        prop_assert_eq!(
            (m.len() - layout::flow_mod::FIXED_SIZE) % layout::action::BASE_SIZE,
            0
        );
        // Every action slot's length field is the concrete 8.
        let n = (m.len() - layout::flow_mod::FIXED_SIZE) / layout::action::BASE_SIZE;
        for i in 0..n {
            let off = layout::flow_mod::ACTIONS + i * layout::action::BASE_SIZE;
            prop_assert_eq!(m.u16(off + 2).as_bv_const(), Some(8));
        }
        // Concretized fields really are concrete.
        if spec.command.is_some() {
            prop_assert!(m.u16(layout::flow_mod::COMMAND).as_bv_const().is_some());
        } else {
            prop_assert!(m.u16(layout::flow_mod::COMMAND).as_bv_const().is_none());
        }
        if let Some(b) = spec.buffer_id {
            prop_assert_eq!(m.u32(layout::flow_mod::BUFFER_ID).as_bv_const(), Some(b as u64));
        }
    }

    /// Packet outs keep framing, action geometry and payload concrete.
    #[test]
    fn packet_out_invariants(
        actions in proptest::collection::vec(arb_action(), 0..4),
        payload in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        let m = builder::packet_out("bp1", &actions, &payload);
        check_invariants(&m, soft_openflow::consts::msg_type::PACKET_OUT);
        let alen = m.u16(layout::packet_out::ACTIONS_LEN).as_bv_const().unwrap() as usize;
        prop_assert_eq!(alen, actions.len() * 8);
        // Payload bytes are the concrete input.
        let off = layout::packet_out::FIXED_SIZE + alen;
        for (i, &b) in payload.iter().enumerate() {
            prop_assert_eq!(m.u8(off + i).as_bv_const(), Some(b as u64));
        }
    }

    /// Match-mode concretization touches exactly the promised fields.
    #[test]
    fn eth_only_match_keeps_dl_symbolic(actions in proptest::collection::vec(arb_action(), 1..3)) {
        let spec = FlowModSpec { actions, ..FlowModSpec::eth_default() };
        let m = builder::flow_mod("bp2", &spec);
        use layout::ofp_match as om;
        let base = layout::flow_mod::MATCH;
        // dl fields symbolic
        prop_assert!(m.u48(base + om::DL_SRC).as_bv_const().is_none());
        prop_assert!(m.u16(base + om::DL_VLAN).as_bv_const().is_none());
        // nw/tp fields concrete zero
        prop_assert_eq!(m.u32(base + om::NW_SRC).as_bv_const(), Some(0));
        prop_assert_eq!(m.u16(base + om::TP_SRC).as_bv_const(), Some(0));
    }

    /// Same tag, same spec => identical message (cross-agent alignment).
    #[test]
    fn builds_are_deterministic(spec in arb_flow_mod_spec()) {
        let a = builder::flow_mod("bp3", &spec);
        let b = builder::flow_mod("bp3", &spec);
        prop_assert_eq!(a, b);
    }
}
