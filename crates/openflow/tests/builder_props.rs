//! Randomized-but-deterministic tests for the message builders: every
//! construction must satisfy the wire-format invariants §3.2.1 relies on
//! (concrete version, type, length; length field equal to the actual byte
//! count; concrete action geometry). Specs come from seeded generators,
//! so each run checks the same corpus.

use soft_openflow::builder::{self, ActionSpec, FlowModSpec, MatchMode};
use soft_openflow::consts::OFP_VERSION;
use soft_openflow::layout;

/// splitmix64: deterministic stream from any seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn chance(&mut self) -> bool {
        self.below(2) == 0
    }
}

fn arb_action(rng: &mut Rng) -> ActionSpec {
    match rng.below(7) {
        0 => ActionSpec::Symbolic,
        1 => ActionSpec::SymbolicOutput,
        2 => ActionSpec::Output(rng.next() as u16),
        3 => ActionSpec::SetVlanVid(rng.below(0x2000) as u16),
        4 => ActionSpec::SetVlanPcp(rng.next() as u8),
        5 => ActionSpec::SetNwTos(rng.next() as u8),
        _ => ActionSpec::StripVlan,
    }
}

fn arb_actions(rng: &mut Rng, lo: usize, hi: usize) -> Vec<ActionSpec> {
    let n = lo + rng.below((hi - lo) as u64) as usize;
    (0..n).map(|_| arb_action(rng)).collect()
}

fn arb_flow_mod_spec(rng: &mut Rng) -> FlowModSpec {
    let match_mode = match rng.below(3) {
        0 => MatchMode::Symbolic,
        1 => MatchMode::WildcardAll,
        _ => MatchMode::EthOnly,
    };
    FlowModSpec {
        match_mode,
        actions: arb_actions(rng, 1, 5),
        command: rng.chance().then(|| rng.below(6) as u16),
        buffer_id: rng.chance().then(|| rng.next() as u32),
        priority: rng.chance().then(|| rng.next() as u16),
        timeouts: rng.chance().then(|| (rng.next() as u16, rng.next() as u16)),
        flags: rng.chance().then(|| rng.next() as u16),
        out_port: Some(soft_openflow::consts::port::OFPP_NONE),
        cookie: Some(0),
    }
}

/// Structural invariants every built message must satisfy.
fn check_invariants(m: &soft_sym::SymBuf, expected_type: u8) {
    assert_eq!(
        m.u8(0).as_bv_const(),
        Some(OFP_VERSION as u64),
        "version concrete"
    );
    assert_eq!(
        m.u8(1).as_bv_const(),
        Some(expected_type as u64),
        "type concrete"
    );
    assert_eq!(
        m.u16(2).as_bv_const(),
        Some(m.len() as u64),
        "length field equals actual length"
    );
}

const CASES: u64 = 64;

/// Flow mods always have concrete framing and concrete 8-byte action
/// slot lengths, for any spec.
#[test]
fn flow_mod_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xb41d_0000 + case);
        let spec = arb_flow_mod_spec(&mut rng);
        let m = builder::flow_mod("bp0", &spec);
        check_invariants(&m, soft_openflow::consts::msg_type::FLOW_MOD);
        assert_eq!(
            (m.len() - layout::flow_mod::FIXED_SIZE) % layout::action::BASE_SIZE,
            0
        );
        // Every action slot's length field is the concrete 8.
        let n = (m.len() - layout::flow_mod::FIXED_SIZE) / layout::action::BASE_SIZE;
        for i in 0..n {
            let off = layout::flow_mod::ACTIONS + i * layout::action::BASE_SIZE;
            assert_eq!(m.u16(off + 2).as_bv_const(), Some(8));
        }
        // Concretized fields really are concrete.
        if spec.command.is_some() {
            assert!(m.u16(layout::flow_mod::COMMAND).as_bv_const().is_some());
        } else {
            assert!(m.u16(layout::flow_mod::COMMAND).as_bv_const().is_none());
        }
        if let Some(b) = spec.buffer_id {
            assert_eq!(
                m.u32(layout::flow_mod::BUFFER_ID).as_bv_const(),
                Some(b as u64)
            );
        }
    }
}

/// Packet outs keep framing, action geometry and payload concrete.
#[test]
fn packet_out_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xb41d_1000 + case);
        let actions = arb_actions(&mut rng, 0, 4);
        let payload: Vec<u8> = (0..rng.below(80)).map(|_| rng.next() as u8).collect();
        let m = builder::packet_out("bp1", &actions, &payload);
        check_invariants(&m, soft_openflow::consts::msg_type::PACKET_OUT);
        let alen = m
            .u16(layout::packet_out::ACTIONS_LEN)
            .as_bv_const()
            .unwrap() as usize;
        assert_eq!(alen, actions.len() * 8);
        // Payload bytes are the concrete input.
        let off = layout::packet_out::FIXED_SIZE + alen;
        for (i, &b) in payload.iter().enumerate() {
            assert_eq!(m.u8(off + i).as_bv_const(), Some(b as u64));
        }
    }
}

/// Match-mode concretization touches exactly the promised fields.
#[test]
fn eth_only_match_keeps_dl_symbolic() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xb41d_2000 + case);
        let actions = arb_actions(&mut rng, 1, 3);
        let spec = FlowModSpec {
            actions,
            ..FlowModSpec::eth_default()
        };
        let m = builder::flow_mod("bp2", &spec);
        use layout::ofp_match as om;
        let base = layout::flow_mod::MATCH;
        // dl fields symbolic
        assert!(m.u48(base + om::DL_SRC).as_bv_const().is_none());
        assert!(m.u16(base + om::DL_VLAN).as_bv_const().is_none());
        // nw/tp fields concrete zero
        assert_eq!(m.u32(base + om::NW_SRC).as_bv_const(), Some(0));
        assert_eq!(m.u16(base + om::TP_SRC).as_bv_const(), Some(0));
    }
}

/// Same tag, same spec => identical message (cross-agent alignment).
#[test]
fn builds_are_deterministic() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xb41d_3000 + case);
        let spec = arb_flow_mod_spec(&mut rng);
        let a = builder::flow_mod("bp3", &spec);
        let b = builder::flow_mod("bp3", &spec);
        assert_eq!(a, b);
    }
}
