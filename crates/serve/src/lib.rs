//! # soft-serve — daemon signal plumbing
//!
//! The one thing the `soft serve` daemon needs that safe, dependency-free
//! Rust cannot express: a SIGTERM latch. The rest of the workspace
//! forbids `unsafe`; this crate exists to confine the single
//! `signal(2)` registration (std already links libc) to an auditable
//! corner. The handler does the only thing that is async-signal-safe —
//! it stores into a static atomic — and the daemon's accept loop polls
//! the latch to begin a graceful drain.
//!
//! A second SIGTERM while draining escalates to immediate exit, so an
//! operator is never more than two signals away from a stopped daemon
//! (in-flight jobs are journaled and recover on restart).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU32, Ordering};

/// Count of SIGTERMs received since [`install_sigterm_latch`].
static SIGTERMS: AtomicU32 = AtomicU32::new(0);

#[cfg(unix)]
mod imp {
    use super::SIGTERMS;
    use std::sync::atomic::Ordering;

    const SIGTERM: i32 = 15;
    /// `sighandler_t` on every libc Rust targets: a function address.
    type Handler = extern "C" fn(i32);

    extern "C" {
        /// `signal(2)` from the platform libc (linked by std on unix).
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    /// The handler itself: a single relaxed store, which is
    /// async-signal-safe (no allocation, no locks, no syscalls).
    extern "C" fn on_sigterm(_sig: i32) {
        SIGTERMS.fetch_add(1, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        // SAFETY: `signal` is the libc prototype declared above;
        // `on_sigterm` is `extern "C" fn(i32)` matching `sighandler_t`,
        // and its body is restricted to one atomic store, which POSIX
        // permits in a signal handler. SIG_ERR is (usize)-1.
        let prev = unsafe { signal(SIGTERM, on_sigterm) };
        prev != usize::MAX
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        // No SIGTERM on this platform; the latch simply never fires.
        false
    }
}

/// Install the SIGTERM handler. Returns `false` if registration failed
/// (or the platform has no SIGTERM), in which case the latch never
/// fires and the daemon only stops via the `drain` protocol message.
pub fn install_sigterm_latch() -> bool {
    imp::install()
}

/// Number of SIGTERMs received so far: `0` = keep serving, `1` = drain
/// (stop accepting, finish in-flight), `>= 2` = exit now.
pub fn sigterm_count() -> u32 {
    SIGTERMS.load(Ordering::Relaxed)
}

/// Reset the latch (tests only; a real daemon installs once).
pub fn reset_sigterm_latch() {
    SIGTERMS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn latch_counts_sigterms() {
        assert!(install_sigterm_latch());
        reset_sigterm_latch();
        assert_eq!(sigterm_count(), 0);
        // Raise SIGTERM at ourselves through the libc binding path the
        // daemon relies on.
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        // SAFETY: raise(3) with a handled signal; the handler only
        // stores into an atomic.
        unsafe {
            raise(15);
            raise(15);
        }
        assert_eq!(sigterm_count(), 2);
        reset_sigterm_latch();
    }
}
