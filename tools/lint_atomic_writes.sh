#!/usr/bin/env bash
# Lint gate: forbid non-atomic artifact writes in non-test code.
#
# Artifacts (phase-1 JSON, bench summaries, reports) must never be
# observable half-written: a crash mid-write would leave a truncated file
# that a later resume or crosscheck happily parses — or chokes on. The
# durability contract (DESIGN.md, "Durability model") therefore requires
#   soft::harness::atomic_write(path, bytes, fsync)
# (tmp file in the same directory, fsync, rename) instead of raw
# `fs::write` / `File::create`, including the back doors
# `OpenOptions...create(true)` / `create_new(true)`. Witness corpora
# (crates/witness) fall under the same contract: a half-written corpus
# would fail its fingerprint check on load, but the write should never
# tear in the first place. Hand-rolled tmp+rename (`fs::rename` /
# `fs::copy`) is equally forbidden: it skips the fsync ordering that
# makes the rename durable, and the serve store (crates/harness/store.rs,
# src/serve.rs) must publish entries through the one audited path. Test
# code (tests/ and #[cfg(test)] modules) is exempt: tests construct
# fixtures, including deliberately torn ones. The journal module itself
# is exempt — it IS the low-level writer (atomic_write lives there), and
# its append-only log has its own torn-tail recovery.
set -u

fail=0
for f in $(find crates/*/src src examples -name '*.rs' 2>/dev/null | sort); do
    case "$f" in
        crates/harness/src/journal.rs) continue ;;
    esac
    # Strip everything from the first `#[cfg(test)]` on: by repo convention
    # test modules are a single trailing `mod tests` block per file.
    hits=$(sed '/#\[cfg(test)\]/,$d' "$f" \
        | grep -n 'fs::write(\|File::create(\|create_new(\|OpenOptions::new(\|fs::rename(\|fs::copy(' || true)
    if [ -n "$hits" ]; then
        echo "$f: non-atomic file write in non-test code:"
        echo "$hits" | sed 's/^/  /'
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo
    echo "Use soft::harness::atomic_write (see DESIGN.md, \"Durability model\")."
    exit 1
fi
echo "atomic writes OK: no raw artifact writes in non-test code"
