#!/usr/bin/env python3
"""Regenerate crates/agents/src/universe_data.rs from the instrumentation
labels (ctx.cover / ctx.branch) in the agent model sources."""
import re

# Labels emitted by shared helpers in common.rs (classify_packet,
# fork_truncation call sites are extracted per-file separately).
COMMON_LABELS_BLOCKS = [
    "extract.entry", "extract.vlan_tagged", "extract.vlan_ip",
    "extract.ip", "extract.other",
]
COMMON_LABELS_SITES = [
    "extract.vlan", "extract.vlan_ip", "extract.ip",
]

MATCH_LABELS = [
    "match.in_port", "match.dl_src", "match.dl_dst", "match.dl_vlan",
    "match.dl_vlan_pcp", "match.dl_type", "match.nw_tos", "match.nw_proto",
    "match.nw_src", "match.nw_dst", "match.tp_src", "match.tp_dst",
]

out = [
    "//! Auto-maintained instrumentation label inventories.",
    "//!",
    "//! Regenerate with `python3 tools/gen_universe.py` after adding or",
    "//! renaming `ctx.cover(...)` / `ctx.branch(...)` labels in the agent",
    "//! models; the `universes_cover_all_labels` test fails when this file is",
    "//! stale.",
    "",
]
for name, path in [("REFERENCE", "crates/agents/src/reference.rs"),
                   ("OVS", "crates/agents/src/ovs.rs")]:
    t = open(path).read()
    covers = sorted(set(re.findall(r'ctx\.cover\("([^"]+)"\)', t) + COMMON_LABELS_BLOCKS))
    branches = sorted(set(
        re.findall(r'ctx\.branch\(\s*\n?\s*"([^"]+)"', t)
        + re.findall(r'\.branch\("([^"]+)"', t)
        # labels passed through (label, bit) tuple arrays
        + re.findall(r'\(\s*"([a-z_]+\.[a-z_0-9]+)",\s*wildcards::', t)
        + re.findall(r'fork_truncation\(ctx,\s*"([^"]+)"', t)
        + COMMON_LABELS_SITES
        + MATCH_LABELS))
    out.append(f"/// Instruction-block labels instrumented in the {name.title()} model.")
    out.append(f"pub const {name}_BLOCKS: [&str; {len(covers)}] = [")
    out.extend(f'    "{c}",' for c in covers)
    out.append("];")
    out.append("")
    out.append(f"/// Branch-site labels instrumented in the {name.title()} model.")
    out.append(f"pub const {name}_BRANCH_SITES: [&str; {len(branches)}] = [")
    out.extend(f'    "{b}",' for b in branches)
    out.append("];")
    out.append("")
open("crates/agents/src/universe_data.rs", "w").write("\n".join(out))
print("universe_data.rs regenerated")
