#!/usr/bin/env bash
# Lint gate: forbid throwaway solver construction in the crosscheck path.
#
# The incremental solver core (DESIGN.md, "Incremental solving") only
# pays off if solver state persists across the queries of one pass: a
# worker that builds a fresh `Solver` per pair re-blasts every shared
# group condition and throws away learned clauses and UNSAT cores after
# each query. All solver construction in the crosscheck/scheduler layer
# must therefore go through `worker_solver` in crosscheck.rs — the one
# audited site that wires in the shared verdict cache, the budget, and
# the (caller-gated) incremental context. That line carries a
# `lint-exempt` marker; any other `Solver::new(` / `Solver::with_cache(`
# in non-test crosscheck/stream code is a regression to per-query
# throwaway solving. Test code (#[cfg(test)] modules) is exempt: tests
# construct oracle solvers on purpose.
set -u

fail=0
for f in crates/core/src/crosscheck.rs crates/core/src/stream.rs; do
    # Strip everything from the first `#[cfg(test)]` on: by repo convention
    # test modules are a single trailing `mod tests` block per file.
    hits=$(sed '/#\[cfg(test)\]/,$d' "$f" \
        | grep -n 'Solver::new(\|Solver::with_cache(' \
        | grep -v 'lint-exempt' || true)
    if [ -n "$hits" ]; then
        echo "$f: throwaway solver construction outside worker_solver:"
        echo "$hits" | sed 's/^/  /'
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo
    echo "Build pass-lifetime solvers via worker_solver (see DESIGN.md, \"Incremental solving\")."
    exit 1
fi
echo "fresh-solver lint OK: all crosscheck solvers are pass-lifetime"
