#!/usr/bin/env bash
# Lint gate: forbid aborting on poisoned locks in non-test code.
#
# Shared-state locks in this workspace (explorer frontier, verdict slots,
# matrix result slots, the term interner) are written slot-wise or merged
# commutatively, so a sibling worker's panic leaves usable state behind the
# mutex. The graceful-degradation contract therefore requires
#   lock().unwrap_or_else(|e| e.into_inner())
# instead of `.lock().unwrap()` / `.lock().expect(...)`, which turn one
# contained panic into a process-wide abort. Test code (tests/ and
# #[cfg(test)] modules) is exempt: an abort there *is* the failure report.
set -u

fail=0
for f in $(find crates/*/src src examples -name '*.rs' 2>/dev/null | sort); do
    # Strip everything from the first `#[cfg(test)]` on: by repo convention
    # test modules are a single trailing `mod tests` block per file.
    hits=$(sed '/#\[cfg(test)\]/,$d' "$f" \
        | grep -n '\.lock()\.unwrap()\|\.lock()\.expect(' || true)
    if [ -n "$hits" ]; then
        echo "$f: poisoned-lock abort in non-test code:"
        echo "$hits" | sed 's/^/  /'
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo
    echo "Use lock().unwrap_or_else(|e| e.into_inner()) (see DESIGN.md,"
    echo "\"Failure containment & resource budgets\")."
    exit 1
fi
echo "lock handling OK: no poisoned-lock aborts in non-test code"
