#!/usr/bin/env bash
# Lint gate: the kernel crates must stay protocol-agnostic.
#
# The Protocol trait (DESIGN.md, "Protocol abstraction") only holds if
# the explore/group/crosscheck/distill kernel never reaches around it:
# `crates/sym`, `crates/smt`, `crates/core` and `crates/witness` may
# depend on `soft-protocol` (the trait) but never on a concrete protocol
# implementation (`soft-openflow`, `soft-agents`, `soft-tlv`). Two
# checks enforce that:
#
#  1. Cargo level: the crates' `[dependencies]` sections must not list a
#     concrete protocol crate. `[dev-dependencies]` are exempt — kernel
#     tests legitimately use the OpenFlow agents as oracles.
#  2. Source level: non-test, non-comment code must not name
#     `soft_openflow::` / `soft_agents::` / `soft_tlv::` paths (doc
#     comments may; by repo convention test modules are a single
#     trailing `mod tests` block per file).
set -u

KERNEL_CRATES="sym smt core witness"
CONCRETE_DEPS='soft-openflow|soft-agents|soft-tlv'
CONCRETE_PATHS='soft_openflow::|soft_agents::|soft_tlv::'
fail=0

for c in $KERNEL_CRATES; do
    manifest="crates/$c/Cargo.toml"
    # Check only the [dependencies] table: cut the manifest at it, then
    # cut again at the next section header.
    hits=$(sed -n '/^\[dependencies\]/,/^\[/p' "$manifest" \
        | grep -E "^(${CONCRETE_DEPS}) *=|^(${CONCRETE_DEPS})\." || true)
    if [ -n "$hits" ]; then
        echo "$manifest: concrete protocol crate in [dependencies]:"
        echo "$hits" | sed 's/^/  /'
        fail=1
    fi

    for f in crates/"$c"/src/*.rs; do
        # Strip test modules (everything from the first #[cfg(test)] on)
        # and comment lines, then look for concrete protocol paths.
        hits=$(sed '/#\[cfg(test)\]/,$d' "$f" \
            | grep -nE "$CONCRETE_PATHS" \
            | grep -vE '^\s*[0-9]+:\s*//' || true)
        if [ -n "$hits" ]; then
            echo "$f: concrete protocol reference in kernel code:"
            echo "$hits" | sed 's/^/  /'
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo
    echo "Route protocol specifics through the Protocol trait (see DESIGN.md, \"Protocol abstraction\")."
    exit 1
fi
echo "protocol-layering lint OK: kernel crates are protocol-agnostic"
