#!/usr/bin/env bash
# Crash/resume soak: SIGKILL the pipeline mid-run, resume from the
# write-ahead journal, and demand byte-identical artifacts.
#
# For phase 1 (at --jobs 1 and --jobs N) and for check, the script:
#   1. produces uninterrupted reference output,
#   2. re-runs the same command under `timeout -s KILL`, retrying with
#      --resume while the process keeps getting killed (the timeout grows
#      each round so the loop always terminates),
#   3. diffs the resumed artifacts against the reference (wall_ms is the
#      only permitted difference — it is wall-clock, not a result).
#
# Exit nonzero on any divergence.
# Usage: tools/crash_resume.sh [phase1-test-id] [check-test-id]
set -u

TEST_ID="${1:-flow_mod}"
# The check stage wants a test whose crosscheck takes long enough to be
# interruptible but finishes in seconds; set_config (~5k queries) fits.
CHECK_TEST="${2:-set_config}"
JOBS_N=4
SOFT="${SOFT_BIN:-target/release/soft}"

if [ ! -x "$SOFT" ]; then
    echo "crash_resume: building release binary ..."
    cargo build --release --bin soft || exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/soft_crash_resume.XXXXXX") || exit 1
trap 'rm -rf "$WORK"' EXIT
fail=0

# Normalize an artifact for comparison: wall-clock is environmental.
norm() {
    sed 's/"wall_ms": *[0-9.]*/"wall_ms": 0/' "$1"
}

# run_until_done <timeout-ms-start> <log> <cmd...>
# First round runs the command as given; every retry appends --resume.
# Returns the final (non-KILL) exit code.
run_until_done() {
    local t_ms=$1 log=$2 rc=137 round=0
    shift 2
    while [ "$rc" -eq 137 ] && [ "$round" -lt 40 ]; do
        local extra=()
        [ "$round" -gt 0 ] && extra=(--resume)
        # Subshell so bash's async "Killed" job notice stays out of the
        # script's own stderr.
        (
            timeout -s KILL "$(awk "BEGIN{printf \"%.3f\", $t_ms/1000}")" \
                "$@" "${extra[@]}" >"$log" 2>>"$WORK/stderr.log"
        ) 2>/dev/null
        rc=$?
        round=$((round + 1))
        t_ms=$((t_ms * 3 / 2 + 20))
    done
    echo "    $((round - 1)) interruption(s) before completion" >&2
    return "$rc"
}

echo "== phase1 reference (uninterrupted) =="
for agent in reference ovs; do
    "$SOFT" phase1 --agent "$agent" --test "$TEST_ID" \
        --out "$WORK/ref_${agent}.json" --jobs 1 >/dev/null 2>&1
    rc=$?
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 4 ]; then
        echo "crash_resume: reference phase1 ($agent) failed with $rc"
        exit 1
    fi
done

for jobs in 1 "$JOBS_N"; do
    echo "== phase1 under SIGKILL at --jobs $jobs =="
    for agent in reference ovs; do
        out="$WORK/kill_${agent}_j${jobs}.json"
        run_until_done 40 "$WORK/phase1.out" \
            "$SOFT" phase1 --agent "$agent" --test "$TEST_ID" \
            --out "$out" --jobs "$jobs" --journal "$out.wal"
        rc=$?
        if [ "$rc" -ne 0 ] && [ "$rc" -ne 4 ]; then
            echo "crash_resume: resumed phase1 ($agent, jobs=$jobs) exit $rc"
            fail=1
            continue
        fi
        if ! diff <(norm "$WORK/ref_${agent}.json") <(norm "$out") >/dev/null; then
            echo "crash_resume: ARTIFACT DIVERGED: $agent at jobs=$jobs"
            diff <(norm "$WORK/ref_${agent}.json") <(norm "$out") | head -20
            fail=1
        else
            echo "    $agent artifact byte-identical to reference"
        fi
    done
done

echo "== check reference (uninterrupted, '$CHECK_TEST') =="
for agent in reference ovs; do
    "$SOFT" phase1 --agent "$agent" --test "$CHECK_TEST" \
        --out "$WORK/chk_${agent}.json" --no-journal >/dev/null 2>&1
    rc=$?
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 4 ]; then
        echo "crash_resume: phase1 for check stage ($agent) failed with $rc"
        exit 1
    fi
done
"$SOFT" check "$WORK/chk_reference.json" "$WORK/chk_ovs.json" \
    --no-journal >"$WORK/check_ref.out" 2>/dev/null
ref_rc=$?

echo "== check under SIGKILL =="
run_until_done 500 "$WORK/check_kill.out" \
    "$SOFT" check "$WORK/chk_reference.json" "$WORK/chk_ovs.json" \
    --journal "$WORK/check.wal"
rc=$?
if [ "$rc" -ne "$ref_rc" ]; then
    echo "crash_resume: check exit code diverged: reference $ref_rc, resumed $rc"
    fail=1
fi
# The verdict (inconsistencies / unverified) must survive any number of
# crashes; compare it rather than the whole line to keep the check
# focused on results, not report cosmetics.
verdict() { grep -o '[0-9]* inconsistencies, [0-9]* unverified' "$1"; }
if [ "$(verdict "$WORK/check_ref.out")" != "$(verdict "$WORK/check_kill.out")" ]; then
    echo "crash_resume: check verdict diverged:"
    echo "  reference: $(cat "$WORK/check_ref.out")"
    echo "  resumed:   $(cat "$WORK/check_kill.out")"
    fail=1
else
    echo "    check verdict identical to reference"
fi

echo "== run (streaming session) reference (uninterrupted, '$CHECK_TEST') =="
"$SOFT" run --agents reference,ovs --test "$CHECK_TEST" \
    --out "$WORK/run_ref_" --jobs "$JOBS_N" --no-journal --no-fsync \
    >"$WORK/run_ref.out" 2>/dev/null
run_ref_rc=$?

echo "== run under SIGKILL =="
# One session journal covers the whole pipeline, so the kills land in
# every stage — exploration, crosscheck, distillation — across rounds.
run_until_done 300 "$WORK/run_kill.out" \
    "$SOFT" run --agents reference,ovs --test "$CHECK_TEST" \
    --out "$WORK/run_kill_" --jobs "$JOBS_N" --no-fsync
rc=$?
if [ "$rc" -ne "$run_ref_rc" ]; then
    echo "crash_resume: run exit code diverged: reference $run_ref_rc, resumed $rc"
    fail=1
fi
for agent in reference ovs; do
    if ! diff <(norm "$WORK/run_ref_${agent}_${CHECK_TEST}.json") \
              <(norm "$WORK/run_kill_${agent}_${CHECK_TEST}.json") >/dev/null; then
        echo "crash_resume: RUN ARTIFACT DIVERGED: $agent"
        fail=1
    else
        echo "    $agent artifact byte-identical to reference"
    fi
done
# The corpus records no wall-clock: byte-identical, no normalization.
if ! diff "$WORK/run_ref_corpus_${CHECK_TEST}.json" \
          "$WORK/run_kill_corpus_${CHECK_TEST}.json" >/dev/null; then
    echo "crash_resume: RUN CORPUS DIVERGED"
    fail=1
else
    echo "    corpus byte-identical to reference"
fi
# The per-test summary counts must survive the crashes too (a resumed
# session may replay them from the journal — strip that marker, and
# fold both out-prefixes to one token: the paths legitimately differ).
if [ "$(sed -e 's/ (resumed)//' -e "s|$WORK/run_kill_|OUT/|g" "$WORK/run_kill.out")" != \
     "$(sed -e "s|$WORK/run_ref_|OUT/|g" "$WORK/run_ref.out")" ]; then
    echo "crash_resume: run summary diverged:"
    echo "  reference: $(cat "$WORK/run_ref.out")"
    echo "  resumed:   $(cat "$WORK/run_kill.out")"
    fail=1
else
    echo "    run summary identical to reference"
fi

echo "== serve: SIGTERM mid-job, journal-backed recovery on restart =="
# Kill a daemon while it is solving a job; a fresh daemon must find the
# in-flight record, resume the job from its per-job WAL, publish it, and
# then answer a re-submission from the store with zero solver queries
# and bytes identical to an uninterrupted daemon's answer.
STORE_REF="$WORK/serve_ref_store"
STORE_KILL="$WORK/serve_kill_store"
serve_wait_addr() { # serve_wait_addr <store-dir>
    for _ in $(seq 1 100); do
        [ -s "$1/addr" ] && return 0
        sleep 0.1
    done
    echo "crash_resume: serve daemon never published an addr"
    return 1
}
# Reference: an uninterrupted daemon serves the job once.
"$SOFT" serve --store "$STORE_REF" --no-fsync >/dev/null 2>&1 &
REF_PID=$!
serve_wait_addr "$STORE_REF" || exit 1
"$SOFT" submit --store "$STORE_REF" --agents reference,ovs \
    --test "$CHECK_TEST" --fuzz 0 --out "$WORK/serve_ref_" \
    >/dev/null 2>&1
serve_ref_rc=$?
"$SOFT" submit --store "$STORE_REF" --drain >/dev/null 2>&1
wait "$REF_PID" 2>/dev/null
# Interrupted: SIGTERM the daemon mid-job (twice: drain then exit-now),
# growing the grace period until a round lets the job finish.
round=0
while [ "$round" -lt 40 ]; do
    grace_ms=$((30 + round * 40))
    ("$SOFT" serve --store "$STORE_KILL" --no-fsync \
        >/dev/null 2>>"$WORK/stderr.log" &
     echo $! >"$WORK/serve.pid") 2>/dev/null
    KILL_PID=$(cat "$WORK/serve.pid")
    serve_wait_addr "$STORE_KILL" || exit 1
    "$SOFT" submit --store "$STORE_KILL" --agents reference,ovs \
        --test "$CHECK_TEST" --fuzz 0 --json "$WORK/serve_kill.json" \
        >/dev/null 2>&1 &
    SUBMIT_PID=$!
    (sleep "$(awk "BEGIN{printf \"%.3f\", $grace_ms/1000}")"
     kill -TERM "$KILL_PID" 2>/dev/null
     sleep 0.05
     kill -TERM "$KILL_PID" 2>/dev/null) 2>/dev/null
    wait "$SUBMIT_PID" 2>/dev/null
    sub_rc=$?
    wait "$KILL_PID" 2>/dev/null
    round=$((round + 1))
    # The submission either completed before the SIGTERMs landed
    # (store entry published) or was cut off; either way the next
    # daemon must recover whatever was in flight.
    if [ "$sub_rc" -eq "$serve_ref_rc" ] && [ -s "$WORK/serve_kill.json" ]; then
        break
    fi
    rm -f "$WORK/serve_kill.json" "$STORE_KILL/addr"
done
echo "    $((round - 1)) interruption(s) before a completed submission" >&2
# Restart: recovery re-runs any in-flight job, then the re-submission
# must be a pure store hit.
rm -f "$STORE_KILL/addr"
"$SOFT" serve --store "$STORE_KILL" --no-fsync >/dev/null 2>&1 &
RESTART_PID=$!
serve_wait_addr "$STORE_KILL" || exit 1
"$SOFT" submit --store "$STORE_KILL" --agents reference,ovs \
    --test "$CHECK_TEST" --fuzz 0 --out "$WORK/serve_resumed_" \
    --json "$WORK/serve_resumed.json" >/dev/null 2>&1
resumed_rc=$?
"$SOFT" submit --store "$STORE_KILL" --drain >/dev/null 2>&1
wait "$RESTART_PID" 2>/dev/null
if [ "$resumed_rc" -ne "$serve_ref_rc" ]; then
    echo "crash_resume: serve exit code diverged: reference $serve_ref_rc, resumed $resumed_rc"
    fail=1
fi
if ! grep -q '"store_hit":true' "$WORK/serve_resumed.json"; then
    echo "crash_resume: SERVE RESUBMIT WAS NOT A STORE HIT"
    fail=1
fi
if ! grep -q '"check_queries":0' "$WORK/serve_resumed.json"; then
    echo "crash_resume: SERVE RESUBMIT ISSUED SOLVER QUERIES"
    fail=1
fi
# Same job, same bytes: the recovered store must answer with the exact
# artifacts the uninterrupted daemon produced (wall-clock excepted).
serve_diverged=0
for f in "reference_${CHECK_TEST}.json" "ovs_${CHECK_TEST}.json" "corpus_${CHECK_TEST}.json"; do
    if ! diff <(norm "$WORK/serve_ref_$f") <(norm "$WORK/serve_resumed_$f") >/dev/null; then
        echo "crash_resume: SERVE ARTIFACT DIVERGED after recovery: $f"
        serve_diverged=1
        fail=1
    fi
done
if [ "$serve_diverged" -eq 0 ]; then
    echo "    recovered store answers byte-identical to uninterrupted daemon"
fi

echo "== conform: SIGKILL the DUT mid-replay, degrade to flaky/unreachable =="
# A conformance DUT that dies under the harness must never crash or hang
# the replayer: the run completes, the affected witnesses carry explicit
# flaky (connected, never finished) or unreachable (never connected)
# verdicts, and the exit code reports the degradation.
"$SOFT" run --agents reference,ovs --test queue_config \
    --out "$WORK/conform_" --no-journal --no-fsync >/dev/null 2>&1
run_rc=$?
if [ "$run_rc" -ne 0 ] && [ "$run_rc" -ne 2 ]; then
    echo "crash_resume: corpus distillation for conform stage failed with $run_rc"
    exit 1
fi
CON_CORPUS="$WORK/conform_corpus_queue_config.json"
conform_degraded=0
round=0
while [ "$round" -lt 40 ]; do
    # Grow the kill delay each round: early rounds kill the DUT before
    # or during the first replay, later ones mid-corpus.
    delay_ms=$((round * 5))
    # Subshell + pid file so the async "Killed" notice for the DUT stays
    # out of the script's stderr (same pattern as the serve section).
    ("$SOFT" conform-dut --agent ovs >"$WORK/dut.out" 2>&1 &
     echo $! >"$WORK/dut.pid") 2>/dev/null
    DUT_PID=$(cat "$WORK/dut.pid")
    addr=""
    for _ in $(seq 1 100); do
        addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$WORK/dut.out" 2>/dev/null || true)
        [ -n "$addr" ] && break
        sleep 0.05
    done
    if [ -z "$addr" ]; then
        echo "crash_resume: conform-dut never published its address"
        kill -9 "$DUT_PID" 2>/dev/null
        exit 1
    fi
    "$SOFT" conform "$CON_CORPUS" --addr "$addr" \
        --retries 2 --op-timeout-ms 400 --json "$WORK/conform_kill.json" \
        >"$WORK/conform_kill.out" 2>"$WORK/conform_kill.err" &
    CONF_PID=$!
    (sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms/1000}")"
     kill -KILL "$DUT_PID" 2>/dev/null) 2>/dev/null
    wait "$CONF_PID" 2>/dev/null
    conf_rc=$?
    wait "$DUT_PID" 2>/dev/null
    round=$((round + 1))
    if grep -q 'panicked' "$WORK/conform_kill.err"; then
        echo "crash_resume: CONFORM PANICKED when the DUT died:"
        head -5 "$WORK/conform_kill.err"
        fail=1
        break
    fi
    # 3 = flaky, 5 = unreachable: the kill landed mid-replay and the
    # run degraded explicitly. 0/2 means the replay outran the kill —
    # legitimate, try a longer delay. Anything else is a bug.
    if [ "$conf_rc" -eq 3 ] || [ "$conf_rc" -eq 5 ]; then
        if ! grep -Eq '"(flaky|unreachable)":[1-9]' "$WORK/conform_kill.json"; then
            echo "crash_resume: conform exit $conf_rc but no degraded verdict in report"
            fail=1
        else
            conform_degraded=1
        fi
        break
    fi
    if [ "$conf_rc" -ne 0 ] && [ "$conf_rc" -ne 2 ]; then
        echo "crash_resume: conform exited $conf_rc after DUT SIGKILL (want 3 or 5)"
        cat "$WORK/conform_kill.out"
        fail=1
        break
    fi
    rm -f "$WORK/conform_kill.json"
done
if [ "$conform_degraded" -eq 1 ]; then
    echo "    $round round(s): DUT death degraded to explicit verdicts, no crash"
elif [ "$fail" -eq 0 ]; then
    echo "crash_resume: conform kill never landed mid-replay in $round rounds"
    fail=1
fi

echo "== fleet: SIGKILL a back-end mid-job, router re-routes =="
# Two back-ends behind a router; a job's back-end is SIGKILLed while it
# solves. The router must fail the job over to the survivor (fresh
# solve — never a lost job), and a re-submission of the same spec must
# be answered from the survivor's store with zero solver queries and
# the exact bytes the failover run returned.
FLT0="$WORK/fleet_s0"
FLT1="$WORK/fleet_s1"
for d in "$FLT0" "$FLT1"; do
    ("$SOFT" serve --store "$d" --jobs 2 --no-fsync \
        >/dev/null 2>>"$WORK/stderr.log" &
     echo $! >"$d.pid") 2>/dev/null
    serve_wait_addr "$d" || exit 1
done
("$SOFT" route --backends "$(cat "$FLT0/addr"),$(cat "$FLT1/addr")" \
    --replicas 1 --addr-file "$WORK/fleet_addr" \
    >/dev/null 2>>"$WORK/stderr.log" &
 echo $! >"$WORK/route.pid") 2>/dev/null
for _ in $(seq 1 100); do
    [ -s "$WORK/fleet_addr" ] && break
    sleep 0.1
done
[ -s "$WORK/fleet_addr" ] || { echo "crash_resume: router never published an addr"; exit 1; }
RADDR=$(cat "$WORK/fleet_addr")
round=0
landed=0
flt_rc=1
flt_seed=0
while [ "$round" -lt 5 ]; do
    flt_seed=$((4242 + round))   # fresh content key per round: a retry must re-solve
    rm -f "$WORK/fleet_kill.json"
    "$SOFT" submit --addr "$RADDR" --agents reference,ovs \
        --test "$CHECK_TEST" --fuzz 0 --seed "$flt_seed" \
        --out "$WORK/fleet_kill_" --json "$WORK/fleet_kill.json" \
        >/dev/null 2>&1 &
    FLT_SUBMIT=$!
    victim=""
    for _ in $(seq 1 300); do
        for d in "$FLT0" "$FLT1"; do
            if ls "$d"/inflight/*.json >/dev/null 2>&1; then victim="$d"; break 2; fi
        done
        kill -0 "$FLT_SUBMIT" 2>/dev/null || break   # solve outran the poll
        sleep 0.02
    done
    if [ -n "$victim" ]; then
        VPID=$(cat "$victim.pid")
        kill -9 "$VPID" 2>/dev/null
        wait "$VPID" 2>/dev/null
        landed=1
    fi
    wait "$FLT_SUBMIT" 2>/dev/null
    flt_rc=$?
    [ "$landed" -eq 1 ] && break
    round=$((round + 1))
done
if [ "$landed" -ne 1 ]; then
    echo "crash_resume: fleet kill never landed mid-job in $round round(s)"
    fail=1
elif [ "$flt_rc" -ne 0 ] && [ "$flt_rc" -ne 2 ] && [ "$flt_rc" -ne 3 ]; then
    echo "crash_resume: FLEET JOB LOST after back-end SIGKILL (exit $flt_rc)"
    fail=1
else
    echo "    round $round: back-end SIGKILLed mid-job, job completed (exit $flt_rc)"
    # Same spec again: the survivor answers from its store.
    "$SOFT" submit --addr "$RADDR" --agents reference,ovs \
        --test "$CHECK_TEST" --fuzz 0 --seed "$flt_seed" \
        --out "$WORK/fleet_hit_" --json "$WORK/fleet_hit.json" \
        >/dev/null 2>&1
    hit_rc=$?
    if [ "$hit_rc" -ne "$flt_rc" ]; then
        echo "crash_resume: fleet resubmit exit diverged: $flt_rc then $hit_rc"
        fail=1
    fi
    if ! grep -q '"store_hit":true' "$WORK/fleet_hit.json"; then
        echo "crash_resume: FLEET RESUBMIT WAS NOT A STORE HIT"
        fail=1
    fi
    if ! grep -q '"check_queries":0' "$WORK/fleet_hit.json"; then
        echo "crash_resume: FLEET RESUBMIT ISSUED SOLVER QUERIES"
        fail=1
    fi
    fleet_diverged=0
    for f in "reference_${CHECK_TEST}.json" "ovs_${CHECK_TEST}.json" "corpus_${CHECK_TEST}.json"; do
        if ! diff <(norm "$WORK/fleet_kill_$f") <(norm "$WORK/fleet_hit_$f") >/dev/null; then
            echo "crash_resume: FLEET ARTIFACT DIVERGED across failover: $f"
            fleet_diverged=1
            fail=1
        fi
    done
    if [ "$fleet_diverged" -eq 0 ]; then
        echo "    survivor serves the failover run's exact bytes"
    fi
fi
# One drain at the router stops the router and the surviving back-end.
"$SOFT" submit --addr "$RADDR" --drain >/dev/null 2>&1
for pidfile in "$WORK/route.pid" "$FLT0.pid" "$FLT1.pid"; do
    p=$(cat "$pidfile")
    for _ in $(seq 1 150); do kill -0 "$p" 2>/dev/null || break; sleep 0.2; done
    if kill -0 "$p" 2>/dev/null; then
        echo "crash_resume: fleet process $p failed to drain"
        kill -9 "$p" 2>/dev/null
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "crash_resume: FAILED"
    exit 1
fi
echo "crash_resume: OK — SIGKILL + --resume reproduced the uninterrupted results"
