#!/usr/bin/env bash
# Crash/resume soak: SIGKILL the pipeline mid-run, resume from the
# write-ahead journal, and demand byte-identical artifacts.
#
# For phase 1 (at --jobs 1 and --jobs N) and for check, the script:
#   1. produces uninterrupted reference output,
#   2. re-runs the same command under `timeout -s KILL`, retrying with
#      --resume while the process keeps getting killed (the timeout grows
#      each round so the loop always terminates),
#   3. diffs the resumed artifacts against the reference (wall_ms is the
#      only permitted difference — it is wall-clock, not a result).
#
# Exit nonzero on any divergence.
# Usage: tools/crash_resume.sh [phase1-test-id] [check-test-id]
set -u

TEST_ID="${1:-flow_mod}"
# The check stage wants a test whose crosscheck takes long enough to be
# interruptible but finishes in seconds; set_config (~5k queries) fits.
CHECK_TEST="${2:-set_config}"
JOBS_N=4
SOFT="${SOFT_BIN:-target/release/soft}"

if [ ! -x "$SOFT" ]; then
    echo "crash_resume: building release binary ..."
    cargo build --release --bin soft || exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/soft_crash_resume.XXXXXX") || exit 1
trap 'rm -rf "$WORK"' EXIT
fail=0

# Normalize an artifact for comparison: wall-clock is environmental.
norm() {
    sed 's/"wall_ms": *[0-9.]*/"wall_ms": 0/' "$1"
}

# run_until_done <timeout-ms-start> <log> <cmd...>
# First round runs the command as given; every retry appends --resume.
# Returns the final (non-KILL) exit code.
run_until_done() {
    local t_ms=$1 log=$2 rc=137 round=0
    shift 2
    while [ "$rc" -eq 137 ] && [ "$round" -lt 40 ]; do
        local extra=()
        [ "$round" -gt 0 ] && extra=(--resume)
        # Subshell so bash's async "Killed" job notice stays out of the
        # script's own stderr.
        (
            timeout -s KILL "$(awk "BEGIN{printf \"%.3f\", $t_ms/1000}")" \
                "$@" "${extra[@]}" >"$log" 2>>"$WORK/stderr.log"
        ) 2>/dev/null
        rc=$?
        round=$((round + 1))
        t_ms=$((t_ms * 3 / 2 + 20))
    done
    echo "    $((round - 1)) interruption(s) before completion" >&2
    return "$rc"
}

echo "== phase1 reference (uninterrupted) =="
for agent in reference ovs; do
    "$SOFT" phase1 --agent "$agent" --test "$TEST_ID" \
        --out "$WORK/ref_${agent}.json" --jobs 1 >/dev/null 2>&1
    rc=$?
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 4 ]; then
        echo "crash_resume: reference phase1 ($agent) failed with $rc"
        exit 1
    fi
done

for jobs in 1 "$JOBS_N"; do
    echo "== phase1 under SIGKILL at --jobs $jobs =="
    for agent in reference ovs; do
        out="$WORK/kill_${agent}_j${jobs}.json"
        run_until_done 40 "$WORK/phase1.out" \
            "$SOFT" phase1 --agent "$agent" --test "$TEST_ID" \
            --out "$out" --jobs "$jobs" --journal "$out.wal"
        rc=$?
        if [ "$rc" -ne 0 ] && [ "$rc" -ne 4 ]; then
            echo "crash_resume: resumed phase1 ($agent, jobs=$jobs) exit $rc"
            fail=1
            continue
        fi
        if ! diff <(norm "$WORK/ref_${agent}.json") <(norm "$out") >/dev/null; then
            echo "crash_resume: ARTIFACT DIVERGED: $agent at jobs=$jobs"
            diff <(norm "$WORK/ref_${agent}.json") <(norm "$out") | head -20
            fail=1
        else
            echo "    $agent artifact byte-identical to reference"
        fi
    done
done

echo "== check reference (uninterrupted, '$CHECK_TEST') =="
for agent in reference ovs; do
    "$SOFT" phase1 --agent "$agent" --test "$CHECK_TEST" \
        --out "$WORK/chk_${agent}.json" --no-journal >/dev/null 2>&1
    rc=$?
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 4 ]; then
        echo "crash_resume: phase1 for check stage ($agent) failed with $rc"
        exit 1
    fi
done
"$SOFT" check "$WORK/chk_reference.json" "$WORK/chk_ovs.json" \
    --no-journal >"$WORK/check_ref.out" 2>/dev/null
ref_rc=$?

echo "== check under SIGKILL =="
run_until_done 500 "$WORK/check_kill.out" \
    "$SOFT" check "$WORK/chk_reference.json" "$WORK/chk_ovs.json" \
    --journal "$WORK/check.wal"
rc=$?
if [ "$rc" -ne "$ref_rc" ]; then
    echo "crash_resume: check exit code diverged: reference $ref_rc, resumed $rc"
    fail=1
fi
# The verdict (inconsistencies / unverified) must survive any number of
# crashes; compare it rather than the whole line to keep the check
# focused on results, not report cosmetics.
verdict() { grep -o '[0-9]* inconsistencies, [0-9]* unverified' "$1"; }
if [ "$(verdict "$WORK/check_ref.out")" != "$(verdict "$WORK/check_kill.out")" ]; then
    echo "crash_resume: check verdict diverged:"
    echo "  reference: $(cat "$WORK/check_ref.out")"
    echo "  resumed:   $(cat "$WORK/check_kill.out")"
    fail=1
else
    echo "    check verdict identical to reference"
fi

echo "== run (streaming session) reference (uninterrupted, '$CHECK_TEST') =="
"$SOFT" run --agents reference,ovs --test "$CHECK_TEST" \
    --out "$WORK/run_ref_" --jobs "$JOBS_N" --no-journal --no-fsync \
    >"$WORK/run_ref.out" 2>/dev/null
run_ref_rc=$?

echo "== run under SIGKILL =="
# One session journal covers the whole pipeline, so the kills land in
# every stage — exploration, crosscheck, distillation — across rounds.
run_until_done 300 "$WORK/run_kill.out" \
    "$SOFT" run --agents reference,ovs --test "$CHECK_TEST" \
    --out "$WORK/run_kill_" --jobs "$JOBS_N" --no-fsync
rc=$?
if [ "$rc" -ne "$run_ref_rc" ]; then
    echo "crash_resume: run exit code diverged: reference $run_ref_rc, resumed $rc"
    fail=1
fi
for agent in reference ovs; do
    if ! diff <(norm "$WORK/run_ref_${agent}_${CHECK_TEST}.json") \
              <(norm "$WORK/run_kill_${agent}_${CHECK_TEST}.json") >/dev/null; then
        echo "crash_resume: RUN ARTIFACT DIVERGED: $agent"
        fail=1
    else
        echo "    $agent artifact byte-identical to reference"
    fi
done
# The corpus records no wall-clock: byte-identical, no normalization.
if ! diff "$WORK/run_ref_corpus_${CHECK_TEST}.json" \
          "$WORK/run_kill_corpus_${CHECK_TEST}.json" >/dev/null; then
    echo "crash_resume: RUN CORPUS DIVERGED"
    fail=1
else
    echo "    corpus byte-identical to reference"
fi
# The per-test summary counts must survive the crashes too (a resumed
# session may replay them from the journal — strip that marker, and
# fold both out-prefixes to one token: the paths legitimately differ).
if [ "$(sed -e 's/ (resumed)//' -e "s|$WORK/run_kill_|OUT/|g" "$WORK/run_kill.out")" != \
     "$(sed -e "s|$WORK/run_ref_|OUT/|g" "$WORK/run_ref.out")" ]; then
    echo "crash_resume: run summary diverged:"
    echo "  reference: $(cat "$WORK/run_ref.out")"
    echo "  resumed:   $(cat "$WORK/run_kill.out")"
    fail=1
else
    echo "    run summary identical to reference"
fi

if [ "$fail" -ne 0 ]; then
    echo "crash_resume: FAILED"
    exit 1
fi
echo "crash_resume: OK — SIGKILL + --resume reproduced the uninterrupted results"
